// Deterministic hashing / pseudo-random utilities shared by bench
// drivers and tests. Everything here is a pure function of its inputs
// (no global state), so graph builders seeded with the same value
// produce bit-identical heaps across runs, team sizes, and runtimes.
#pragma once

#include <cstdint>

namespace parmem::data {

// SplitMix64-style mixer over (x, salt). Full-avalanche: every input
// bit affects every output bit, so callers can derive independent
// streams by varying the salt.
inline constexpr std::uint64_t hash64(std::uint64_t x,
                                      std::uint64_t salt = 0) {
  // 2*salt+1 keeps the multiplier odd while staying injective in salt
  // ((salt | 1) would collide each even salt with its odd successor).
  std::uint64_t z =
      x + 0x9e3779b97f4a7c15ull + (2 * salt + 1) * 0xff51afd7ed558ccdull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace parmem::data
