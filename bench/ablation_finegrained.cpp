// Ablation: coarse path-locking vs fine-grained (claim-based)
// promotion -- the Section 5 future-work strategy, implemented.
//
// Section 5: "in the usp-tree benchmark, every visitation of a vertex
// triggers a promotion to the root of hierarchy, causing a
// serialization of visitations. However none of these promotions
// overlap, so they ought to be able to proceed in parallel. In future
// work, we intend to design a more fine-grained promotion strategy that
// would permit parallel promotions to the same heap."
//
// This bench measures exactly that contrast. Expected shape: with
// coarse locking, usp-tree's parallel run is no faster (often slower)
// than sequential; with fine-grained claims the promotions to the root
// overlap and the speedup recovers toward usp's. Kernels without
// promotion (usp, msort) must be unaffected by the mode.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmem::bench;
  using parmem::HierRuntime;
  using parmem::PromotionMode;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  std::printf(
      "Ablation: fine-grained promotion (Section 5 future work) (P=%u)\n\n",
      procs);
  std::printf("%-15s %-7s %9s %9s %7s %12s %10s %10s\n", "benchmark", "mode",
              "T1(s)", "Tp(s)", "spd", "promotions", "promoMB", "conflicts");
  print_rule(88);

  struct Item {
    const char* name;
    KernelOut (*fn)(HierRuntime&, const Sizes&);
  };
  const Item items[] = {
      {"usp", &bench_usp<HierRuntime>},
      {"usp-tree", &bench_usp_tree<HierRuntime>},
      {"multi-usp-tree", &bench_multi_usp_tree<HierRuntime>},
      {"msort", &bench_msort<HierRuntime>},
  };
  struct Mode {
    const char* name;
    PromotionMode mode;
  };
  const Mode modes[] = {
      {"coarse", PromotionMode::kCoarseLocking},
      {"fine", PromotionMode::kFineGrained},
  };

  for (const Item& item : items) {
    if (!opt.selected(item.name)) {
      continue;
    }
    for (const Mode& mode : modes) {
      Measurement m1;
      Measurement mp;
      {
        HierRuntime::Options ro;
        ro.workers = 1;
        ro.promotion = mode.mode;
        HierRuntime rt(ro);
        m1 = measure(rt, opt.sizes, opt.runs,
                     [&item](HierRuntime& r, const Sizes& z) {
                       return item.fn(r, z);
                     });
      }
      {
        HierRuntime::Options ro;
        ro.workers = procs;
        ro.promotion = mode.mode;
        HierRuntime rt(ro);
        mp = measure(rt, opt.sizes, opt.runs,
                     [&item](HierRuntime& r, const Sizes& z) {
                       return item.fn(r, z);
                     });
      }
      std::printf("%-15s %-7s %9.3f %9.3f %6.2fx %12llu %10.2f %10llu\n",
                  item.name, mode.name, m1.seconds, mp.seconds,
                  m1.seconds / mp.seconds,
                  static_cast<unsigned long long>(mp.stats.promotions),
                  static_cast<double>(mp.stats.promoted_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<unsigned long long>(
                      mp.stats.promo_claim_conflicts));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nexpected shape: usp-tree under `coarse` serializes (speedup ~1 or "
      "below); under `fine` concurrent promotions to the root heap overlap "
      "and the speedup recovers; usp and msort perform no promotions and "
      "are mode-insensitive; conflicts stay near zero because usp-tree's "
      "promotions are disjoint (Section 5)\n");
  return 0;
}
