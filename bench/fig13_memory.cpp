// Figure 13: memory consumption (max heap occupancy including
// fragmentation) and inflation factors. Ms is the sequential baseline's
// peak; I1 and I_P are the parallel runtimes' peaks relative to Ms, on
// 1 and P processors. The paper's expectations: inflation grows with P;
// hierarchical heaps inflate somewhat more than the flat-heap baseline
// (dedicated forwarding-pointer word + per-heap chunk fragmentation).
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"

namespace parmem::bench {
namespace {

struct Row {
  const char* name;
  KernelOut (*seq)(SeqRuntime&, const Sizes&);
  KernelOut (*stw)(StwRuntime&, const Sizes&);
  KernelOut (*hier)(HierRuntime&, const Sizes&);
};

#define ROW(nm, fn) \
  Row { nm, &fn<SeqRuntime>, &fn<StwRuntime>, &fn<HierRuntime> }

const Row kRows[] = {
    ROW("fib", bench_fib),
    ROW("tabulate", bench_tabulate),
    ROW("map", bench_map),
    ROW("reduce", bench_reduce),
    ROW("filter", bench_filter),
    ROW("msort-pure", bench_msort_pure),
    ROW("dmm", bench_dmm),
    ROW("smvm", bench_smvm),
    ROW("strassen", bench_strassen),
    ROW("raytracer", bench_raytracer),
    ROW("msort", bench_msort),
    ROW("dedup", bench_dedup),
    ROW("tourney", bench_tourney),
    ROW("reachability", bench_reachability),
    ROW("usp", bench_usp),
    ROW("usp-tree", bench_usp_tree),
    ROW("multi-usp-tree", bench_multi_usp_tree),
};

template <class RT, class Fn>
Measurement run_system(const Options& opt, unsigned procs, Fn kernel) {
  typename RT::Options ro;
  ro.workers = procs;
  RT rt(ro);
  return measure(rt, opt.sizes, opt.runs,
                 [kernel](RT& r, const Sizes& z) { return kernel(r, z); });
}

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  std::printf(
      "Figure 13: memory consumption (MB) and inflation (P=%u)\n\n",
      procs);
  std::printf("%-15s | %9s | %7s %7s | %7s %7s\n", "", "mlton",
              "spoonh", "", "parmem", "");
  std::printf("%-15s | %9s | %7s %7s | %7s %7s\n", "benchmark", "Ms(MB)",
              "I1", "Ip", "I1", "Ip");
  print_rule(66);

  for (const Row& row : kRows) {
    if (!opt.selected(row.name)) {
      continue;
    }
    const Measurement seq = run_system<parmem::SeqRuntime>(opt, 1, row.seq);
    const auto ms = static_cast<double>(seq.peak_bytes);
    const Measurement stw1 = run_system<parmem::StwRuntime>(opt, 1, row.stw);
    const Measurement stwp =
        run_system<parmem::StwRuntime>(opt, procs, row.stw);
    const Measurement hier1 =
        run_system<parmem::HierRuntime>(opt, 1, row.hier);
    const Measurement hierp =
        run_system<parmem::HierRuntime>(opt, procs, row.hier);

    std::printf("%-15s | %9.1f | %7.2f %7.2f | %7.2f %7.2f\n", row.name,
                ms / (1024.0 * 1024.0),
                static_cast<double>(stw1.peak_bytes) / ms,
                static_cast<double>(stwp.peak_bytes) / ms,
                static_cast<double>(hier1.peak_bytes) / ms,
                static_cast<double>(hierp.peak_bytes) / ms);
    std::fflush(stdout);
  }
  std::printf(
      "\nMs: sequential max heap occupancy; I1/Ip: parallel peak / Ms "
      "on 1 and P processors (chunk-pool watermark, includes "
      "fragmentation from parallel allocation)\n");
  return 0;
}
