// Section 4.4's promotion-volume measurement: "we measured that on the
// map benchmark with 72 cores, manticore promoted nearly 340MB of data
// in total, whereas mlton-parmem performed no promotions."
//
// This bench runs the pure kernels AND the imperative kernels on the
// Manticore-like local-heap runtime and on hierarchical heaps at P
// workers and reports bytes promoted by each, one row per kernel. The
// expected shape: localheap promotes on the order of the input size
// (closure/result promotion at spawns, publishes, and escaping writes);
// hier promotes exactly zero on every kernel here -- including the
// imperative dedup/tourney/reachability trio, whose escaping writes are
// scalar stores that never entangle the hierarchy.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;
  const double input_mb = static_cast<double>(opt.sizes.seq_n) * 8.0 /
                          (1024.0 * 1024.0);

  std::printf("Promotion volume per kernel (P=%u, seq-kernel input %.1f MB "
              "of elements)\n\n",
              procs, input_mb);
  std::printf("%-12s | %-10s | %12s %12s %10s\n", "benchmark", "system",
              "promotions", "promoMB", "time(s)");
  print_rule(64);

  struct Item {
    const char* name;
    bool pure;
    KernelOut (*lh)(parmem::LhRuntime&, const Sizes&);
    KernelOut (*hier)(parmem::HierRuntime&, const Sizes&);
  };
#define TAB_ITEM(nm, fn, is_pure) \
  Item { nm, is_pure, &fn<parmem::LhRuntime>, &fn<parmem::HierRuntime> }
  const Item items[] = {
      TAB_ITEM("tabulate", bench_tabulate, true),
      TAB_ITEM("map", bench_map, true),
      TAB_ITEM("reduce", bench_reduce, true),
      TAB_ITEM("filter", bench_filter, true),
      TAB_ITEM("strassen", bench_strassen, true),
      TAB_ITEM("raytracer", bench_raytracer, true),
      TAB_ITEM("dedup", bench_dedup, false),
      TAB_ITEM("tourney", bench_tourney, false),
      TAB_ITEM("reachability", bench_reachability, false),
  };
#undef TAB_ITEM

  bool imp_header_printed = false;
  for (const Item& item : items) {
    if (!opt.selected(item.name)) {
      continue;
    }
    if (!item.pure && !imp_header_printed) {
      std::printf("--- imperative kernels (escaping writes) ---\n");
      imp_header_printed = true;
    }
    {
      parmem::LhRuntime::Options ro;
      ro.workers = procs;
      parmem::LhRuntime rt(ro);
      const Measurement m =
          measure(rt, opt.sizes, opt.runs,
                  [&item](parmem::LhRuntime& r, const Sizes& z) {
                    return item.lh(r, z);
                  });
      std::printf("%-12s | %-10s | %12llu %12.2f %10.3f\n", item.name,
                  "localheap",
                  static_cast<unsigned long long>(m.stats.promotions),
                  static_cast<double>(m.stats.promoted_bytes) /
                      (1024.0 * 1024.0),
                  m.seconds);
    }
    {
      parmem::HierRuntime::Options ro;
      ro.workers = procs;
      parmem::HierRuntime rt(ro);
      const Measurement m =
          measure(rt, opt.sizes, opt.runs,
                  [&item](parmem::HierRuntime& r, const Sizes& z) {
                    return item.hier(r, z);
                  });
      std::printf("%-12s | %-10s | %12llu %12.2f %10.3f\n", item.name,
                  "hier",
                  static_cast<unsigned long long>(m.stats.promotions),
                  static_cast<double>(m.stats.promoted_bytes) /
                      (1024.0 * 1024.0),
                  m.seconds);
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape (Section 4.4): the local-heap (Manticore-like) "
      "runtime promotes data on the order of the input size -- for pure "
      "programs at spawns/publishes, for the imperative kernels at the "
      "spawn-time promotion of the shared arrays every escaping write "
      "targets; hierarchical heaps promote nothing on any row here "
      "(scalar mutation never entangles)\n");
  return 0;
}
