// Section 4.4's promotion-volume measurement: "we measured that on the
// map benchmark with 72 cores, manticore promoted nearly 340MB of data
// in total, whereas mlton-parmem performed no promotions."
//
// This bench runs `map` (and `tabulate`) on the Manticore-like
// local-heap runtime and on hierarchical heaps at P workers and reports
// bytes promoted by each. The expected shape: localheap promotes on the
// order of the input size (closure/result promotion at spawns and
// steals); hier promotes exactly zero.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;
  const double input_mb = static_cast<double>(opt.sizes.seq_n) * 8.0 /
                          (1024.0 * 1024.0);

  std::printf("Promotion volume on pure benchmarks (P=%u, input %.1f MB "
              "of elements)\n\n",
              procs, input_mb);
  std::printf("%-10s | %-10s | %12s %12s %10s\n", "benchmark", "system",
              "promotions", "promoMB", "time(s)");
  print_rule(62);

  struct Item {
    const char* name;
    KernelOut (*lh)(parmem::LhRuntime&, const Sizes&);
    KernelOut (*hier)(parmem::HierRuntime&, const Sizes&);
  };
  const Item items[] = {
      {"tabulate", &bench_tabulate<parmem::LhRuntime>,
       &bench_tabulate<parmem::HierRuntime>},
      {"map", &bench_map<parmem::LhRuntime>,
       &bench_map<parmem::HierRuntime>},
      {"reduce", &bench_reduce<parmem::LhRuntime>,
       &bench_reduce<parmem::HierRuntime>},
      {"filter", &bench_filter<parmem::LhRuntime>,
       &bench_filter<parmem::HierRuntime>},
  };

  for (const Item& item : items) {
    if (!opt.selected(item.name)) {
      continue;
    }
    {
      parmem::LhRuntime::Options ro;
      ro.workers = procs;
      parmem::LhRuntime rt(ro);
      const Measurement m =
          measure(rt, opt.sizes, opt.runs,
                  [&item](parmem::LhRuntime& r, const Sizes& z) {
                    return item.lh(r, z);
                  });
      std::printf("%-10s | %-10s | %12llu %12.2f %10.3f\n", item.name,
                  "localheap",
                  static_cast<unsigned long long>(m.stats.promotions),
                  static_cast<double>(m.stats.promoted_bytes) /
                      (1024.0 * 1024.0),
                  m.seconds);
    }
    {
      parmem::HierRuntime::Options ro;
      ro.workers = procs;
      parmem::HierRuntime rt(ro);
      const Measurement m =
          measure(rt, opt.sizes, opt.runs,
                  [&item](parmem::HierRuntime& r, const Sizes& z) {
                    return item.hier(r, z);
                  });
      std::printf("%-10s | %-10s | %12llu %12.2f %10.3f\n", item.name,
                  "hier",
                  static_cast<unsigned long long>(m.stats.promotions),
                  static_cast<double>(m.stats.promoted_bytes) /
                      (1024.0 * 1024.0),
                  m.seconds);
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape (Section 4.4): the local-heap (Manticore-like) "
      "runtime promotes data on the order of the input size even for "
      "pure programs; hierarchical heaps promote nothing\n");
  return 0;
}
