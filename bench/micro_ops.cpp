// Google-benchmark microbenchmarks of the individual runtime
// operations: allocation, the read/write fast paths, the mutable-access
// barrier on promoted objects, and fork2 overhead. Complements
// fig08_op_costs with statistically managed timing.
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/deque.hpp"
#include "core/hier_runtime.hpp"
#include "core/sched.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

void BM_Alloc2Fields(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ctx.alloc(0, 2));
    }
    return 0;
  });
}
BENCHMARK(BM_Alloc2Fields);

void BM_ReadImmutable(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    Ctx::init_i64(o.get(), 0, 42);
    for (auto _ : state) {
      benchmark::DoNotOptimize(Ctx::read_i64_imm(o.get(), 0));
    }
    return 0;
  });
}
BENCHMARK(BM_ReadImmutable);

void BM_ReadMutableLocal(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    ctx.write_i64(o.get(), 0, 42);
    for (auto _ : state) {
      benchmark::DoNotOptimize(ctx.read_i64_mut(o.get(), 0));
    }
    return 0;
  });
}
BENCHMARK(BM_ReadMutableLocal);

void BM_WriteNonptrLocal(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    std::int64_t i = 0;
    for (auto _ : state) {
      ctx.write_i64(o.get(), 0, ++i);
    }
    return 0;
  });
}
BENCHMARK(BM_WriteNonptrLocal);

void BM_WritePtrLocalFastPath(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(1, 0));
    Local p = frame.local(ctx.alloc(0, 1));
    for (auto _ : state) {
      ctx.write_ptr(o.get(), 0, p.get());
    }
    return 0;
  });
}
BENCHMARK(BM_WritePtrLocalFastPath);

void BM_ReadMutablePromoted(benchmark::State& state) {
  HierRuntime rt({.workers = 2});
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          RootFrame f(c);
          Local cell = f.local(c.alloc(0, 1));
          Ctx::init_i64(cell.get(), 0, 5);
          Object* stale = cell.get();
          c.write_ptr(box.get(), 0, cell.get());  // promote; keep stale
          Local sref = f.local(stale);
          for (auto _ : state) {
            benchmark::DoNotOptimize(c.read_i64_mut(sref.get(), 0));
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_ReadMutablePromoted);

void BM_Fork2ScalarOverhead(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    for (auto _ : state) {
      auto [a, b] = HierRuntime::fork2(
          ctx, {}, [](Ctx&) { return std::int64_t{1}; },
          [](Ctx&) { return std::int64_t{2}; });
      benchmark::DoNotOptimize(a + b);
    }
    return 0;
  });
}
BENCHMARK(BM_Fork2ScalarOverhead);

void BM_PromoteSmallObject(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          for (auto _ : state) {
            Object* fresh = c.alloc(0, 1);
            Ctx::init_i64(fresh, 0, 1);
            c.write_ptr(box.get(), 0, fresh);  // promotes one object
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_PromoteSmallObject);

// --- scheduler rows --------------------------------------------------------
// fork2_throughput is the tentpole metric of the lock-free scheduler:
// forks/second through full binary fork trees with a second worker
// present. That second worker is the point: an idle thief must cost
// the fork-executing owner NOTHING. Under the old mutex deques the
// idle worker's poll loop took the owner's deque lock on every sweep
// and roughly halved throughput on a small box; with Chase-Lev the
// owner's push+pop never blocks and the parked thief never touches
// the owner's line. steal_latency measures the push ->
// executed-on-another-worker round trip. The two deque rows isolate
// the raw deque cycle, with the old mutex+vector deque kept as an
// in-tree replica so the before/after never goes stale.

std::int64_t fork_tree_count(Ctx& ctx, int depth) {
  if (depth == 0) {
    return 1;
  }
  auto [a, b] = HierRuntime::fork2(
      ctx, {}, [&](Ctx& c) { return fork_tree_count(c, depth - 1); },
      [&](Ctx& c) { return fork_tree_count(c, depth - 1); });
  return a + b;
}

void BM_Fork2Throughput(benchmark::State& state) {
  constexpr int kDepth = 8;  // 255 forks per iteration
  HierRuntime rt({.workers = 2});
  rt.run([&state](Ctx& ctx) {
    std::int64_t leaves = 0;
    for (auto _ : state) {
      leaves += fork_tree_count(ctx, kDepth);
    }
    benchmark::DoNotOptimize(leaves);
    return 0;
  });
  state.SetItemsProcessed(state.iterations() * ((1 << kDepth) - 1));
}
BENCHMARK(BM_Fork2Throughput);

struct PingTask : WorkStealPool::Task {
  std::atomic<bool> done{false};
  void execute() override { done.store(true, std::memory_order_release); }
};

void BM_StealLatency(benchmark::State& state) {
  WorkStealPool pool(2);
  WorkStealPool::Scope scope(&pool);
  for (auto _ : state) {
    PingTask t;
    pool.push(&t);
    // Wait without helping: the task completes only when the other
    // worker steals it, so the measured interval is push -> stolen ->
    // executed. The yield matters on boxes with fewer cores than
    // workers -- without it the waiter burns its whole quantum before
    // the thief can run at all.
    while (!t.done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}
BENCHMARK(BM_StealLatency);

void BM_DequePushPop(benchmark::State& state) {
  ChaseLevDeque<PingTask> dq;
  PingTask t;
  for (auto _ : state) {
    dq.push(&t);
    benchmark::DoNotOptimize(dq.pop());
  }
}
BENCHMARK(BM_DequePushPop);

// Replica of the pre-Chase-Lev mutex deque, kept so every recording
// carries its own before/after of the uncontended fork cycle.
struct MutexDeque {
  std::mutex mu;
  std::vector<PingTask*> tasks;
};

void BM_MutexDequePushPop(benchmark::State& state) {
  MutexDeque dq;
  PingTask t;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> g(dq.mu);
      dq.tasks.push_back(&t);
    }
    PingTask* p = nullptr;
    {
      std::lock_guard<std::mutex> g(dq.mu);
      if (!dq.tasks.empty() && dq.tasks.back() == &t) {
        dq.tasks.pop_back();
        p = &t;
      }
    }
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_MutexDequePushPop);

// --- fine-grained promotion mode (Section 5 future work) -------------------
// The per-op costs of the claim-based mode, for comparison with the
// coarse rows above: the local fast paths are identical instructions,
// the promotion swaps path locks for one CAS + a spinlocked bump.

HierRuntime::Options fine_opts(unsigned workers = 1) {
  HierRuntime::Options o;
  o.workers = workers;
  o.promotion = PromotionMode::kFineGrained;
  return o;
}

void BM_WriteNonptrLocalFine(benchmark::State& state) {
  HierRuntime rt(fine_opts());
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    std::int64_t i = 0;
    for (auto _ : state) {
      ctx.write_i64(o.get(), 0, ++i);
    }
    return 0;
  });
}
BENCHMARK(BM_WriteNonptrLocalFine);

void BM_ReadMutablePromotedFine(benchmark::State& state) {
  HierRuntime rt(fine_opts(2));
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          RootFrame f(c);
          Local cell = f.local(c.alloc(0, 1));
          Ctx::init_i64(cell.get(), 0, 5);
          Object* stale = cell.get();
          c.write_ptr(box.get(), 0, cell.get());
          Local sref = f.local(stale);
          for (auto _ : state) {
            benchmark::DoNotOptimize(c.read_i64_mut(sref.get(), 0));
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_ReadMutablePromotedFine);

void BM_PromoteSmallObjectFine(benchmark::State& state) {
  HierRuntime rt(fine_opts());
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          for (auto _ : state) {
            Object* fresh = c.alloc(0, 1);
            Ctx::init_i64(fresh, 0, 1);
            c.write_ptr(box.get(), 0, fresh);
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_PromoteSmallObjectFine);

}  // namespace
}  // namespace parmem

BENCHMARK_MAIN();
