// Google-benchmark microbenchmarks of the individual runtime
// operations: allocation, the read/write fast paths, the mutable-access
// barrier on promoted objects, and fork2 overhead. Complements
// fig08_op_costs with statistically managed timing.
#include <benchmark/benchmark.h>

#include "core/hier_runtime.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

void BM_Alloc2Fields(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ctx.alloc(0, 2));
    }
    return 0;
  });
}
BENCHMARK(BM_Alloc2Fields);

void BM_ReadImmutable(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    Ctx::init_i64(o.get(), 0, 42);
    for (auto _ : state) {
      benchmark::DoNotOptimize(Ctx::read_i64_imm(o.get(), 0));
    }
    return 0;
  });
}
BENCHMARK(BM_ReadImmutable);

void BM_ReadMutableLocal(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    ctx.write_i64(o.get(), 0, 42);
    for (auto _ : state) {
      benchmark::DoNotOptimize(ctx.read_i64_mut(o.get(), 0));
    }
    return 0;
  });
}
BENCHMARK(BM_ReadMutableLocal);

void BM_WriteNonptrLocal(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    std::int64_t i = 0;
    for (auto _ : state) {
      ctx.write_i64(o.get(), 0, ++i);
    }
    return 0;
  });
}
BENCHMARK(BM_WriteNonptrLocal);

void BM_WritePtrLocalFastPath(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(1, 0));
    Local p = frame.local(ctx.alloc(0, 1));
    for (auto _ : state) {
      ctx.write_ptr(o.get(), 0, p.get());
    }
    return 0;
  });
}
BENCHMARK(BM_WritePtrLocalFastPath);

void BM_ReadMutablePromoted(benchmark::State& state) {
  HierRuntime rt({.workers = 2});
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          RootFrame f(c);
          Local cell = f.local(c.alloc(0, 1));
          Ctx::init_i64(cell.get(), 0, 5);
          Object* stale = cell.get();
          c.write_ptr(box.get(), 0, cell.get());  // promote; keep stale
          Local sref = f.local(stale);
          for (auto _ : state) {
            benchmark::DoNotOptimize(c.read_i64_mut(sref.get(), 0));
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_ReadMutablePromoted);

void BM_Fork2ScalarOverhead(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    for (auto _ : state) {
      auto [a, b] = HierRuntime::fork2(
          ctx, {}, [](Ctx&) { return std::int64_t{1}; },
          [](Ctx&) { return std::int64_t{2}; });
      benchmark::DoNotOptimize(a + b);
    }
    return 0;
  });
}
BENCHMARK(BM_Fork2ScalarOverhead);

void BM_PromoteSmallObject(benchmark::State& state) {
  HierRuntime rt;
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          for (auto _ : state) {
            Object* fresh = c.alloc(0, 1);
            Ctx::init_i64(fresh, 0, 1);
            c.write_ptr(box.get(), 0, fresh);  // promotes one object
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_PromoteSmallObject);

// --- fine-grained promotion mode (Section 5 future work) -------------------
// The per-op costs of the claim-based mode, for comparison with the
// coarse rows above: the local fast paths are identical instructions,
// the promotion swaps path locks for one CAS + a spinlocked bump.

HierRuntime::Options fine_opts(unsigned workers = 1) {
  HierRuntime::Options o;
  o.workers = workers;
  o.promotion = PromotionMode::kFineGrained;
  return o;
}

void BM_WriteNonptrLocalFine(benchmark::State& state) {
  HierRuntime rt(fine_opts());
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(0, 2));
    std::int64_t i = 0;
    for (auto _ : state) {
      ctx.write_i64(o.get(), 0, ++i);
    }
    return 0;
  });
}
BENCHMARK(BM_WriteNonptrLocalFine);

void BM_ReadMutablePromotedFine(benchmark::State& state) {
  HierRuntime rt(fine_opts(2));
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          RootFrame f(c);
          Local cell = f.local(c.alloc(0, 1));
          Ctx::init_i64(cell.get(), 0, 5);
          Object* stale = cell.get();
          c.write_ptr(box.get(), 0, cell.get());
          Local sref = f.local(stale);
          for (auto _ : state) {
            benchmark::DoNotOptimize(c.read_i64_mut(sref.get(), 0));
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_ReadMutablePromotedFine);

void BM_PromoteSmallObjectFine(benchmark::State& state) {
  HierRuntime rt(fine_opts());
  rt.run([&state](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [&state, box](Ctx& c) {
          for (auto _ : state) {
            Object* fresh = c.alloc(0, 1);
            Ctx::init_i64(fresh, 0, 1);
            c.write_ptr(box.get(), 0, fresh);
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}
BENCHMARK(BM_PromoteSmallObjectFine);

}  // namespace
}  // namespace parmem

BENCHMARK_MAIN();
