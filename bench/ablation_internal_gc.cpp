// Ablation: hierarchy-aware internal-heap collection
// (core/gc_internal.hpp, HierRuntime::Options::gc_internal_threshold).
//
// The promoting imperative kernels (usp-tree, multi-usp-tree) pump
// promoted masters AND merged-up stale originals into heaps whose
// owners sit blocked in fork2 for most of the run; without internal
// collection that garbage accumulates until the owner's own join-time
// or budget collection finally sees it. The threshold rows collect
// those busy heaps mid-run, trading GC work for peak occupancy.
//
// dedup and reachability are the CONTROLS: their escaping writes are
// scalar stores, so hierarchical heaps promote nothing, no heap ever
// crosses the threshold, and the rows must match the off row (same
// checksum, no internal collections, peak within noise).
//
// Checksums are verified identical across policies for every kernel --
// the differential guarantee the GC-stress harness enforces in ctest,
// re-checked here at bench sizes.
#include <cstdio>
#include <cstdlib>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

struct Policy {
  const char* label;
  std::size_t threshold;
  unsigned team;
};

struct Kernel {
  const char* name;
  KernelOut (*fn)(HierRuntime&, const Sizes&);
  bool promoting;  // expected to show the peak reduction
};

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;
  Sizes z = opt.sizes;
  if (!opt.quick && z.usp_side < 112) {
    // The signal is root-heap garbage ~ cells * object size: keep the
    // grid large enough that it dominates the transient leaf footprint.
    z.usp_side = 112;
  }

  const Policy policies[] = {
      {"off", 0, 0},
      {"64KiB", std::size_t{1} << 16, 0},
      {"64KiB-team", std::size_t{1} << 16, procs > 1 ? procs : 2},
  };
  const Kernel kernels[] = {
      {"usp-tree", &bench_usp_tree<HierRuntime>, true},
      {"multi-usp-tree", &bench_multi_usp_tree<HierRuntime>, true},
      {"dedup", &bench_dedup<HierRuntime>, false},
      {"reachability", &bench_reachability<HierRuntime>, false},
  };

  std::printf(
      "Ablation: internal-heap collection (gc_internal_threshold), P=%u\n"
      "(usp-tree rows promote into busy internal heaps; dedup and\n"
      " reachability promote nothing under hier and are the controls)\n\n",
      procs);
  std::printf("%-15s %-11s %9s %9s %8s %8s %9s %8s\n", "kernel", "policy",
              "Tp(s)", "peakMB", "promoMB", "igcs", "igcMB", "gc%");
  print_rule(84);

  bool checksums_ok = true;
  bool invariants_ok = true;
  int reduced = 0;
  for (const Kernel& k : kernels) {
    std::int64_t ref_checksum = 0;
    std::size_t off_peak = 0;
    std::uint64_t off_promoted = 0;
    for (const Policy& p : policies) {
      HierRuntime::Options ro;
      ro.workers = procs;
      ro.gc_internal_threshold = p.threshold;
      ro.gc_parallel_team = p.team;
      HierRuntime rt(ro);
      const Measurement m = measure(rt, z, opt.runs, k.fn);
      if (p.threshold == 0) {
        ref_checksum = m.checksum;
        off_peak = m.peak_bytes;
        off_promoted = m.stats.promoted_bytes;
      } else {
        if (m.checksum != ref_checksum) {
          checksums_ok = false;
        }
        // The footer's claims are enforced, not just printed: internal
        // collection never promotes, and the zero-promotion controls
        // never trigger it.
        if (m.stats.promoted_bytes != off_promoted) {
          invariants_ok = false;
        }
        if (p.team == 0 && k.promoting && m.peak_bytes < off_peak) {
          ++reduced;
        }
      }
      if (!k.promoting && m.stats.internal_gc_count != 0) {
        invariants_ok = false;
      }
      std::printf(
          "%-15s %-11s %9.3f %9s %8s %8llu %9.2f %8s\n", k.name, p.label,
          m.seconds, fmt_mb(m.peak_bytes).c_str(),
          fmt_mb(m.stats.promoted_bytes).c_str(),
          static_cast<unsigned long long>(m.stats.internal_gc_count),
          static_cast<double>(m.stats.internal_gc_bytes) / 1048576.0,
          fmt_pct(m.gc_fraction(procs)).c_str());
      std::fflush(stdout);
    }
    print_rule(84);
  }

  std::printf(
      "\nchecksums across policies: %s\n"
      "promotion/control invariants: %s\n"
      "promoting kernels with peak reduction (threshold vs off): %d of 2\n"
      "expected shape: the usp-tree rows trade internal-GC work for a\n"
      "lower peak (the busy root/branch heaps are collected mid-run\n"
      "instead of accumulating promoted masters and merged stale\n"
      "originals); the control rows run zero internal collections and\n"
      "match the off rows; promoted bytes are identical across policies\n"
      "(internal collection never promotes)\n",
      checksums_ok ? "IDENTICAL" : "MISMATCH",
      invariants_ok ? "HELD" : "VIOLATED", reduced);
  if (!checksums_ok || !invariants_ok) {
    return 1;
  }
  return 0;
}
