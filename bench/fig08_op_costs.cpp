// Figure 8: measured costs of each memory operation under hierarchical
// heaps, by object class:
//   local    -- in the running task's own leaf heap, no copies
//   distant  -- in an ancestor heap, no copies
//   promoted -- has a forwarding chain (stale copy held by the task)
// and by operation: read immutable / read mutable / write non-pointer /
// non-promoting pointer write / promoting pointer write.
//
// The paper's qualitative matrix:  v = single instruction, vv = a few
// instructions, ~ = single-heap locking, ~~ = path locking + copying.
// This bench prints measured ns/op for every defined cell.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "core/hier_runtime.hpp"

namespace parmem::bench {
namespace {

using Ctx = HierRuntime::Ctx;

constexpr std::int64_t kHotIters = 1 << 21;
constexpr std::int64_t kPromoteIters = 1 << 15;

double ns_per_op(double seconds, std::int64_t iters) {
  return seconds * 1e9 / static_cast<double>(iters);
}

struct CellTimes {
  double read_imm = -1;
  double read_mut = -1;
  double write_non = -1;
  double write_ptr_nonpromo = -1;
  double write_ptr_promo = -1;
};

// Measures ops against `obj` (rooted by the caller); `peer` is a pointer
// value legal to store into obj's pointer field without promotion.
CellTimes measure_cell(Ctx& ctx, Local obj, Local peer,
                       bool include_promoting) {
  CellTimes out;
  volatile std::int64_t sink = 0;
  {
    Timer t;
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < kHotIters; ++i) {
      acc += Ctx::read_i64_imm(obj.get(), 0);
    }
    sink = acc;
    out.read_imm = ns_per_op(t.seconds(), kHotIters);
  }
  {
    Timer t;
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < kHotIters; ++i) {
      acc += ctx.read_i64_mut(obj.get(), 0);
    }
    sink = acc;
    out.read_mut = ns_per_op(t.seconds(), kHotIters);
  }
  {
    Timer t;
    for (std::int64_t i = 0; i < kHotIters; ++i) {
      ctx.write_i64(obj.get(), 0, i);
    }
    out.write_non = ns_per_op(t.seconds(), kHotIters);
  }
  {
    Timer t;
    for (std::int64_t i = 0; i < kHotIters; ++i) {
      ctx.write_ptr(obj.get(), 0, peer.get());
    }
    out.write_ptr_nonpromo = ns_per_op(t.seconds(), kHotIters);
  }
  if (include_promoting) {
    Timer t;
    for (std::int64_t i = 0; i < kPromoteIters; ++i) {
      // A fresh local object written into the distant/promoted target:
      // every write promotes its (single-object) closure.
      Object* fresh = ctx.alloc(0, 1);
      Ctx::init_i64(fresh, 0, i);
      ctx.write_ptr(obj.get(), 0, fresh);
    }
    out.write_ptr_promo = ns_per_op(t.seconds(), kPromoteIters);
  }
  (void)sink;
  return out;
}

void print_row(const char* name, const CellTimes& c) {
  auto cell = [](double v) {
    if (v < 0) {
      std::printf(" %9s", "-");
    } else {
      std::printf(" %8.1f ", v);
    }
  };
  std::printf("%-9s", name);
  cell(c.read_imm);
  cell(c.read_mut);
  cell(c.write_non);
  cell(c.write_ptr_nonpromo);
  cell(c.write_ptr_promo);
  std::printf("\n");
}

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  using parmem::Local;
  using parmem::Object;
  using parmem::RootFrame;
  (void)parse_options(argc, argv);

  parmem::HierRuntime rt({.workers = 2});
  CellTimes local_times;
  CellTimes distant_times;
  CellTimes promoted_times;

  rt.run([&](Ctx& ctx) {
    RootFrame frame(ctx);
    // Parent-level (distant-to-be) objects at depth 0.
    Local distant = frame.local(ctx.alloc(1, 1));
    Local distant_peer = frame.local(ctx.alloc(0, 1));
    Local box = frame.local(ctx.alloc(1, 0));
    Ctx::init_i64(distant.get(), 0, 42);

    parmem::HierRuntime::fork2(
        ctx, {distant, distant_peer, box},
        [&](Ctx& c) {
          RootFrame f(c);
          // LOCAL: everything in the child's own leaf heap.
          Local local_obj = f.local(c.alloc(1, 1));
          Local local_peer = f.local(c.alloc(0, 1));
          Ctx::init_i64(local_obj.get(), 0, 7);
          local_times = measure_cell(c, local_obj, local_peer, false);

          // DISTANT: the parent's object; peer also lives at the parent
          // so plain pointer writes do not promote.
          distant_times = measure_cell(c, distant, distant_peer, true);

          // PROMOTED: a local object that acquired a forwarding chain by
          // being published to the parent's box; the child keeps the
          // stale reference.
          Local prom = f.local(c.alloc(1, 1));
          Ctx::init_i64(prom.get(), 0, 9);
          Object* stale = prom.get();
          c.write_ptr(box.get(), 0, prom.get());  // promotes
          Local stale_ref = f.local(stale);
          promoted_times = measure_cell(c, stale_ref, distant_peer, true);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });

  std::printf("Figure 8: measured memory-operation costs (ns/op), "
              "hierarchical runtime\n\n");
  std::printf("%-9s %9s %9s %9s %9s %9s\n", "", "read-imm", "read-mut",
              "write-np", "wptr-nonp", "wptr-promo");
  print_rule(60);
  print_row("local", local_times);
  print_row("distant", distant_times);
  print_row("promoted", promoted_times);
  std::printf(
      "\npaper's qualitative matrix: local row = plain/few instructions; "
      "distant reads/non-ptr writes cheap, distant non-promoting ptr "
      "writes take one heap lock, promoting writes lock the path and "
      "copy; promoted rows pay the findMaster barrier (immutable reads "
      "stay plain everywhere)\n");
  return 0;
}
