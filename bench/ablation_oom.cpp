// Ablation: bounded-memory operation (heap budgets + fault injection).
//
// For every paper kernel on the hierarchical runtime: measure the
// unbudgeted peak, then re-run under hard budgets of {1.25, 1.0, 0.75,
// 0.5} x peak. Each budgeted run ends in exactly one of two states --
// the unbudgeted checksum (the emergency-collection cascade absorbed
// the squeeze) or a clean typed parmem::OutOfMemory -- and the table
// is the degradation curve: how far below its natural peak each kernel
// can be squeezed before it stops fitting.
//
// A second section sweeps deterministic allocation faults
// (chunk_alloc=fail@N for growing N, plus an all-sites probabilistic
// spec) across all four runtimes on a promoting kernel: every outcome
// must again be checksum-exact or clean OOM.
//
// Exit status is the differential guarantee: 1 on any silent
// corruption (run completed, checksum wrong) or non-OutOfMemory
// escape; 0 otherwise. The CI oom-sweep row runs this under ASan.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/failpoint.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

template <class RT>
struct Kernel {
  const char* name;
  KernelOut (*fn)(RT&, const Sizes&);
};

#define PARMEM_OOM_KERNELS(RT)                           \
  {                                                      \
    {"fib", &bench_fib<RT>},                             \
    {"tabulate", &bench_tabulate<RT>},                   \
    {"map", &bench_map<RT>},                             \
    {"reduce", &bench_reduce<RT>},                       \
    {"filter", &bench_filter<RT>},                       \
    {"msort-pure", &bench_msort_pure<RT>},               \
    {"dmm", &bench_dmm<RT>},                             \
    {"smvm", &bench_smvm<RT>},                           \
    {"msort", &bench_msort<RT>},                         \
    {"usp", &bench_usp<RT>},                             \
    {"usp-tree", &bench_usp_tree<RT>},                   \
    {"multi-usp-tree", &bench_multi_usp_tree<RT>},       \
    {"strassen", &bench_strassen<RT>},                   \
    {"raytracer", &bench_raytracer<RT>},                 \
    {"dedup", &bench_dedup<RT>},                         \
    {"tourney", &bench_tourney<RT>},                     \
    {"reachability", &bench_reachability<RT>},           \
  }

// One budgeted/faulted run. Outcome is one of "ok" (correct checksum),
// "oom" (clean typed OutOfMemory), or a failure label that flips the
// process exit status.
struct Outcome {
  const char* label;
  double seconds = 0.0;
  std::size_t peak = 0;
  std::uint64_t emergency_gcs = 0;
  bool bad = false;
};

template <class RT>
Outcome run_bounded(KernelOut (*fn)(RT&, const Sizes&), const Sizes& z,
                    unsigned workers, std::size_t budget,
                    const std::string& faults, std::int64_t ref) {
  Outcome o;
  typename RT::Options ro;
  ro.workers = workers;
  ro.heap_budget_bytes = budget;
  ro.failpoints = faults;
  RT rt(ro);
  Timer t;
  try {
    std::int64_t sum = fn(rt, z).checksum;
    o.label = sum == ref ? "ok" : "CORRUPT";
    o.bad = sum != ref;
  } catch (const OutOfMemory&) {
    o.label = "oom";
  } catch (...) {
    o.label = "ESCAPED";  // wrong exception type crossed the API
    o.bad = true;
  }
  o.seconds = t.seconds();
  o.peak = rt.peak_bytes();
  o.emergency_gcs = rt.stats().emergency_gcs;
  failpoint::Registry::instance().reset();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;
  const Sizes z = opt.sizes;

  bool all_ok = true;
  int oom_runs = 0;
  int recovered = 0;  // completed with emergency_gcs > 0

  // ---- degradation curve: hier, budgets as fractions of own peak ----
  const Kernel<HierRuntime> hier_kernels[] = PARMEM_OOM_KERNELS(HierRuntime);
  const double fracs[] = {1.25, 1.0, 0.75, 0.5};

  std::printf(
      "Ablation: bounded-memory operation, P=%u\n"
      "(budgets are fractions of each kernel's own unbudgeted peak;\n"
      " every cell must be a correct checksum or a clean OutOfMemory)\n\n",
      procs);
  std::printf("%-15s %9s | %s\n", "kernel", "peakMB",
              "x1.25      x1.00      x0.75      x0.50");
  print_rule(72);

  for (const Kernel<HierRuntime>& k : hier_kernels) {
    std::int64_t ref;
    std::size_t peak;
    {
      HierRuntime::Options ro;
      ro.workers = procs;
      HierRuntime rt(ro);
      const Measurement m = measure(rt, z, opt.runs, k.fn);
      ref = m.checksum;
      peak = m.peak_bytes;
    }
    std::printf("%-15s %9s |", k.name, fmt_mb(peak).c_str());
    for (double f : fracs) {
      std::size_t budget =
          static_cast<std::size_t>(static_cast<double>(peak) * f);
      Outcome o = run_bounded<HierRuntime>(k.fn, z, procs, budget, "", ref);
      all_ok = all_ok && !o.bad;
      oom_runs += std::string(o.label) == "oom";
      if (std::string(o.label) == "ok" && o.emergency_gcs > 0) {
        ++recovered;
      }
      char cell[32];
      std::snprintf(cell, sizeof cell, "%s/%llu", o.label,
                    static_cast<unsigned long long>(o.emergency_gcs));
      std::printf(" %10s", cell);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  print_rule(72);
  std::printf("(cells are outcome/emergency-collections)\n\n");

  // ---- fault sweep: all four runtimes, a promoting kernel ----
  std::printf("Fault sweep: usp-tree under injected allocation faults\n\n");
  std::printf("%-10s %-44s %8s %8s\n", "runtime", "faults", "outcome",
              "egcs");
  print_rule(74);

  const char* sweeps[] = {
      "chunk_alloc=fail@1",
      "chunk_alloc=fail@8",
      "chunk_alloc=fail@64",
      "chunk_alloc=every(16)",
      "chunk_alloc=prob(0.05,7);packet_alloc=prob(0.2,11);"
      "promote_copy=prob(0.02,13)",
  };
  SeqRuntime plain;
  const std::int64_t ref = bench_usp_tree(plain, z).checksum;
  auto sweep_runtime = [&](const char* name, auto* tag) {
    using RT = std::remove_pointer_t<decltype(tag)>;
    for (const char* spec : sweeps) {
      Outcome o = run_bounded<RT>(&bench_usp_tree<RT>, z, procs, 0, spec, ref);
      all_ok = all_ok && !o.bad;
      oom_runs += std::string(o.label) == "oom";
      if (std::string(o.label) == "ok" && o.emergency_gcs > 0) {
        ++recovered;
      }
      std::printf("%-10s %-44s %8s %8llu\n", name, spec, o.label,
                  static_cast<unsigned long long>(o.emergency_gcs));
      std::fflush(stdout);
    }
  };
  sweep_runtime("seq", static_cast<SeqRuntime*>(nullptr));
  sweep_runtime("stw", static_cast<StwRuntime*>(nullptr));
  sweep_runtime("localheap", static_cast<LhRuntime*>(nullptr));
  sweep_runtime("hier", static_cast<HierRuntime*>(nullptr));
  print_rule(74);

  std::printf(
      "\nbounded-memory guarantee: %s\n"
      "clean OutOfMemory outcomes: %d\n"
      "runs recovered by the emergency cascade: %d\n"
      "expected shape: x1.25 rows complete without emergency\n"
      "collections; tighter budgets either fit after emergency\n"
      "collection (ok/N with N>0) or refuse cleanly (oom); one-shot\n"
      "chunk faults always recover via the cascade; every(16) and the\n"
      "probabilistic spec may refuse but never corrupt\n",
      all_ok ? "HELD" : "VIOLATED", oom_runs, recovered);
  return all_ok ? 0 : 1;
}
