// Figure 10: execution times, overheads, speedups, and GC percentages
// of the purely functional benchmarks across the four systems:
//   mlton            -> parmem::SeqRuntime      (sequential baseline)
//   mlton-spoonhower -> parmem::StwRuntime      (parallel, STW GC)
//   manticore        -> parmem::LhRuntime       (local heaps + promotion)
//   mlton-parmem     -> parmem::HierRuntime     (hierarchical heaps)
//
// Run with --procs=P --runs=R --scale=F --bench=a,b --quick.
#include <cstdio>
#include <string>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"

namespace parmem::bench {
namespace {

struct PureRow {
  const char* name;
  KernelOut (*seq)(SeqRuntime&, const Sizes&);
  KernelOut (*stw)(StwRuntime&, const Sizes&);
  KernelOut (*lh)(LhRuntime&, const Sizes&);
  KernelOut (*hier)(HierRuntime&, const Sizes&);
  bool lh_supported;  // msort-pure: "--" in the paper (compiler bug)
};

#define PURE_ROW(nm, fn, lh_ok)                                       \
  PureRow {                                                           \
    nm, &fn<SeqRuntime>, &fn<StwRuntime>, &fn<LhRuntime>,             \
        &fn<HierRuntime>, lh_ok                                       \
  }

const PureRow kRows[] = {
    PURE_ROW("fib", bench_fib, true),
    PURE_ROW("tabulate", bench_tabulate, true),
    PURE_ROW("map", bench_map, true),
    PURE_ROW("reduce", bench_reduce, true),
    PURE_ROW("filter", bench_filter, true),
    PURE_ROW("msort-pure", bench_msort_pure, false),
    PURE_ROW("dmm", bench_dmm, true),
    PURE_ROW("smvm", bench_smvm, true),
    PURE_ROW("strassen", bench_strassen, true),
    PURE_ROW("raytracer", bench_raytracer, true),
};

template <class RT, class Fn>
Measurement run_system(const Options& opt, unsigned procs, Fn kernel) {
  typename RT::Options ro;
  ro.workers = procs;
  RT rt(ro);
  return measure(rt, opt.sizes, opt.runs,
                 [kernel](RT& r, const Sizes& z) { return kernel(r, z); });
}

void print_header(unsigned procs) {
  std::printf(
      "Figure 10: purely functional benchmarks "
      "(P=%u; medians of --runs runs; times in seconds)\n\n",
      procs);
  std::printf("%-11s | %7s %5s | %7s %5s %7s %5s %5s | %7s %5s %7s %5s | "
              "%7s %5s %7s %5s %5s\n",
              "", "mlton", "", "spoonh", "", "", "", "", "mantic", "", "",
              "", "parmem", "", "", "", "");
  std::printf("%-11s | %7s %5s | %7s %5s %7s %5s %5s | %7s %5s %7s %5s | "
              "%7s %5s %7s %5s %5s\n",
              "benchmark", "Ts", "GCs", "T1", "ovh", "Tp", "spd", "GCp",
              "T1", "ovh", "Tp", "spd", "T1", "ovh", "Tp", "spd", "GCp");
  print_rule(132);
}

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;
  print_header(procs);

  for (const PureRow& row : kRows) {
    if (!opt.selected(row.name)) {
      continue;
    }
    const Measurement seq =
        run_system<parmem::SeqRuntime>(opt, 1, row.seq);
    const double ts = seq.seconds;

    const Measurement stw1 =
        run_system<parmem::StwRuntime>(opt, 1, row.stw);
    const Measurement stwp =
        run_system<parmem::StwRuntime>(opt, procs, row.stw);

    Measurement lh1;
    Measurement lhp;
    if (row.lh_supported) {
      lh1 = run_system<parmem::LhRuntime>(opt, 1, row.lh);
      lhp = run_system<parmem::LhRuntime>(opt, procs, row.lh);
    }

    const Measurement hier1 =
        run_system<parmem::HierRuntime>(opt, 1, row.hier);
    const Measurement hierp =
        run_system<parmem::HierRuntime>(opt, procs, row.hier);

    // Cross-runtime verification: checksums must agree.
    auto check = [&](const Measurement& m, const char* sys) {
      if (m.checksum != seq.checksum) {
        std::printf("!! checksum mismatch on %s/%s: %lld vs %lld\n",
                    row.name, sys,
                    static_cast<long long>(m.checksum),
                    static_cast<long long>(seq.checksum));
      }
    };
    check(stw1, "stw");
    check(stwp, "stw-p");
    if (row.lh_supported) {
      check(lh1, "localheap");
      check(lhp, "localheap-p");
    }
    check(hier1, "hier");
    check(hierp, "hier-p");

    std::printf("%-11s | %7.3f %5.1f | %7.3f %5.2f %7.3f %5.2f %5.1f | ",
                row.name, ts, 100.0 * seq.gc_fraction(), stw1.seconds,
                stw1.seconds / ts, stwp.seconds, ts / stwp.seconds,
                100.0 * stwp.gc_fraction());
    if (row.lh_supported) {
      std::printf("%7.3f %5.2f %7.3f %5.2f | ", lh1.seconds,
                  lh1.seconds / ts, lhp.seconds, ts / lhp.seconds);
    } else {
      std::printf("%7s %5s %7s %5s | ", "--", "--", "--", "--");
    }
    std::printf("%7.3f %5.2f %7.3f %5.2f %5.1f\n", hier1.seconds,
                hier1.seconds / ts, hierp.seconds, ts / hierp.seconds,
                100.0 * hierp.gc_fraction());
    std::fflush(stdout);
  }
  std::printf(
      "\ncolumns: Ts sequential time; GCs %% time in GC (sequential); "
      "T1/Tp times on 1/P procs; ovh = T1/Ts; spd = Ts/Tp; GCp %% "
      "processor time in GC at P procs (STW pauses count all stopped "
      "workers)\n");
  return 0;
}
