// Figure 10: execution times, overheads, speedups, and GC percentages
// of the purely functional benchmarks across the four systems:
//   mlton            -> parmem::SeqRuntime      (sequential baseline)
//   mlton-spoonhower -> parmem::StwRuntime      (parallel, STW GC)
//   manticore        -> parmem::LhRuntime       (local heaps + promotion)
//   mlton-parmem     -> parmem::HierRuntime     (hierarchical heaps)
//
// Run with --procs=P --runs=R --scale=F --bench=a,b --json=PATH --quick.
// --json records one section per runtime (scripts/run_bench.sh uses it
// for the BENCH_runtimes.json baseline).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"

namespace parmem::bench {
namespace {

struct PureRow {
  const char* name;
  KernelOut (*seq)(SeqRuntime&, const Sizes&);
  KernelOut (*stw)(StwRuntime&, const Sizes&);
  KernelOut (*lh)(LhRuntime&, const Sizes&);
  KernelOut (*hier)(HierRuntime&, const Sizes&);
  bool lh_supported;  // msort-pure: "--" in the paper (compiler bug)
};

#define PURE_ROW(nm, fn, lh_ok)                                       \
  PureRow {                                                           \
    nm, &fn<SeqRuntime>, &fn<StwRuntime>, &fn<LhRuntime>,             \
        &fn<HierRuntime>, lh_ok                                       \
  }

const PureRow kRows[] = {
    PURE_ROW("fib", bench_fib, true),
    PURE_ROW("tabulate", bench_tabulate, true),
    PURE_ROW("map", bench_map, true),
    PURE_ROW("reduce", bench_reduce, true),
    PURE_ROW("filter", bench_filter, true),
    PURE_ROW("msort-pure", bench_msort_pure, false),
    PURE_ROW("dmm", bench_dmm, true),
    PURE_ROW("smvm", bench_smvm, true),
    PURE_ROW("strassen", bench_strassen, true),
    PURE_ROW("raytracer", bench_raytracer, true),
};

struct RowResult {
  const char* name = nullptr;
  Measurement seq;
  Measurement stw1;
  Measurement stwp;
  Measurement lh1;
  Measurement lhp;
  bool lh_ok = false;
  Measurement hier1;
  Measurement hierp;
};

template <class RT, class Fn>
Measurement run_system(const Options& opt, unsigned procs, Fn kernel) {
  typename RT::Options ro;
  ro.workers = procs;
  RT rt(ro);
  return measure(rt, opt.sizes, opt.runs,
                 [kernel](RT& r, const Sizes& z) { return kernel(r, z); });
}

void print_header(unsigned procs) {
  std::printf(
      "Figure 10: purely functional benchmarks "
      "(P=%u; medians of --runs runs; times in seconds)\n\n",
      procs);
  std::printf("%-11s | %7s %5s | %7s %5s %7s %5s %5s | %7s %5s %7s %5s | "
              "%7s %5s %7s %5s %5s\n",
              "", "mlton", "", "spoonh", "", "", "", "", "mantic", "", "",
              "", "parmem", "", "", "", "");
  std::printf("%-11s | %7s %5s | %7s %5s %7s %5s %5s | %7s %5s %7s %5s | "
              "%7s %5s %7s %5s %5s\n",
              "benchmark", "Ts", "GCs", "T1", "ovh", "Tp", "spd", "GCp",
              "T1", "ovh", "Tp", "spd", "T1", "ovh", "Tp", "spd", "GCp");
  print_rule(132);
}

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;
  print_header(procs);

  std::vector<RowResult> results;
  int mismatches = 0;
  for (const PureRow& row : kRows) {
    if (!opt.selected(row.name)) {
      continue;
    }
    RowResult res;
    res.name = row.name;
    res.lh_ok = row.lh_supported;
    res.seq = run_system<parmem::SeqRuntime>(opt, 1, row.seq);
    const double ts = res.seq.seconds;

    res.stw1 = run_system<parmem::StwRuntime>(opt, 1, row.stw);
    res.stwp = run_system<parmem::StwRuntime>(opt, procs, row.stw);

    if (row.lh_supported) {
      res.lh1 = run_system<parmem::LhRuntime>(opt, 1, row.lh);
      res.lhp = run_system<parmem::LhRuntime>(opt, procs, row.lh);
    }

    res.hier1 = run_system<parmem::HierRuntime>(opt, 1, row.hier);
    res.hierp = run_system<parmem::HierRuntime>(opt, procs, row.hier);

    // Cross-runtime verification: checksums must agree.
    auto check = [&](const Measurement& m, const char* sys) {
      if (m.checksum != res.seq.checksum) {
        std::printf("!! checksum mismatch on %s/%s: %lld vs %lld\n",
                    row.name, sys,
                    static_cast<long long>(m.checksum),
                    static_cast<long long>(res.seq.checksum));
        ++mismatches;
      }
    };
    check(res.stw1, "stw");
    check(res.stwp, "stw-p");
    if (row.lh_supported) {
      check(res.lh1, "localheap");
      check(res.lhp, "localheap-p");
    }
    check(res.hier1, "hier");
    check(res.hierp, "hier-p");

    std::printf("%-11s | %7.3f %5.1f | %7.3f %5.2f %7.3f %5.2f %5.1f | ",
                row.name, ts, 100.0 * res.seq.gc_fraction(),
                res.stw1.seconds, res.stw1.seconds / ts, res.stwp.seconds,
                ts / res.stwp.seconds, 100.0 * res.stwp.gc_fraction(procs));
    if (row.lh_supported) {
      std::printf("%7.3f %5.2f %7.3f %5.2f | ", res.lh1.seconds,
                  res.lh1.seconds / ts, res.lhp.seconds,
                  ts / res.lhp.seconds);
    } else {
      std::printf("%7s %5s %7s %5s | ", "--", "--", "--", "--");
    }
    std::printf("%7.3f %5.2f %7.3f %5.2f %5.1f\n", res.hier1.seconds,
                res.hier1.seconds / ts, res.hierp.seconds,
                ts / res.hierp.seconds,
                100.0 * res.hierp.gc_fraction(procs));
    std::fflush(stdout);
    results.push_back(res);
  }
  std::printf(
      "\ncolumns: Ts sequential time; GCs %% time in GC (sequential); "
      "T1/Tp times on 1/P procs; ovh = T1/Ts; spd = Ts/Tp; GCp %% "
      "processor time in GC at P procs (STW pauses count all stopped "
      "workers)\n");

  RuntimeJson json;
  if (json.open(opt.json_out, procs, opt.sizes)) {
    json.begin_runtime(parmem::SeqRuntime::kName);
    for (const RowResult& r : results) {
      json.add(r.name, 1, r.seq);
    }
    json.end_runtime();
    // (name, procs) is the key consumers diff on: emit the P-procs row
    // only when it is distinct from the 1-proc row.
    json.begin_runtime(parmem::StwRuntime::kName);
    for (const RowResult& r : results) {
      json.add(r.name, 1, r.stw1);
      if (procs != 1) {
        json.add(r.name, procs, r.stwp);
      }
    }
    json.end_runtime();
    json.begin_runtime(parmem::LhRuntime::kName);
    for (const RowResult& r : results) {
      if (r.lh_ok) {
        json.add(r.name, 1, r.lh1);
        if (procs != 1) {
          json.add(r.name, procs, r.lhp);
        }
      }
    }
    json.end_runtime();
    json.begin_runtime(parmem::HierRuntime::kName);
    for (const RowResult& r : results) {
      json.add(r.name, 1, r.hier1);
      if (procs != 1) {
        json.add(r.name, procs, r.hierp);
      }
    }
    json.end_runtime();
    json.close();
    std::printf("per-runtime JSON written: %s\n", opt.json_out.c_str());
  }
  if (mismatches != 0) {
    std::printf("!! %d checksum mismatch(es)\n", mismatches);
    return 1;
  }
  return 0;
}
