// parmem-serve: steady-state serving comparison across the four
// runtimes (seq / stw / localheap / hier). Two passes per runtime:
//
//   1. a fixed-count VERIFY wave -- every runtime processes request ids
//      [0, N) exactly once and must produce the same commutative
//      checksum (request results are pure functions of (seed, id)), so
//      a mismatch is a correctness bug, not noise; and
//   2. a fixed-duration MEASURED wave -- millions of independent
//      requests for --duration seconds (after a warmup that is
//      excluded), reporting throughput, p50/p95/p99/max request
//      latency from the per-lane merged histograms, peak and
//      steady-state RSS, and the fragmentation ratio RSS / live bytes.
//
// Run with --procs=P --duration=SECS --warmup=SECS --requests=N
// --seed=S --json=PATH --quick. scripts/run_bench.sh records the JSON
// as the BENCH_serve.json baseline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common/harness.hpp"
#include "bench_common/serve_harness.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"

namespace parmem::bench {
namespace {

using serve::ServeConfig;
using serve::ServeResult;

struct ServeRow {
  const char* runtime = nullptr;
  unsigned procs = 0;
  std::int64_t verify_checksum = 0;
  ServeResult measured;
};

template <class RT>
RT make_runtime(unsigned procs);

template <>
SeqRuntime make_runtime<SeqRuntime>(unsigned) {
  return SeqRuntime(SeqRuntime::Options{});
}

template <>
StwRuntime make_runtime<StwRuntime>(unsigned procs) {
  StwRuntime::Options o;
  o.workers = procs;
  return StwRuntime(o);
}

template <>
LhRuntime make_runtime<LhRuntime>(unsigned procs) {
  LhRuntime::Options o;
  o.workers = procs;
  // Production-shaped knob: collect the global promotion sink once per
  // MB promoted. Without it the sink grows for the whole burst and the
  // steady-state RSS row measures the leak, not the runtime (the
  // localheap row used to sit near 45x its live set here). Resolved
  // from PARMEM_GC_GLOBAL_THRESHOLD when set (the runtime itself only
  // consults the env while the option is 0), so run_bench.sh's
  // global_gc section can sweep it -- "0" restores the pure sink.
  const char* thr_env = std::getenv("PARMEM_GC_GLOBAL_THRESHOLD");
  o.gc_global_threshold =
      thr_env != nullptr && thr_env[0] != '\0'
          ? static_cast<std::size_t>(std::strtoull(thr_env, nullptr, 10))
          : std::size_t{1} << 20;
  return LhRuntime(o);
}

template <>
HierRuntime make_runtime<HierRuntime>(unsigned procs) {
  HierRuntime::Options o;
  o.workers = procs;
  // Production-shaped knob: bound each request tree's post-join garbage
  // (and exercise the stopped-world all-frames join path on the serve
  // request path, where its soundness fix matters).
  o.gc_join_threshold = std::size_t{1} << 20;
  return HierRuntime(o);
}

template <class RT>
ServeRow run_runtime(unsigned procs, const ServeConfig& base,
                     std::uint64_t verify_requests, double duration_s,
                     double warmup_s) {
  RT rt = make_runtime<RT>(procs);
  ServeRow row;
  row.runtime = RT::kName;
  row.procs = rt.workers();

  // Pass 1: fixed count, no sampling -- the checksum is the product.
  ServeConfig verify = base;
  verify.requests = verify_requests;
  verify.duration_s = 0.0;
  verify.sample_memory = false;
  row.verify_checksum = serve::serve_run(rt, verify).checksum;

  // Pass 2: fixed duration against a fresh runtime, so pass 1's peak
  // memory does not pollute the steady-state measurement.
  RT rt2 = make_runtime<RT>(procs);
  ServeConfig measured = base;
  measured.duration_s = duration_s;
  measured.warmup_s = warmup_s;
  row.measured = serve::serve_run(rt2, measured);
  return row;
}

void print_row(const ServeRow& r) {
  const ServeResult& m = r.measured;
  std::printf(
      "%-9s %5u %5u | %9.0f | %8.1f %8.1f %8.1f %9.1f | %7.1f %7.1f %5.2f | "
      "%6llu\n",
      r.runtime, r.procs, m.lanes, m.throughput_rps,
      static_cast<double>(m.latency.percentile_ns(0.50)) * 1e-3,
      static_cast<double>(m.latency.percentile_ns(0.95)) * 1e-3,
      static_cast<double>(m.latency.percentile_ns(0.99)) * 1e-3,
      static_cast<double>(m.latency.max_ns()) * 1e-3,
      static_cast<double>(m.peak_rss_bytes) / (1024.0 * 1024.0),
      static_cast<double>(m.steady_rss_bytes) / (1024.0 * 1024.0),
      m.frag_ratio,
      static_cast<unsigned long long>(m.stats.gc_count));
}

void json_row(std::FILE* f, const ServeRow& r, bool first) {
  const ServeResult& m = r.measured;
  std::fprintf(
      f,
      "%s\n    \"%s\": {\"procs\": %u, \"lanes\": %u, "
      "\"requests\": %llu, \"seconds\": %.6f, \"throughput_rps\": %.1f, "
      "\"p50_ns\": %llu, \"p95_ns\": %llu, \"p99_ns\": %llu, "
      "\"max_ns\": %llu, \"mean_ns\": %.1f, "
      "\"peak_rss_bytes\": %zu, \"steady_rss_bytes\": %zu, "
      "\"steady_live_bytes\": %zu, \"frag_ratio\": %.3f, "
      "\"verify_checksum\": %lld, \"gc_count\": %llu, \"gc_ns\": %llu, "
      "\"promotions\": %llu}",
      first ? "" : ",", r.runtime, r.procs, m.lanes,
      static_cast<unsigned long long>(m.requests), m.seconds,
      m.throughput_rps,
      static_cast<unsigned long long>(m.latency.percentile_ns(0.50)),
      static_cast<unsigned long long>(m.latency.percentile_ns(0.95)),
      static_cast<unsigned long long>(m.latency.percentile_ns(0.99)),
      static_cast<unsigned long long>(m.latency.max_ns()),
      m.latency.mean_ns(), m.peak_rss_bytes, m.steady_rss_bytes,
      m.steady_live_bytes, m.frag_ratio,
      static_cast<long long>(r.verify_checksum),
      static_cast<unsigned long long>(m.stats.gc_count),
      static_cast<unsigned long long>(m.stats.gc_ns),
      static_cast<unsigned long long>(m.stats.promotions));
}

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);

  // Serve-specific flags (parse_options ignores unknown arguments).
  double duration_s = opt.quick ? 1.0 : 5.0;
  double warmup_s = 0.2;
  std::uint64_t verify_requests = opt.quick ? 90 : 600;
  const char* runtime_filter = nullptr;  // --runtime=seq|stw|localheap|hier
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--duration=", 11) == 0) {
      duration_s = std::strtod(a + 11, nullptr);
    } else if (std::strncmp(a, "--warmup=", 9) == 0) {
      warmup_s = std::strtod(a + 9, nullptr);
    } else if (std::strncmp(a, "--requests=", 11) == 0) {
      verify_requests = std::strtoull(a + 11, nullptr, 10);
    } else if (std::strncmp(a, "--runtime=", 10) == 0) {
      runtime_filter = a + 10;
    }
  }
  // One-runtime mode for profiling: scripts/run_bench.sh profile runs
  // the driver once per runtime so each flame graph / trace / stats
  // recording covers exactly one system (the profiler and trace layers
  // are process-wide). Cross-runtime checksum agreement still holds
  // within whatever subset runs.
  auto want = [runtime_filter](const char* name) {
    return runtime_filter == nullptr ||
           std::strcmp(runtime_filter, name) == 0;
  };

  ServeConfig base;
  base.lanes = 0;  // one lane per worker
  base.seed = opt.sizes.seed;

  std::printf(
      "parmem-serve: steady-state serving (P=%u, %.1fs measured after "
      "%.1fs warmup; verify wave = %llu requests)\n\n",
      opt.procs, duration_s, warmup_s,
      static_cast<unsigned long long>(verify_requests));
  std::printf("%-9s %5s %5s | %9s | %8s %8s %8s %9s | %7s %7s %5s | %6s\n",
              "runtime", "P", "lanes", "req/s", "p50us", "p95us", "p99us",
              "maxus", "peakMB", "stdyMB", "frag", "GCs");
  print_rule(104);

  std::vector<ServeRow> rows;
  if (want(parmem::SeqRuntime::kName)) {
    rows.push_back(run_runtime<parmem::SeqRuntime>(1, base, verify_requests,
                                                   duration_s, warmup_s));
    print_row(rows.back());
  }
  if (want(parmem::StwRuntime::kName)) {
    rows.push_back(run_runtime<parmem::StwRuntime>(
        opt.procs, base, verify_requests, duration_s, warmup_s));
    print_row(rows.back());
  }
  if (want(parmem::LhRuntime::kName)) {
    rows.push_back(run_runtime<parmem::LhRuntime>(
        opt.procs, base, verify_requests, duration_s, warmup_s));
    print_row(rows.back());
  }
  if (want(parmem::HierRuntime::kName)) {
    rows.push_back(run_runtime<parmem::HierRuntime>(
        opt.procs, base, verify_requests, duration_s, warmup_s));
    print_row(rows.back());
  }
  if (rows.empty()) {
    std::fprintf(stderr, "unknown --runtime=%s (seq|stw|localheap|hier)\n",
                 runtime_filter);
    return 2;
  }

  // Cross-runtime agreement on the fixed-count wave: same request set,
  // same per-request results, whatever the runtime and lane count.
  int mismatches = 0;
  for (const ServeRow& r : rows) {
    if (r.verify_checksum != rows[0].verify_checksum) {
      std::printf("!! verify checksum mismatch on %s: %lld vs %lld\n",
                  r.runtime, static_cast<long long>(r.verify_checksum),
                  static_cast<long long>(rows[0].verify_checksum));
      ++mismatches;
    }
  }
  std::printf(
      "\ncolumns: req/s post-warmup throughput; p50/p95/p99/max request "
      "latency (microseconds, conservative bucket upper bounds); "
      "peak/stdy RSS; frag = steady RSS / steady live bytes\n");

  if (!opt.json_out.empty()) {
    std::FILE* f = std::fopen(opt.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"procs\": %u,\n  \"duration_s\": %g,\n"
                 "  \"warmup_s\": %g,\n  \"verify_requests\": %llu,\n"
                 "  \"runtimes\": {",
                 opt.procs, duration_s, warmup_s,
                 static_cast<unsigned long long>(verify_requests));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json_row(f, rows[i], i == 0);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("serve JSON written: %s\n", opt.json_out.c_str());
  }
  if (mismatches != 0) {
    std::printf("!! %d verify checksum mismatch(es)\n", mismatches);
    return 1;
  }
  return 0;
}
