// Figure 11: execution times, overheads, speedups, and GC percentages
// of the imperative benchmarks on the sequential baseline, the
// stop-the-world baseline, and hierarchical heaps. These benchmarks use
// mutation and are "not implementable in Manticore" (Section 4.2) --
// our local-heap runtime CAN run them by promoting at escaping writes,
// which is exactly the O(input) promotion contrast tab_promotion_volume
// tabulates; the figure keeps the paper's three-system layout.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"

namespace parmem::bench {
namespace {

struct ImpRow {
  const char* name;
  KernelOut (*seq)(SeqRuntime&, const Sizes&);
  KernelOut (*stw)(StwRuntime&, const Sizes&);
  KernelOut (*hier)(HierRuntime&, const Sizes&);
};

#define IMP_ROW(nm, fn) \
  ImpRow { nm, &fn<SeqRuntime>, &fn<StwRuntime>, &fn<HierRuntime> }

const ImpRow kRows[] = {
    IMP_ROW("msort", bench_msort),
    IMP_ROW("dedup", bench_dedup),
    IMP_ROW("tourney", bench_tourney),
    IMP_ROW("reachability", bench_reachability),
    IMP_ROW("usp", bench_usp),
    IMP_ROW("usp-tree", bench_usp_tree),
    IMP_ROW("multi-usp-tree", bench_multi_usp_tree),
};

template <class RT, class Fn>
Measurement run_system(const Options& opt, unsigned procs, Fn kernel) {
  typename RT::Options ro;
  ro.workers = procs;
  RT rt(ro);
  return measure(rt, opt.sizes, opt.runs,
                 [kernel](RT& r, const Sizes& z) { return kernel(r, z); });
}

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  std::printf(
      "Figure 11: imperative benchmarks (P=%u; medians of --runs runs; "
      "times in seconds)\n\n",
      procs);
  std::printf("%-15s | %7s %5s | %7s %5s %7s %5s %5s | "
              "%7s %5s %7s %5s %5s | %9s\n",
              "", "mlton", "", "spoonh", "", "", "", "", "parmem", "", "",
              "", "", "parmem");
  std::printf("%-15s | %7s %5s | %7s %5s %7s %5s %5s | "
              "%7s %5s %7s %5s %5s | %9s\n",
              "benchmark", "Ts", "GCs", "T1", "ovh", "Tp", "spd", "GCp",
              "T1", "ovh", "Tp", "spd", "GCp", "promoMB");
  print_rule(124);

  int mismatches = 0;
  for (const ImpRow& row : kRows) {
    if (!opt.selected(row.name)) {
      continue;
    }
    const Measurement seq = run_system<parmem::SeqRuntime>(opt, 1, row.seq);
    const double ts = seq.seconds;
    const Measurement stw1 = run_system<parmem::StwRuntime>(opt, 1, row.stw);
    const Measurement stwp =
        run_system<parmem::StwRuntime>(opt, procs, row.stw);
    const Measurement hier1 =
        run_system<parmem::HierRuntime>(opt, 1, row.hier);
    const Measurement hierp =
        run_system<parmem::HierRuntime>(opt, procs, row.hier);

    auto check = [&](const Measurement& m, const char* sys) {
      if (m.checksum != seq.checksum) {
        std::printf("!! checksum mismatch on %s/%s: %lld vs %lld\n",
                    row.name, sys, static_cast<long long>(m.checksum),
                    static_cast<long long>(seq.checksum));
        ++mismatches;
      }
    };
    check(stw1, "stw");
    check(stwp, "stw-p");
    check(hier1, "hier");
    check(hierp, "hier-p");

    std::printf(
        "%-15s | %7.3f %5.1f | %7.3f %5.2f %7.3f %5.2f %5.1f | "
        "%7.3f %5.2f %7.3f %5.2f %5.1f | %9.2f\n",
        row.name, ts, 100.0 * seq.gc_fraction(), stw1.seconds,
        stw1.seconds / ts, stwp.seconds, ts / stwp.seconds,
        100.0 * stwp.gc_fraction(procs), hier1.seconds, hier1.seconds / ts,
        hierp.seconds, ts / hierp.seconds,
        100.0 * hierp.gc_fraction(procs),
        static_cast<double>(hierp.stats.promoted_bytes) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  std::printf(
      "\ncolumns as in Figure 10; promoMB = data promoted by "
      "mlton-parmem at P procs (usp-tree promotes per visitation; "
      "multi-usp-tree promotions can run in parallel)\n");
  if (mismatches != 0) {
    std::printf("!! %d checksum mismatch(es)\n", mismatches);
    return 1;
  }
  return 0;
}
