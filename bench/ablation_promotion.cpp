// Ablation: promotion serialization (Sections 4.4 and 5).
//
// usp-tree's visitation writes all promote into a single ancestor heap,
// and promotion locks the whole path, so visitations serialize: its
// speedup collapses even though the BFS itself is parallel. Running
// several usp-tree instances in parallel (multi-usp-tree) gives each
// instance its own promotion target, so promotions proceed in parallel
// again. usp (same BFS, non-pointer distances, no promotion) is the
// control.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/seq_runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  std::printf("Ablation: promotion path-locking serialization (P=%u)\n\n",
              procs);
  std::printf("%-15s %9s %9s %7s %12s %10s\n", "benchmark", "T1(s)",
              "Tp(s)", "spd", "promotions", "promoMB");
  print_rule(70);

  struct Item {
    const char* name;
    KernelOut (*fn)(parmem::HierRuntime&, const Sizes&);
  };
  const Item items[] = {
      {"usp", &bench_usp<parmem::HierRuntime>},
      {"usp-tree", &bench_usp_tree<parmem::HierRuntime>},
      {"multi-usp-tree", &bench_multi_usp_tree<parmem::HierRuntime>},
  };

  for (const Item& item : items) {
    if (!opt.selected(item.name)) {
      continue;
    }
    Measurement m1;
    Measurement mp;
    {
      parmem::HierRuntime rt({.workers = 1});
      m1 = measure(rt, opt.sizes, opt.runs,
                   [&item](parmem::HierRuntime& r, const Sizes& z) {
                     return item.fn(r, z);
                   });
    }
    {
      parmem::HierRuntime::Options ro;
      ro.workers = procs;
      parmem::HierRuntime rt(ro);
      mp = measure(rt, opt.sizes, opt.runs,
                   [&item](parmem::HierRuntime& r, const Sizes& z) {
                     return item.fn(r, z);
                   });
    }
    std::printf("%-15s %9.3f %9.3f %6.2fx %12llu %10.2f\n", item.name,
                m1.seconds, mp.seconds, m1.seconds / mp.seconds,
                static_cast<unsigned long long>(mp.stats.promotions),
                static_cast<double>(mp.stats.promoted_bytes) /
                    (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape: usp scales; usp-tree's speedup collapses "
      "toward (or below) 1 because every visitation promotes to the "
      "same heap under a path lock; multi-usp-tree recovers parallelism "
      "because instances promote into disjoint heaps (Section 4.4)\n");
  return 0;
}
