// Figure 12: speedup of mlton-parmem (the hierarchical runtime) as the
// processor count grows, for all benchmarks. The paper plots P=1..72;
// here the sweep runs P=1..procs. The expected shape: speedups increase
// monotonically with P ("there are no inversions"), except for the
// promotion-serialized usp-tree.
#include <cstdio>
#include <vector>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/seq_runtime.hpp"

namespace parmem::bench {
namespace {

struct Row {
  const char* name;
  KernelOut (*seq)(SeqRuntime&, const Sizes&);
  KernelOut (*hier)(HierRuntime&, const Sizes&);
};

#define ROW(nm, fn) \
  Row { nm, &fn<SeqRuntime>, &fn<HierRuntime> }

const Row kRows[] = {
    ROW("fib", bench_fib),
    ROW("tabulate", bench_tabulate),
    ROW("map", bench_map),
    ROW("reduce", bench_reduce),
    ROW("filter", bench_filter),
    ROW("msort-pure", bench_msort_pure),
    ROW("dmm", bench_dmm),
    ROW("smvm", bench_smvm),
    ROW("strassen", bench_strassen),
    ROW("raytracer", bench_raytracer),
    ROW("msort", bench_msort),
    ROW("dedup", bench_dedup),
    ROW("tourney", bench_tourney),
    ROW("reachability", bench_reachability),
    ROW("usp", bench_usp),
    ROW("usp-tree", bench_usp_tree),
    ROW("multi-usp-tree", bench_multi_usp_tree),
};

}  // namespace
}  // namespace parmem::bench

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);

  std::vector<unsigned> procs;
  for (unsigned p = 1; p <= opt.procs; ++p) {
    procs.push_back(p);
  }

  std::printf(
      "Figure 12: speedups (Ts / T_P) of mlton-parmem as P grows\n\n");
  std::printf("%-15s %8s ", "benchmark", "Ts");
  for (const unsigned p : procs) {
    std::printf("  P=%-5u", p);
  }
  std::printf("\n");
  print_rule(26 + 8 * static_cast<int>(procs.size()));

  int mismatches = 0;
  for (const Row& row : kRows) {
    if (!opt.selected(row.name)) {
      continue;
    }
    parmem::SeqRuntime seq_rt;
    const Measurement seq =
        measure(seq_rt, opt.sizes, opt.runs,
                [&row](parmem::SeqRuntime& r, const Sizes& z) {
                  return row.seq(r, z);
                });
    std::printf("%-15s %8.3f ", row.name, seq.seconds);
    for (const unsigned p : procs) {
      parmem::HierRuntime::Options ro;
      ro.workers = p;
      parmem::HierRuntime rt(ro);
      const Measurement m =
          measure(rt, opt.sizes, opt.runs,
                  [&row](parmem::HierRuntime& r, const Sizes& z) {
                    return row.hier(r, z);
                  });
      if (m.checksum != seq.checksum) {
        std::printf("  !MISM ");
        ++mismatches;
      } else {
        std::printf("  %5.2fx", seq.seconds / m.seconds);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: monotone increase with P for all rows "
              "except usp-tree (promotion path-locking serializes it; "
              "multi-usp-tree recovers parallelism)\n");
  if (mismatches != 0) {
    std::printf("!! %d checksum mismatch(es)\n", mismatches);
    return 1;
  }
  return 0;
}
