// Ablation: leaf-GC budget sensitivity. The hierarchical collector
// triggers a leaf collection when a heap's allocation since its last
// collection exceeds max(min_budget, growth * live). Smaller budgets
// collect more often (more copying, less memory); larger budgets trade
// memory for time. This sweep quantifies the trade-off on the
// allocation-heavy msort-pure benchmark.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  std::printf("Ablation: leaf-GC budget (msort-pure, hier, P=%u)\n\n",
              procs);
  std::printf("%-12s | %9s | %7s | %8s | %10s | %9s\n", "min budget",
              "time(s)", "GC%%", "GCs", "copiedMB", "peakMB");
  print_rule(70);

  for (const std::size_t budget :
       {std::size_t{256} << 10, std::size_t{1} << 20, std::size_t{4} << 20,
        std::size_t{16} << 20, std::size_t{64} << 20}) {
    parmem::HierRuntime::Options ro;
    ro.workers = procs;
    ro.gc_min_budget = budget;
    parmem::HierRuntime rt(ro);
    const Measurement m =
        measure(rt, opt.sizes, opt.runs,
                [](parmem::HierRuntime& r, const Sizes& z) {
                  return bench_msort_pure(r, z);
                });
    std::printf("%9zuKiB | %9.3f | %6.1f%% | %8llu | %10.1f | %9.1f\n",
                budget >> 10, m.seconds, 100.0 * m.gc_fraction(procs),
                static_cast<unsigned long long>(m.stats.gc_count),
                static_cast<double>(m.stats.gc_bytes_copied) /
                    (1024.0 * 1024.0),
                static_cast<double>(m.peak_bytes) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape: time and copied bytes fall as the budget "
      "grows, while peak memory rises -- the classic semispace "
      "time/space trade-off, applied per leaf heap\n");
  return 0;
}
