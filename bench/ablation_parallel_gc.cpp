// Ablation: parallel collection of individual heaps, and join-time
// subtree collection -- the two GC completions Section 5 plans.
//
// Part 1 isolates core/gc_parallel.hpp: one large quiesced heap holding
// a mixed object graph is evacuated by teams of increasing size. The
// paper's collector corresponds to team=1 ("each such collection is
// sequential"); the expected shape is collection time falling with team
// size until memory bandwidth saturates.
//
// Part 2 measures the join-time policy (gc_join_threshold): a
// promotion-heavy kernel leaves stale originals in child heaps at every
// join; collecting the quiesced two-sibling subtree before it merges
// upward lowers peak heap occupancy for some GC time.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/gc_parallel.hpp"
#include "core/hier_runtime.hpp"
#include "data/rand.hpp"

namespace {

using namespace parmem;

// Builds a mixed graph (~bytes of cells, arrays, and a fan hub) in one
// heap; returns roots.
std::vector<Object*> build_heap(HeapArena& arena, HeapRecord*& heap,
                                std::size_t target_bytes,
                                std::uint64_t seed) {
  heap = arena.create(nullptr, 0);
  std::uint64_t s = seed;
  auto rnd = [&s](std::uint64_t mod) {
    s = data::hash64(s, mod + 1);
    return s % mod;
  };
  std::vector<Object*> objs;
  std::size_t used = 0;
  while (used < target_bytes) {
    // Supercritical fan-out within a sliding window: overlapping windows
    // percolate backward, so the periodic roots below anchor nearly the
    // whole heap through wide (parallelism-friendly) subgraphs.
    const auto np = static_cast<std::uint32_t>(1 + rnd(3));
    const auto nn = static_cast<std::uint32_t>(1 + rnd(24));
    void* mem = heap->allocate_raw(object_bytes(np, nn));
    Object* o = init_object(mem, np, nn);
    for (std::uint32_t k = 0; k < nn; ++k) {
      o->store_i64_plain(k, static_cast<std::int64_t>(rnd(1u << 30)));
    }
    const std::size_t window = objs.size() < 4096 ? objs.size() : 4096;
    for (std::uint32_t k = 0; k < np; ++k) {
      if (window > 0 && rnd(5) != 0) {
        o->store_ptr_plain(k, objs[objs.size() - 1 - rnd(window)]);
      }
    }
    used += object_bytes(np, nn);
    objs.push_back(o);
  }
  std::vector<Object*> roots;
  for (std::size_t i = 0; i < objs.size(); i += 2048) {
    roots.push_back(objs[i]);
  }
  roots.push_back(objs.back());
  return roots;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  // --- Part 1: parallel evacuation of one big heap ----------------------
  const std::size_t heap_bytes = static_cast<std::size_t>(
      96.0 * 1024.0 * 1024.0 * (opt.sizes.scale < 1.0 ? opt.sizes.scale : 1.0));
  std::printf("Ablation: parallel collection of one heap (%zu MB live-ish)\n\n",
              heap_bytes >> 20);
  std::printf("%6s %10s %10s %8s %12s %12s\n", "team", "gc(s)", "spd",
              "copied", "objects", "conflicts");
  print_rule(64);

  double t1 = 0.0;
  for (unsigned team = 1; team <= 2 * procs; team *= 2) {
    double best = 1e99;
    core::ParallelGcOutcome out{};
    for (int r = 0; r < opt.runs; ++r) {
      ChunkPool pool;
      HeapArena arena(pool);
      HeapRecord* heap = nullptr;
      // Same seed for every repetition and team size: all rows evacuate
      // the identical graph, so best-of-runs time and the copy counts
      // describe the same work.
      std::vector<Object*> roots =
          build_heap(arena, heap, heap_bytes, opt.sizes.seed);
      core::ParallelCollector pc(pool, {heap},
                                 core::ParallelGcOptions{team, 128});
      Timer timer;
      core::ParallelGcOutcome run_out = pc.collect([&roots](auto&& f) {
        for (Object*& root : roots) {
          f(&root);
        }
      });
      double seconds = timer.seconds();
      if (seconds < best) {
        best = seconds;
        out = std::move(run_out);
      }
      heap->install_chunk_list(nullptr, nullptr, 0);
    }
    if (team == 1) {
      t1 = best;
    }
    std::printf("%6u %10.3f %9.2fx %7.1fM %12llu %12llu\n", team, best,
                t1 / best,
                static_cast<double>(out.totals.bytes_copied) / 1048576.0,
                static_cast<unsigned long long>(out.totals.objects_copied),
                static_cast<unsigned long long>(out.claim_conflicts));
    std::fflush(stdout);
  }

  // --- Part 2: join-time subtree collection ------------------------------
  std::printf(
      "\nAblation: join-time subtree collection (usp-tree kernel, P=%u)\n\n",
      procs);
  std::printf("%-10s %9s %10s %8s %10s\n", "join-gc", "Tp(s)", "peakMB",
              "gcs", "gc%");
  print_rule(52);
  struct JoinPolicy {
    const char* label;
    std::size_t threshold;
    unsigned team;
  };
  // The team row collects the same subtrees with gc_parallel_team
  // workers; at these subtree sizes the per-collection thread spawn
  // usually dominates, which is exactly the tradeoff to expose.
  const JoinPolicy policies[] = {
      {"off", 0, 0},
      {"64KiB", std::size_t{1} << 16, 0},
      {"64KiB-team", std::size_t{1} << 16, procs > 1 ? procs : 2},
  };
  for (const JoinPolicy& p : policies) {
    HierRuntime::Options ro;
    ro.workers = procs;
    ro.gc_join_threshold = p.threshold;
    ro.gc_parallel_team = p.team;
    HierRuntime rt(ro);
    const Measurement m =
        measure(rt, opt.sizes, opt.runs, [](HierRuntime& r, const Sizes& z) {
          return bench_usp_tree(r, z);
        });
    std::printf("%-10s %9.3f %10s %8llu %10s\n", p.label, m.seconds,
                fmt_mb(m.peak_bytes).c_str(),
                static_cast<unsigned long long>(m.stats.gc_count),
                fmt_pct(m.gc_fraction()).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape: part 1 -- collection time drops with team size "
      "(the paper's sequential collector is team=1); part 2 -- join-time "
      "collection trades GC work for lower peak occupancy on "
      "promotion-heavy joins, and the team row only wins once subtrees "
      "are large enough to amortize its per-collection thread spawn\n");
  return 0;
}
