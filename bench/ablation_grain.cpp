// Ablation: sequential-threshold (GRAIN) sensitivity, the idiom the
// paper's Section 2 motivates ("the overhead of parallelism is
// amortized by switching to a fast sequential algorithm on small
// inputs"). Sweeps the leaf threshold of msort and the tabulate grain.
//
// Also measures the paper's claim that imperative msort beats the
// purely functional msort-pure ("msort can be up to twice as fast as a
// purely functional alternative") at every grain.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"

int main(int argc, char** argv) {
  using namespace parmem::bench;
  Options opt = parse_options(argc, argv);
  const unsigned procs = opt.procs;

  std::printf("Ablation: GRAIN sensitivity on hierarchical heaps "
              "(P=%u)\n\n",
              procs);
  std::printf("%-10s | %10s | %10s | %10s | %8s\n", "grain",
              "msort(s)", "msort-pure", "tabulate", "imp/pure");
  print_rule(62);

  for (const std::int64_t grain :
       {std::int64_t{512}, std::int64_t{2048}, std::int64_t{8192},
        std::int64_t{32768}, std::int64_t{131072}}) {
    Sizes z = opt.sizes;
    z.sort_grain = grain;
    z.seq_grain = grain;
    // Equalize the two sort input sizes so the imperative/pure ratio is
    // meaningful.
    z.msort_pure_n = z.msort_n;

    parmem::HierRuntime::Options ro;
    ro.workers = procs;

    double t_msort;
    double t_pure;
    double t_tab;
    {
      parmem::HierRuntime rt(ro);
      t_msort = measure(rt, z, opt.runs,
                        [](parmem::HierRuntime& r, const Sizes& s) {
                          return bench_msort(r, s);
                        })
                    .seconds;
    }
    {
      parmem::HierRuntime rt(ro);
      t_pure = measure(rt, z, opt.runs,
                       [](parmem::HierRuntime& r, const Sizes& s) {
                         return bench_msort_pure(r, s);
                       })
                   .seconds;
    }
    {
      parmem::HierRuntime rt(ro);
      t_tab = measure(rt, z, opt.runs,
                      [](parmem::HierRuntime& r, const Sizes& s) {
                        return bench_tabulate(r, s);
                      })
                  .seconds;
    }
    std::printf("%-10lld | %10.3f | %10.3f | %10.3f | %7.2fx\n",
                static_cast<long long>(grain), t_msort, t_pure, t_tab,
                t_pure / t_msort);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape: a sweet spot at mid grains (too small => "
      "fork overhead; too large => no parallelism), and imperative "
      "msort consistently faster than msort-pure (up to ~2x, Section "
      "2)\n");
  return 0;
}
