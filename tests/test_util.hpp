// Minimal self-registering test harness: each PARMEM_TEST(name) links
// into a registry; the binary runs one named test (as driven by ctest)
// or all of them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace parmem::test {

using TestFn = void (*)();
std::map<std::string, TestFn>& registry();

struct Register {
  Register(const char* name, TestFn fn) { registry()[name] = fn; }
};

}  // namespace parmem::test

#define PARMEM_TEST(name)                                          \
  static void parmem_test_##name();                                \
  static ::parmem::test::Register parmem_reg_##name(#name,         \
                                                    &parmem_test_##name); \
  static void parmem_test_##name()

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                 \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#define CHECK_EQ(a, b)                                                  \
  do {                                                                  \
    auto va_ = (a);                                                     \
    auto vb_ = (b);                                                     \
    if (!(va_ == vb_)) {                                                \
      std::fprintf(stderr,                                              \
                   "CHECK_EQ failed: %s == %s (%lld vs %lld) at %s:%d\n", \
                   #a, #b, static_cast<long long>(va_),                 \
                   static_cast<long long>(vb_), __FILE__, __LINE__);    \
      std::abort();                                                     \
    }                                                                   \
  } while (0)
