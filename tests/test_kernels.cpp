// Cross-runtime parity for the five paper kernels added after the
// original twelve (strassen, raytracer, dedup, tourney, reachability):
// identical checksums on seq, stw, localheap, and hier at 1 and 2
// workers, plus the promotion contrasts the new kernels exist to
// demonstrate -- pure kernels promote nothing under hierarchical
// heaps, and the imperative trio's escaping scalar writes promote the
// whole shared input under local heaps but nothing under hier.
#include <cstdint>
#include <vector>

#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

Sizes tiny_sizes() {
  Sizes z;
  z.scale = 0.001;
  z.seq_n = 6000;
  z.seq_grain = 512;
  z.sort_grain = 256;
  z.strassen_n = 32;
  z.strassen_cutoff = 8;
  z.ray_w = 64;
  z.ray_h = 48;
  z.dedup_n = 3000;
  z.tourney_n = 2048;
  z.reach_n = 4000;
  return z;
}

template <class RT>
std::int64_t run_kernel(KernelOut (*fn)(RT&, const Sizes&), unsigned workers,
                        const Sizes& z) {
  typename RT::Options o;
  o.workers = workers;
  RT rt(o);
  // Twice on the same runtime: checksums must be stable across the
  // reuse of chunk pools / worker heaps that bench_common::measure does.
  std::int64_t first = fn(rt, z).checksum;
  CHECK_EQ(fn(rt, z).checksum, first);
  return first;
}

#define PARITY_TEST(name, fn)                                            \
  PARMEM_TEST(parity_##name) {                                           \
    const Sizes z = tiny_sizes();                                        \
    const std::int64_t ref = run_kernel<SeqRuntime>(&fn<SeqRuntime>, 1, z); \
    for (unsigned w : {1u, 2u}) {                                        \
      CHECK_EQ(run_kernel<StwRuntime>(&fn<StwRuntime>, w, z), ref);      \
      CHECK_EQ(run_kernel<LhRuntime>(&fn<LhRuntime>, w, z), ref);        \
      CHECK_EQ(run_kernel<HierRuntime>(&fn<HierRuntime>, w, z), ref);    \
    }                                                                    \
  }

PARITY_TEST(strassen, bench_strassen)
PARITY_TEST(raytracer, bench_raytracer)
PARITY_TEST(dedup, bench_dedup)
PARITY_TEST(tourney, bench_tourney)
PARITY_TEST(reachability, bench_reachability)

// strassen's math must agree with the straightforward dmm kernel, not
// just with itself across runtimes: multiply the same matrices both
// ways and compare the (identically weighted) checksums.
PARMEM_TEST(strassen_matches_dmm) {
  Sizes z = tiny_sizes();
  z.dmm_n = z.strassen_n;  // bench_dmm seeds A/B exactly like strassen
  SeqRuntime rt;
  CHECK_EQ(bench_strassen(rt, z).checksum, bench_dmm(rt, z).checksum);
}

// The new pure kernels must promote nothing at all under hierarchical
// heaps (their fresh result arrays flow up by join-time merges), while
// the local-heap runtime pays promotion for every published product.
PARMEM_TEST(hier_zero_promotion_on_new_pure_kernels) {
  const Sizes z = tiny_sizes();
  {
    HierRuntime rt(HierRuntime::Options{.workers = 2});
    (void)bench_strassen(rt, z);
    (void)bench_raytracer(rt, z);
    Stats s = rt.stats();
    CHECK_EQ(s.promotions, 0u);
    CHECK_EQ(s.promoted_bytes, 0u);
  }
  {
    LhRuntime rt(LhRuntime::Options{.workers = 2});
    (void)bench_strassen(rt, z);
    Stats s = rt.stats();
    CHECK(s.promotions > 0);
    // Every published quadrant product escapes: at least the final
    // n x n result's worth of data moves to the global heap.
    CHECK(s.promoted_bytes >
          static_cast<std::uint64_t>(z.strassen_n * z.strassen_n) * 8);
  }
}

// The Section 4.4 contrast on the imperative trio: their escaping
// writes are scalar stores, so the hierarchical runtime promotes
// nothing, while the local-heap runtime promotes the shared arrays the
// writes target (on the order of the input) at the first spawn.
PARMEM_TEST(localheap_promotes_imperative_kernels_hier_does_not) {
  const Sizes z = tiny_sizes();
  struct Row {
    KernelOut (*lh)(LhRuntime&, const Sizes&);
    KernelOut (*hier)(HierRuntime&, const Sizes&);
    std::uint64_t input_bytes;
  };
  const Row rows[] = {
      {&bench_dedup<LhRuntime>, &bench_dedup<HierRuntime>,
       static_cast<std::uint64_t>(z.dedup_n) * 8},
      {&bench_tourney<LhRuntime>, &bench_tourney<HierRuntime>,
       static_cast<std::uint64_t>(z.tourney_n) * 8},
      {&bench_reachability<LhRuntime>, &bench_reachability<HierRuntime>,
       static_cast<std::uint64_t>(z.reach_n) * 8},
  };
  for (const Row& row : rows) {
    {
      LhRuntime rt(LhRuntime::Options{.workers = 2});
      (void)row.lh(rt, z);
      Stats s = rt.stats();
      CHECK(s.promotions > 0);
      CHECK(s.promoted_bytes > row.input_bytes);
    }
    {
      HierRuntime rt(HierRuntime::Options{.workers = 2});
      (void)row.hier(rt, z);
      Stats s = rt.stats();
      CHECK_EQ(s.promotions, 0u);
      CHECK_EQ(s.promoted_bytes, 0u);
    }
  }
}

// The reachability graph must actually have an unreachable fringe
// (dropped backbone edges), otherwise the kernel degenerates into a
// full sweep and the "reachability" in the name is untested. Replay the
// graph host-side through the SAME edge constructor the kernel's init
// uses and count vertices with no incoming path.
PARMEM_TEST(reachability_leaves_some_vertices_unreached) {
  const Sizes z = tiny_sizes();
  std::vector<char> reach(static_cast<std::size_t>(z.reach_n), 0);
  reach[0] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::int64_t v = 1; v < z.reach_n; ++v) {
      if (reach[static_cast<std::size_t>(v)]) {
        continue;
      }
      std::int64_t e[parmem::bench::wl::kReachDeg];
      parmem::bench::wl::reach_edge_sources(z.seed, v, z.reach_n, e);
      for (std::int64_t src : e) {
        if (src >= 0 && reach[static_cast<std::size_t>(src)]) {
          reach[static_cast<std::size_t>(v)] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  std::int64_t unreached = 0;
  for (char f : reach) {
    unreached += f == 0;
  }
  CHECK(unreached > 0);
  CHECK(unreached < z.reach_n / 2);
}

}  // namespace
