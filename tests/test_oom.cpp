// Bounded-memory operation: hard heap budgets, the emergency-collection
// cascade, and deterministic allocation-fault injection
// (core/failpoint.hpp), across all four runtimes.
//
// The contract under test: with any budget and any injected fault
// schedule, a run either completes with the exact unstressed checksum
// or raises a clean parmem::OutOfMemory -- never a crash, a hang, a
// stranded kBusy forwarding word, or a leak (the ASan CI row runs this
// whole file; the test_main watchdog catches hangs).
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "bench_common/workloads.hpp"
#include "core/failpoint.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

// Small enough that a budget sweep over 4 runtimes x 4 budgets stays
// well under a second; big enough to need several chunks.
Sizes oom_sizes() {
  Sizes z;
  z.scale = 0.0003;
  z.seq_n = 1600;
  z.seq_grain = 256;
  z.sort_grain = 128;
  z.strassen_n = 16;
  z.strassen_cutoff = 8;
  z.ray_w = 32;
  z.ray_h = 24;
  z.dedup_n = 700;
  z.tourney_n = 512;
  z.reach_n = 900;
  z.usp_side = 18;
  return z;
}

template <class RT>
typename RT::Options oom_options(unsigned workers, std::size_t budget,
                                 const std::string& faults) {
  typename RT::Options o;
  o.workers = workers;
  o.heap_budget_bytes = budget;
  o.failpoints = faults;
  return o;
}

// Run `fn` under a budget and/or fault spec. Returns {completed,
// checksum}; a parmem::OutOfMemory is the accepted failure and
// anything else aborts the test. Disarms the failpoint registry
// afterwards so runs are independent.
template <class RT>
std::pair<bool, std::int64_t> run_bounded(KernelOut (*fn)(RT&, const Sizes&),
                                          unsigned workers,
                                          std::size_t budget,
                                          const std::string& faults,
                                          const Sizes& z) {
  bool completed = true;
  std::int64_t sum = 0;
  {
    RT rt(oom_options<RT>(workers, budget, faults));
    try {
      sum = fn(rt, z).checksum;
    } catch (const OutOfMemory&) {
      completed = false;
    }
  }
  failpoint::Registry::instance().reset();
  return {completed, sum};
}

// ---- typed exception --------------------------------------------------------

PARMEM_TEST(oom_exception_carries_site_and_stats) {
  const Sizes z = oom_sizes();
  SeqRuntime::Options o;
  // One minimum-size chunk: the kernel's live set alone outgrows this,
  // so not even the emergency cascade can make it fit.
  o.heap_budget_bytes = 4 << 10;
  SeqRuntime rt(o);
  bool threw = false;
  try {
    (void)bench_dedup(rt, z);
  } catch (const OutOfMemory& e) {
    threw = true;
    CHECK(std::string(e.site()) == "chunk_alloc");
    CHECK_EQ(e.budget_bytes(), std::size_t{4} << 10);
    CHECK(e.requested_bytes() > 0);
    CHECK(e.live_bytes() + e.requested_bytes() > e.budget_bytes());
    CHECK(std::string(e.what()).find("chunk_alloc") != std::string::npos);
    CHECK(std::string(e.what()).find("budget=4096") != std::string::npos);
    // Typed OOM still lands in pre-existing bad_alloc handlers.
    const std::bad_alloc& base = e;
    (void)base;
  }
  CHECK(threw);
}

// ---- spec parsing and validation -------------------------------------------

PARMEM_TEST(oom_failpoint_spec_parsing) {
  auto ok = [](const std::string& s) {
    std::string err;
    bool r = failpoint::parse_spec(s, &failpoint::Registry::instance(), &err);
    failpoint::Registry::instance().reset();
    return r;
  };
  CHECK(ok("chunk_alloc=fail@3"));
  CHECK(ok("packet_alloc=every(2);promote_copy=prob(0.5,42)"));
  CHECK(ok("chunk_alloc=fail@1,packet_alloc=fail@2"));
  CHECK(ok(""));  // empty = nothing armed
  CHECK(!ok("nosite=fail@1"));
  CHECK(!ok("chunk_alloc=fail@"));
  CHECK(!ok("chunk_alloc=fail@0"));
  CHECK(!ok("chunk_alloc=every(0)"));
  CHECK(!ok("chunk_alloc=prob(2.0,1)"));
  CHECK(!ok("chunk_alloc=prob(0.5)"));
  CHECK(!ok("chunk_alloc=wat"));
  CHECK(!ok("chunk_alloc"));
  // All-or-nothing: one bad clause must not leave earlier ones armed.
  CHECK(!ok("chunk_alloc=fail@1;bogus"));
  CHECK(!failpoint::Registry::instance().armed());

  std::size_t b = 0;
  CHECK(env::parse_size_spec("768M", &b) && b == (std::size_t{768} << 20));
  CHECK(env::parse_size_spec("12K", &b) && b == (std::size_t{12} << 10));
  CHECK(env::parse_size_spec("2G", &b) && b == (std::size_t{2} << 30));
  CHECK(env::parse_size_spec("0", &b) && b == 0);
  CHECK(env::parse_size_spec("123456", &b) && b == 123456);
  CHECK(!env::parse_size_spec("", &b));
  CHECK(!env::parse_size_spec("12X", &b));
  CHECK(!env::parse_size_spec("M", &b));
  CHECK(!env::parse_size_spec("12MB", &b));
  CHECK(!env::parse_size_spec(nullptr, &b));
}

PARMEM_TEST(oom_failpoint_trigger_schedules) {
  using failpoint::Site;
  auto& reg = failpoint::Registry::instance();
  {
    // fail@N is one-shot: exactly the Nth hit fires.
    failpoint::ScopedFailpoints fp("chunk_alloc=fail@3");
    int fired = 0, fired_at = 0;
    for (int i = 1; i <= 8; ++i) {
      if (failpoint::triggered(Site::kChunkAlloc)) {
        ++fired;
        fired_at = i;
      }
    }
    CHECK_EQ(fired, 1);
    CHECK_EQ(fired_at, 3);
  }
  {
    // every(N) is periodic: hits N, 2N, 3N...
    failpoint::ScopedFailpoints fp("packet_alloc=every(2)");
    int fired = 0;
    for (int i = 1; i <= 8; ++i) {
      bool t = failpoint::triggered(Site::kPacketAlloc);
      CHECK_EQ(t, i % 2 == 0);
      fired += t;
    }
    CHECK_EQ(fired, 4);
  }
  {
    // prob(p, seed) is deterministic: same seed, same schedule.
    std::vector<bool> a, b;
    for (std::vector<bool>* out : {&a, &b}) {
      failpoint::ScopedFailpoints fp("promote_copy=prob(0.5,12345)");
      for (int i = 0; i < 64; ++i) {
        out->push_back(failpoint::triggered(Site::kPromoteCopy));
      }
    }
    CHECK(a == b);
    int fired = 0;
    for (bool t : a) {
      fired += t;
    }
    CHECK(fired > 8 && fired < 56);  // roughly half, not degenerate
  }
  // Collector context is exempt even when armed.
  {
    failpoint::ScopedFailpoints fp("chunk_alloc=every(1)");
    failpoint::GcAllocScope gc;
    CHECK(failpoint::triggered(Site::kChunkAlloc));  // triggered() is raw...
    CHECK(failpoint::gc_exempt());  // ...the exemption is the callers' gate
  }
  CHECK(!reg.armed());  // ScopedFailpoints disarms on exit
}

// ---- budget sweep matrix ----------------------------------------------------

template <class RT>
void budget_sweep(KernelOut (*fn)(RT&, const Sizes&), const Sizes& z,
                  std::int64_t ref) {
  // Measure this runtime's own peak, unbudgeted.
  std::size_t peak;
  {
    RT rt(oom_options<RT>(1, 0, ""));
    CHECK_EQ(fn(rt, z).checksum, ref);
    peak = rt.peak_bytes();
  }
  CHECK(peak > 0);
  // Generous headroom must succeed outright (the budget is never hit:
  // single-worker reruns peak where the measuring run peaked).
  {
    auto [completed, sum] =
        run_bounded<RT>(fn, 1, peak + peak / 2, "", z);
    CHECK(completed);
    CHECK_EQ(sum, ref);
  }
  // At and below peak: correct completion (the emergency cascade made
  // it fit) or clean OutOfMemory -- nothing else.
  for (double frac : {1.0, 0.75, 0.5}) {
    std::size_t budget = static_cast<std::size_t>(
        static_cast<double>(peak) * frac);
    for (unsigned workers : {1u, 2u}) {
      auto [completed, sum] = run_bounded<RT>(fn, workers, budget, "", z);
      if (completed) {
        CHECK_EQ(sum, ref);
      }
    }
  }
}

PARMEM_TEST(oom_budget_sweep_matrix) {
  const Sizes z = oom_sizes();
  SeqRuntime plain;
  // One pure kernel (fork-tree allocation) and one imperative,
  // promoting kernel (exercises budgeted promotion paths too).
  const std::int64_t ref_strassen = bench_strassen(plain, z).checksum;
  const std::int64_t ref_dedup = bench_dedup(plain, z).checksum;
  budget_sweep<SeqRuntime>(&bench_strassen<SeqRuntime>, z, ref_strassen);
  budget_sweep<StwRuntime>(&bench_strassen<StwRuntime>, z, ref_strassen);
  budget_sweep<LhRuntime>(&bench_strassen<LhRuntime>, z, ref_strassen);
  budget_sweep<HierRuntime>(&bench_strassen<HierRuntime>, z, ref_strassen);
  budget_sweep<SeqRuntime>(&bench_dedup<SeqRuntime>, z, ref_dedup);
  budget_sweep<StwRuntime>(&bench_dedup<StwRuntime>, z, ref_dedup);
  budget_sweep<LhRuntime>(&bench_dedup<LhRuntime>, z, ref_dedup);
  budget_sweep<HierRuntime>(&bench_dedup<HierRuntime>, z, ref_dedup);
}

PARMEM_TEST(oom_emergency_cascade_recovers) {
  // A one-shot chunk fault is indistinguishable from a transient
  // budget hit: every runtime must absorb it with one emergency
  // collection + retry and still produce the right answer.
  const Sizes z = oom_sizes();
  SeqRuntime plain;
  const std::int64_t ref = bench_dedup(plain, z).checksum;
  {
    auto [completed, sum] =
        run_bounded<SeqRuntime>(&bench_dedup<SeqRuntime>, 1, 0,
                                "chunk_alloc=fail@3", z);
    CHECK(completed);
    CHECK_EQ(sum, ref);
  }
  {
    // Deterministic cascade check: a fresh heap's chunks grow 4K, 8K,
    // 16K... so an allocation-heavy loop reaches the 3rd FRESH chunk
    // allocation long before the first scheduled collection, the
    // one-shot fires there, and alloc_slow must absorb it with exactly
    // one emergency collection (kernels recycle pooled chunks, which
    // bypass the fresh-chunk failpoint -- hence the hand-rolled loop).
    SeqRuntime rt(oom_options<SeqRuntime>(1, 0, "chunk_alloc=fail@3"));
    std::int64_t alive = rt.run([](SeqRuntime::Ctx& ctx) {
      std::int64_t n = 0;
      for (int i = 0; i < 20000; ++i) {
        n += ctx.alloc(0, 30) != nullptr;
      }
      return n;
    });
    CHECK_EQ(alive, 20000);
    CHECK_EQ(rt.stats().emergency_gcs, std::uint64_t{1});
    failpoint::Registry::instance().reset();
  }
  for (unsigned w : {1u, 2u}) {
    auto stw = run_bounded<StwRuntime>(&bench_dedup<StwRuntime>, w, 0,
                                       "chunk_alloc=fail@3", z);
    CHECK(stw.first);
    CHECK_EQ(stw.second, ref);
    auto lh = run_bounded<LhRuntime>(&bench_dedup<LhRuntime>, w, 0,
                                     "chunk_alloc=fail@3", z);
    CHECK(lh.first);
    CHECK_EQ(lh.second, ref);
    auto hier = run_bounded<HierRuntime>(&bench_dedup<HierRuntime>, w, 0,
                                         "chunk_alloc=fail@3", z);
    CHECK(hier.first);
    CHECK_EQ(hier.second, ref);
  }
}

PARMEM_TEST(oom_hard_exhaustion_is_clean) {
  // every(1) refuses EVERY mutator chunk allocation: no run can
  // complete, and every failure must surface as a clean typed
  // OutOfMemory from the first alloc that needs a chunk.
  const Sizes z = oom_sizes();
  {
    auto [completed, sum] =
        run_bounded<SeqRuntime>(&bench_dedup<SeqRuntime>, 1,
                                0, "chunk_alloc=every(1)", z);
    (void)sum;
    CHECK(!completed);
  }
  for (unsigned w : {1u, 2u}) {
    CHECK(!run_bounded<StwRuntime>(&bench_dedup<StwRuntime>, w, 0,
                                   "chunk_alloc=every(1)", z)
               .first);
    CHECK(!run_bounded<LhRuntime>(&bench_dedup<LhRuntime>, w, 0,
                                  "chunk_alloc=every(1)", z)
               .first);
    CHECK(!run_bounded<HierRuntime>(&bench_dedup<HierRuntime>, w, 0,
                                    "chunk_alloc=every(1)", z)
               .first);
  }
}

PARMEM_TEST(oom_probabilistic_fault_sweep) {
  // Random-but-deterministic faults at every site at once, across all
  // runtimes and a promoting kernel: correct checksum or clean OOM.
  const Sizes z = oom_sizes();
  SeqRuntime plain;
  const std::int64_t ref = bench_usp_tree(plain, z).checksum;
  const char* spec =
      "chunk_alloc=prob(0.05,7);packet_alloc=prob(0.2,11);"
      "promote_copy=prob(0.02,13)";
  for (unsigned seed_shift : {0u, 1u, 2u}) {
    (void)seed_shift;  // reruns exercise different interleavings
    for (unsigned w : {1u, 2u}) {
      auto stw =
          run_bounded<StwRuntime>(&bench_usp_tree<StwRuntime>, w, 0, spec, z);
      if (stw.first) {
        CHECK_EQ(stw.second, ref);
      }
      auto lh =
          run_bounded<LhRuntime>(&bench_usp_tree<LhRuntime>, w, 0, spec, z);
      if (lh.first) {
        CHECK_EQ(lh.second, ref);
      }
      auto hier =
          run_bounded<HierRuntime>(&bench_usp_tree<HierRuntime>, w, 0, spec,
                                   z);
      if (hier.first) {
        CHECK_EQ(hier.second, ref);
      }
    }
  }
}

// ---- exception propagation through a stolen branch --------------------------

// fork2 at P=2 where the RIGHT (spawned) branch throws OutOfMemory
// after the LEFT has confirmed the right is running on the other
// worker -- so the throw unwinds a genuinely STOLEN branch. The
// exception must arrive typed at the join, the sibling result must be
// intact, and the runtime must stay usable afterwards (no leaked
// park/gate state, heaps merged or released).
template <class RT>
void stolen_branch_throw() {
  RT rt(oom_options<RT>(2, 0, ""));
  std::atomic<bool> right_running{false};
  bool threw = false;
  try {
    rt.run([&](typename RT::Ctx& ctx) {
      auto [a, b] = RT::fork2(
          ctx, {},
          [&](typename RT::Ctx&) {
            // Left occupies this worker until the right is stolen.
            while (!right_running.load(std::memory_order_acquire)) {
              std::this_thread::yield();
            }
            return std::int64_t{1};
          },
          [&](typename RT::Ctx& c) -> std::int64_t {
            right_running.store(true, std::memory_order_release);
            // A few real allocations first, then the failure.
            for (int i = 0; i < 100; ++i) {
              (void)c.alloc(1, 1);
            }
            throw OutOfMemory("chunk_alloc", 4096, 0, 0, 0);
          });
      return a + b;
    });
  } catch (const OutOfMemory& e) {
    threw = true;
    CHECK(std::string(e.site()) == "chunk_alloc");
  }
  CHECK(threw);
  // The runtime survived: same instance runs a full kernel correctly.
  const Sizes z = oom_sizes();
  SeqRuntime plain;
  CHECK_EQ(bench_tourney(rt, z).checksum,
           bench_tourney(plain, z).checksum);
}

PARMEM_TEST(oom_stolen_branch_unwinds_seq) {
  // Sequential fork2 never steals; the "stolen" protocol degenerates
  // to ordinary propagation. Run it for the 4-runtime matrix anyway,
  // minus the cross-worker handshake (it would self-deadlock on 1
  // worker).
  SeqRuntime rt;
  bool threw = false;
  try {
    rt.run([&](SeqRuntime::Ctx& ctx) {
      auto [a, b] = SeqRuntime::fork2(
          ctx, {}, [](SeqRuntime::Ctx&) { return std::int64_t{1}; },
          [](SeqRuntime::Ctx&) -> std::int64_t {
            throw OutOfMemory("chunk_alloc", 4096, 0, 0, 0);
          });
      return a + b;
    });
  } catch (const OutOfMemory&) {
    threw = true;
  }
  CHECK(threw);
  const Sizes z = oom_sizes();
  SeqRuntime plain;
  CHECK_EQ(bench_tourney(rt, z).checksum,
           bench_tourney(plain, z).checksum);
}

PARMEM_TEST(oom_stolen_branch_unwinds_stw) { stolen_branch_throw<StwRuntime>(); }
PARMEM_TEST(oom_stolen_branch_unwinds_localheap) {
  stolen_branch_throw<LhRuntime>();
}
PARMEM_TEST(oom_stolen_branch_unwinds_hier) {
  stolen_branch_throw<HierRuntime>();
}

// ---- memory is released after a failed run ---------------------------------

PARMEM_TEST(oom_failed_run_releases_memory) {
  const Sizes z = oom_sizes();
  for (int round = 0; round < 2; ++round) {
    // One minimum-size chunk of budget: the kernel's live set alone
    // outgrows it, so the run must OOM...
    SeqRuntime rt(oom_options<SeqRuntime>(1, 4 << 10, ""));
    bool threw = false;
    try {
      (void)bench_dedup(rt, z);
    } catch (const OutOfMemory&) {
      threw = true;
    }
    CHECK(threw);
    // ...and unwinding must hand every chunk back to the pool.
    CHECK_EQ(rt.live_bytes(), 0u);
    // The same instance (same budget) then completes a workload whose
    // live set fits one chunk, reusing the pooled chunks -- possibly
    // through many emergency collections.
    Sizes tiny = z;
    tiny.tourney_n = 16;
    SeqRuntime plain;
    CHECK_EQ(bench_tourney(rt, tiny).checksum,
             bench_tourney(plain, tiny).checksum);
  }
}

// ---- composition with GC stress --------------------------------------------

PARMEM_TEST(oom_composes_with_gc_stress) {
  // Budget + constant collection + a one-shot fault, all at once, on
  // the hierarchical runtime: still checksum-exact or cleanly OOM.
  const Sizes z = oom_sizes();
  SeqRuntime plain;
  const std::int64_t ref = bench_usp_tree(plain, z).checksum;
  std::size_t peak;
  {
    HierRuntime::Options o;
    o.workers = 2;
    o.gc_stress = true;
    HierRuntime rt(o);
    CHECK_EQ(bench_usp_tree(rt, z).checksum, ref);
    peak = rt.peak_bytes();
  }
  for (double frac : {1.5, 0.75}) {
    HierRuntime::Options o;
    o.workers = 2;
    o.gc_stress = true;
    o.heap_budget_bytes =
        static_cast<std::size_t>(static_cast<double>(peak) * frac);
    o.failpoints = "chunk_alloc=fail@5";
    HierRuntime rt(o);
    try {
      CHECK_EQ(bench_usp_tree(rt, z).checksum, ref);
    } catch (const OutOfMemory&) {
      // acceptable under a sub-peak budget
    }
    failpoint::Registry::instance().reset();
  }
}

// ---- env validation (satellite b): exit(2) + one-line diagnosis -------------

// Spawned by oom_env_validation in a child process; just constructs a
// runtime, which is what triggers env validation.
PARMEM_TEST(oom_env_probe) {
  SeqRuntime rt;
  (void)rt;
}

PARMEM_TEST(oom_env_validation) {
  char exe[4096];
  ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  CHECK(n > 0);
  exe[n] = '\0';
  auto run_with_env = [&](const std::string& env) {
    std::string cmd = env + " " + exe + " oom_env_probe >/dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  };
  CHECK_EQ(run_with_env("PARMEM_HEAP_BUDGET=768M"), 0);
  CHECK_EQ(run_with_env("PARMEM_HEAP_BUDGET="), 0);  // empty = unset
  CHECK_EQ(run_with_env("PARMEM_FAILPOINTS='chunk_alloc=fail@3'"), 0);
  CHECK_EQ(run_with_env("PARMEM_FAILPOINTS='chunk_alloc=prob(0.5,7)'"), 0);
  CHECK_EQ(run_with_env("PARMEM_HEAP_BUDGET=bogus"), 2);
  CHECK_EQ(run_with_env("PARMEM_HEAP_BUDGET=12MB"), 2);
  CHECK_EQ(run_with_env("PARMEM_FAILPOINTS='nosite=fail@1'"), 2);
  CHECK_EQ(run_with_env("PARMEM_FAILPOINTS='chunk_alloc=prob(9,1)'"), 2);
}

}  // namespace
