// Scheduler-layer tests: Chase-Lev deque semantics and torture, the
// push-vs-park wakeup protocol, oversubscribed pools (threads > cores,
// the contended-steal regime the 1-core CI box can actually produce),
// sharded-stats exactness, and the ChunkPool per-thread caches.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common/workloads.hpp"
#include "core/deque.hpp"
#include "core/heap.hpp"
#include "core/hier_runtime.hpp"
#include "core/sched.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

struct Item {
  int id = 0;
  std::atomic<int> takes{0};
};

// Single-threaded semantics: owner end is LIFO, thief end is FIFO,
// empty pops/steals return null and leave the deque usable.
PARMEM_TEST(deque_lifo_fifo_semantics) {
  ChaseLevDeque<Item> dq(4);
  CHECK(dq.pop() == nullptr);
  CHECK(dq.steal() == nullptr);

  Item items[6];
  for (int i = 0; i < 6; ++i) {
    items[i].id = i;
    dq.push(&items[i]);
  }
  // Thief end takes the oldest.
  CHECK_EQ(dq.steal()->id, 0);
  CHECK_EQ(dq.steal()->id, 1);
  // Owner end takes the newest.
  CHECK_EQ(dq.pop()->id, 5);
  CHECK_EQ(dq.pop()->id, 4);
  CHECK_EQ(dq.steal()->id, 2);
  CHECK_EQ(dq.pop()->id, 3);
  CHECK(dq.pop() == nullptr);
  CHECK(dq.steal() == nullptr);
  // Still usable after draining.
  dq.push(&items[0]);
  CHECK_EQ(dq.pop()->id, 0);
}

// Index wraparound (many push/pop cycles around a tiny ring) and ring
// growth (pushes outrunning takes), including growth of a wrapped
// window.
PARMEM_TEST(deque_wraparound_and_growth) {
  ChaseLevDeque<Item> dq(2);
  CHECK_EQ(dq.capacity(), 2u);

  Item a, b;
  // Wrap the indices far past the initial capacity without growing.
  for (int i = 0; i < 1000; ++i) {
    dq.push(&a);
    dq.push(&b);
    CHECK(dq.pop() == &b);
    CHECK(dq.steal() == &a);
  }
  CHECK_EQ(dq.capacity(), 2u);

  // Now force growth from a wrapped position: the live window spans
  // the ring seam when the third push arrives.
  std::vector<Item> items(300);
  for (int i = 0; i < 300; ++i) {
    items[i].id = i;
    dq.push(&items[i]);
  }
  CHECK(dq.capacity() >= 300u);
  // Everything survives the copies, in order, from both ends.
  for (int i = 0; i < 150; ++i) {
    CHECK_EQ(dq.steal()->id, i);
  }
  for (int i = 299; i >= 150; --i) {
    CHECK_EQ(dq.pop()->id, i);
  }
  CHECK(dq.pop() == nullptr);
}

// Torture: one owner doing bursty push/pop against several thieves,
// over a deliberately tiny initial ring so growth and wraparound
// happen live under contention. Every item must be taken exactly
// once (the pop-vs-steal Dekker race never duplicates or drops), and
// the deque must end empty. This is the TSan row's main course.
PARMEM_TEST(deque_torture_multithief) {
  constexpr int kItems = 20000;
  constexpr unsigned kThieves = 3;
  std::vector<Item> items(kItems);
  for (int i = 0; i < kItems; ++i) {
    items[i].id = i;
  }

  ChaseLevDeque<Item> dq(2);
  std::atomic<bool> stop{false};
  std::atomic<int> taken{0};

  std::vector<std::thread> thieves;
  for (unsigned t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (Item* it = dq.steal()) {
          it->takes.fetch_add(1, std::memory_order_relaxed);
          taken.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::uint64_t rng = 0x2545F4914F6CDD1Dull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int pushed = 0;
  while (pushed < kItems) {
    for (std::uint64_t burst = 1 + next() % 8; burst > 0 && pushed < kItems;
         --burst) {
      dq.push(&items[pushed++]);
    }
    for (std::uint64_t pops = next() % 4; pops > 0; --pops) {
      if (Item* it = dq.pop()) {
        it->takes.fetch_add(1, std::memory_order_relaxed);
        taken.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Owner drain: a null pop means the deque is empty (a lost
  // last-element race means a thief has it).
  while (Item* it = dq.pop()) {
    it->takes.fetch_add(1, std::memory_order_relaxed);
    taken.fetch_add(1, std::memory_order_relaxed);
  }
  // Thieves already hold any stragglers; wait for their tallies.
  while (taken.load(std::memory_order_acquire) < kItems) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : thieves) {
    t.join();
  }

  CHECK_EQ(taken.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    CHECK_EQ(items[i].takes.load(), 1);
  }
  CHECK(dq.pop() == nullptr);
  CHECK(dq.steal() == nullptr);
}

struct FlagTask : WorkStealPool::Task {
  std::atomic<bool> done{false};
  void execute() override { done.store(true, std::memory_order_release); }
};

// Wakeup liveness: push single tasks into an otherwise-idle pool, with
// pauses long enough that the workers have parked on the condvar, and
// do NOT help from the pushing thread -- each task completes only if
// the push-side wakeup actually reaches a parked worker. With a lost
// wakeup this degrades to the parker's safety-net timeout per round
// and the watchdog/ctest timeout catches it.
PARMEM_TEST(sched_wakeup_liveness) {
  WorkStealPool pool(4);
  WorkStealPool::Scope scope(&pool);
  for (int round = 0; round < 100; ++round) {
    if (round % 10 == 0) {
      // Let the workers spin down and park.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FlagTask t;
    pool.push(&t);
    while (!t.done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

// Oversubscription: more workers than the box has cores, so steals,
// preemption mid-pop, and parked-thief wakeups all actually happen.
// Checksums must match the sequential reference on both a pure
// fork-heavy kernel and an imperative promoting one.
PARMEM_TEST(sched_oversubscribed_pool) {
  Sizes z;
  z.scale = 0.001;
  z.fib_n = 18;
  z.usp_side = 10;
  unsigned cores = std::thread::hardware_concurrency();
  unsigned workers = (cores == 0 ? 1 : cores) * 2 + 2;  // always > cores

  SeqRuntime seq;
  const std::int64_t fib_ref = bench_fib(seq, z).checksum;
  const std::int64_t usp_ref = bench_usp_tree(seq, z).checksum;

  {
    HierRuntime rt(HierRuntime::Options{.workers = workers});
    CHECK_EQ(bench_fib(rt, z).checksum, fib_ref);
    CHECK_EQ(bench_usp_tree(rt, z).checksum, usp_ref);
  }
  {
    StwRuntime rt(StwRuntime::Options{.workers = workers});
    CHECK_EQ(bench_fib(rt, z).checksum, fib_ref);
    CHECK_EQ(bench_usp_tree(rt, z).checksum, usp_ref);
  }
  {
    LhRuntime rt(LhRuntime::Options{.workers = workers});
    CHECK_EQ(bench_fib(rt, z).checksum, fib_ref);
    CHECK_EQ(bench_usp_tree(rt, z).checksum, usp_ref);
  }
}

template <class RT>
int fork_tree(typename RT::Ctx& c, int depth) {
  using Ctx = typename RT::Ctx;
  if (depth == 0) {
    return 1;
  }
  auto [a, b] = RT::fork2(
      c, {}, [&](Ctx& cc) { return fork_tree<RT>(cc, depth - 1); },
      [&](Ctx& cc) { return fork_tree<RT>(cc, depth - 1); });
  return a + b;
}

// Sharded stats must aggregate to EXACTLY what the old single
// StatsCell recorded: a full binary fork tree of depth d performs
// 2^d - 1 fork2 calls regardless of worker count or steal schedule,
// so snapshot().forks is deterministic across all four runtimes --
// and doubles exactly when the same runtime instance runs it twice
// (counters from different workers' shards summing on read).
PARMEM_TEST(stats_shard_aggregation_exact) {
  constexpr int kDepth = 6;
  constexpr std::uint64_t kForks = (1u << kDepth) - 1;  // 63
  constexpr int kLeaves = 1 << kDepth;

  auto check = [&](auto& rt) {
    using RT = std::remove_reference_t<decltype(rt)>;
    int leaves =
        rt.run([&](typename RT::Ctx& c) { return fork_tree<RT>(c, kDepth); });
    CHECK_EQ(leaves, kLeaves);
    CHECK_EQ(rt.stats().forks, kForks);
    leaves =
        rt.run([&](typename RT::Ctx& c) { return fork_tree<RT>(c, kDepth); });
    CHECK_EQ(leaves, kLeaves);
    CHECK_EQ(rt.stats().forks, 2 * kForks);
  };

  {
    SeqRuntime rt;
    check(rt);
  }
  for (unsigned w : {1u, 3u}) {
    {
      StwRuntime rt(StwRuntime::Options{.workers = w});
      check(rt);
    }
    {
      LhRuntime rt(LhRuntime::Options{.workers = w});
      check(rt);
    }
    {
      HierRuntime rt(HierRuntime::Options{.workers = w});
      check(rt);
    }
  }
}

// The per-thread chunk caches must preserve the pool's byte
// accounting and budget enforcement exactly: cached chunks are not
// live, reuse comes from the cache (same chunk back), and a budget
// hit throws on the cache path just as it does on the fresh path.
PARMEM_TEST(chunkpool_sharded_cache_accounting) {
  ChunkPool pool;
  Chunk* a = pool.acquire(kChunkPayload);
  CHECK_EQ(pool.live_bytes(), kChunkBytes);
  pool.release(a);
  CHECK_EQ(pool.live_bytes(), 0u);

  // Reuse hits the calling thread's cache: same chunk, relived.
  Chunk* b = pool.acquire(kChunkPayload);
  CHECK(b == a);
  CHECK_EQ(pool.live_bytes(), kChunkBytes);
  pool.release(b);

  // Budget is enforced before the cache hands anything out.
  pool.set_budget(kChunkBytes);
  Chunk* c = pool.acquire(kChunkPayload);
  bool threw = false;
  try {
    (void)pool.acquire(kChunkPayload);
  } catch (const OutOfMemory&) {
    threw = true;
  }
  CHECK(threw);
  CHECK_EQ(pool.live_bytes(), kChunkBytes);
  pool.release(c);
  CHECK_EQ(pool.live_bytes(), 0u);
}

}  // namespace
