// GC-stress differential harness: run the paper kernels on all four
// runtimes with every collector firing as often as it can -- seq, stw
// and localheap with a 1-byte collection budget (collect at every
// allocation slow path), hier in gc_stress mode (leaf + join collection
// at every safepoint, internal-heap collection rung with a 1-byte
// threshold, periodic victimless stops) -- and assert the checksums are
// exactly those of an UNSTRESSED sequential run. Any object a collector
// moves but fails to re-point, any root it misses, any forwarding chain
// it breaks shows up as a checksum diff (or a crash) here.
#include <cstdint>

#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

// Smaller than test_kernels' tiny_sizes: stress mode collects at every
// safepoint, so per-kernel work is O(live * collections).
Sizes stress_sizes() {
  Sizes z;
  z.scale = 0.0003;
  z.seq_n = 1600;
  z.seq_grain = 256;
  z.sort_grain = 128;
  z.strassen_n = 16;
  z.strassen_cutoff = 8;
  z.ray_w = 32;
  z.ray_h = 24;
  z.dedup_n = 700;
  z.tourney_n = 512;
  z.reach_n = 900;
  z.usp_side = 18;
  return z;
}

template <class RT>
typename RT::Options stressed_options(unsigned workers) {
  typename RT::Options o;
  o.workers = workers;
  o.gc_min_budget = 1;  // collect at every allocation slow path
  return o;
}

template <>
HierRuntime::Options stressed_options<HierRuntime>(unsigned workers) {
  HierRuntime::Options o;
  o.workers = workers;
  o.gc_stress = true;
  return o;
}

template <class RT>
std::int64_t run_stressed(KernelOut (*fn)(RT&, const Sizes&), unsigned workers,
                          const Sizes& z) {
  RT rt(stressed_options<RT>(workers));
  return fn(rt, z).checksum;
}

#define STRESS_PARITY_TEST(name, fn)                                       \
  PARMEM_TEST(stress_gc_matrix_##name) {                                   \
    const Sizes z = stress_sizes();                                        \
    SeqRuntime plain;                                                      \
    const std::int64_t ref = fn<SeqRuntime>(plain, z).checksum;            \
    CHECK_EQ(run_stressed<SeqRuntime>(&fn<SeqRuntime>, 1, z), ref);        \
    for (unsigned w : {1u, 2u}) {                                          \
      CHECK_EQ(run_stressed<StwRuntime>(&fn<StwRuntime>, w, z), ref);      \
      CHECK_EQ(run_stressed<LhRuntime>(&fn<LhRuntime>, w, z), ref);        \
      CHECK_EQ(run_stressed<HierRuntime>(&fn<HierRuntime>, w, z), ref);    \
    }                                                                      \
  }

// The test_kernels parity matrix under stress...
STRESS_PARITY_TEST(strassen, bench_strassen)
STRESS_PARITY_TEST(raytracer, bench_raytracer)
STRESS_PARITY_TEST(dedup, bench_dedup)
STRESS_PARITY_TEST(tourney, bench_tourney)
STRESS_PARITY_TEST(reachability, bench_reachability)
// ...plus the promoting kernels, where hier's internal-heap collection
// actually relocates busy internal heaps mid-run.
STRESS_PARITY_TEST(usp_tree, bench_usp_tree)
STRESS_PARITY_TEST(multi_usp_tree, bench_multi_usp_tree)

// Under hier stress the internal collector must actually have run on
// the promoting kernel (the doorbell rings at threshold 1), and pure
// kernels must still promote nothing even though every heap is being
// collected constantly.
PARMEM_TEST(stress_gc_hier_mode_side_effects) {
  const Sizes z = stress_sizes();
  {
    HierRuntime rt(stressed_options<HierRuntime>(2));
    (void)bench_usp_tree(rt, z);
    Stats s = rt.stats();
    CHECK(s.internal_gc_count > 0);
    CHECK(s.gc_count > s.internal_gc_count);  // leaf/join collections too
  }
  {
    HierRuntime rt(stressed_options<HierRuntime>(2));
    (void)bench_strassen(rt, z);
    Stats s = rt.stats();
    CHECK_EQ(s.promotions, 0u);
    CHECK_EQ(s.promoted_bytes, 0u);
    CHECK(s.gc_count > 0);
  }
}

}  // namespace
