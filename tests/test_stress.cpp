// Seeded randomized stress: generate random fork-tree shapes (depth,
// leaf grain, fraction of escaping pointer writes) from a fixed-seed
// RNG and assert that every runtime agrees with the sequential
// baseline, and that purely local configurations (no escaping writes)
// promote nothing at all under hierarchical heaps.
//
// The shape is a pure function of (seed, tree path), never of the
// schedule: each node hashes its path to decide leaf-vs-fork, each leaf
// hashes it to size its allocation chain and to decide whether it
// performs an escaping write. Escaping writes target a per-leaf slot
// (indexed by the unique path) of a root-allocated sink object, so they
// are race-free and the final sink contents are deterministic.
#include <cstdint>

#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;
using parmem::bench::wl::mix64;

struct StressCfg {
  std::uint64_t seed = 0;
  int depth = 6;        // maximum fork depth
  int grain = 12;       // maximum allocations per leaf
  int escape_pct = 0;   // % of leaves performing an escaping write
};

template <class RT>
std::int64_t stress_leaf(typename RT::Ctx& c, const Local& sink,
                         const StressCfg& cfg, std::uint64_t path) {
  using Ctx = typename RT::Ctx;
  const std::uint64_t r = mix64(cfg.seed ^ (path * 0x9E3779B97F4A7C15ull));
  const int nalloc =
      1 + static_cast<int>(r % static_cast<std::uint64_t>(cfg.grain));
  RootFrame fr(c);
  Local chain = fr.local(nullptr);
  for (int i = 0; i < nalloc; ++i) {
    Object* o = c.alloc(1, 1);
    Ctx::init_i64(o, 0,
                  static_cast<std::int64_t>(
                      mix64(r + static_cast<std::uint64_t>(i)) & 0xFFFF));
    Ctx::init_ptr(o, 0, chain.get());
    chain.set(o);
  }
  std::int64_t sum = 0;
  for (Object* o = chain.get(); o != nullptr; o = Ctx::read_ptr(o, 0)) {
    sum += Ctx::read_i64_imm(o, 0);  // walk allocates nothing
  }
  if (static_cast<int>((r >> 32) % 100) < cfg.escape_pct) {
    Object* node = c.alloc(0, 1);
    Ctx::init_i64(node, 0, static_cast<std::int64_t>(r & 0x7FFFFFFF));
    // The escaping write: a leaf-task value stored into the root task's
    // sink. Entangles (and promotes) under hier; promotes the node to
    // the global heap under local heaps; plain store under seq/stw.
    c.write_ptr(sink.get(), static_cast<std::uint32_t>(path), node);
  }
  return sum;
}

template <class RT>
std::int64_t stress_rec(typename RT::Ctx& c, const Local& sink,
                        const StressCfg& cfg, std::uint64_t path, int depth) {
  const std::uint64_t r = mix64(cfg.seed ^ path ^ 0xC0FFEEull);
  // The root level always forks (so escaping configurations exercise
  // child-task writes); below it, a quarter of the nodes cut off early.
  if (depth == 0 || (depth < cfg.depth && r % 4 == 0)) {
    return stress_leaf<RT>(c, sink, cfg, path);
  }
  auto [a, b] = RT::fork2(
      c, {sink},
      [&](typename RT::Ctx& cc) {
        return stress_rec<RT>(cc, sink, cfg, path * 2, depth - 1);
      },
      [&](typename RT::Ctx& cc) {
        return stress_rec<RT>(cc, sink, cfg, path * 2 + 1, depth - 1);
      });
  return a * 3 + b;
}

template <class RT>
std::int64_t stress_run(RT& rt, const StressCfg& cfg) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const auto nslots = std::uint32_t{1} << (cfg.depth + 1);
    RootFrame fr(c);
    Local sink = fr.local(c.alloc(nslots, 0));
    std::int64_t sum = stress_rec<RT>(c, sink, cfg, 1, cfg.depth);
    Object* s = sink.get();  // final walk allocates nothing
    for (std::uint32_t i = 0; i < nslots; ++i) {
      if (Object* nd = Ctx::read_ptr(s, i)) {
        sum += Ctx::read_i64_imm(nd, 0) * (i % 31 + 1);
      }
    }
    return sum;
  });
}

template <class RT>
std::int64_t stress_on(unsigned workers, const StressCfg& cfg,
                       Stats* stats_out = nullptr) {
  typename RT::Options o;
  o.workers = workers;
  RT rt(o);
  std::int64_t sum = stress_run(rt, cfg);
  if (stats_out != nullptr) {
    *stats_out = rt.stats();
  }
  return sum;
}

// Hier with internal-heap collection dialed to its most aggressive
// (collect any promoted-into heap at the next safepoint), plus the
// full GC-stress mode on top.
std::int64_t stress_on_hier_internal(unsigned workers, const StressCfg& cfg,
                                     bool full_stress, Stats* stats_out) {
  HierRuntime::Options o;
  o.workers = workers;
  o.gc_internal_threshold = 1;
  o.gc_stress = full_stress;
  HierRuntime rt(o);
  std::int64_t sum = stress_run(rt, cfg);
  if (stats_out != nullptr) {
    *stats_out = rt.stats();
  }
  return sum;
}

// Pure configurations (no escaping writes): every runtime must agree
// with seq, and the hierarchical runtime must promote NOTHING -- all
// leaf allocations flow up by join-time merges alone.
PARMEM_TEST(stress_pure_fork_trees_parity_and_zero_promotion) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (int depth : {4, 6, 8}) {
      StressCfg cfg;
      cfg.seed = seed * 0x5DEECE66Dull;
      cfg.depth = depth;
      cfg.escape_pct = 0;
      const std::int64_t ref = stress_on<SeqRuntime>(1, cfg);
      for (unsigned w : {1u, 2u}) {
        Stats hs;
        CHECK_EQ(stress_on<HierRuntime>(w, cfg, &hs), ref);
        CHECK_EQ(hs.promotions, 0u);
        CHECK_EQ(hs.promoted_bytes, 0u);
        CHECK_EQ(stress_on<StwRuntime>(w, cfg), ref);
        CHECK_EQ(stress_on<LhRuntime>(w, cfg), ref);
      }
    }
  }
}

// Escaping configurations: parity must hold through promotion, and the
// escaping writes must actually promote under hierarchical heaps (the
// root level always forks, so with a 100% escape fraction at least the
// two top-level leaves write from child tasks).
PARMEM_TEST(stress_escaping_fork_trees_parity) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (int escape_pct : {30, 100}) {
      StressCfg cfg;
      cfg.seed = seed * 0xB5026F5AA96619E9ull;
      cfg.depth = 6;
      cfg.escape_pct = escape_pct;
      const std::int64_t ref = stress_on<SeqRuntime>(1, cfg);
      for (unsigned w : {1u, 2u}) {
        Stats hs;
        CHECK_EQ(stress_on<HierRuntime>(w, cfg, &hs), ref);
        if (escape_pct == 100) {
          CHECK(hs.promotions > 0);
          CHECK(hs.promoted_bytes > 0);
        }
        CHECK_EQ(stress_on<StwRuntime>(w, cfg), ref);
        CHECK_EQ(stress_on<LhRuntime>(w, cfg), ref);
      }
    }
  }
}

// Internal-collection arm: the same randomized fork trees with
// hierarchy-aware internal collection at threshold 1 (every promotion
// makes its target heap a victim of the next safepoint) and, in the
// second flavour, full GC-stress on top. Parity with the sequential
// baseline must hold through mid-tree relocations of busy internal
// heaps; pure shapes must still promote nothing even though their
// heaps are being collected; and escaping shapes must actually have
// exercised the internal collector.
PARMEM_TEST(stress_internal_collection_fork_trees) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    // Pure shapes: no escapes, so no promotions and no internal-GC
    // victims -- but GC-stress still pauses and collects constantly.
    {
      StressCfg cfg;
      cfg.seed = seed * 0x9E3779B97F4A7C15ull;
      cfg.depth = 6;
      cfg.escape_pct = 0;
      const std::int64_t ref = stress_on<SeqRuntime>(1, cfg);
      for (unsigned w : {1u, 2u}) {
        for (bool full : {false, true}) {
          Stats hs;
          CHECK_EQ(stress_on_hier_internal(w, cfg, full, &hs), ref);
          CHECK_EQ(hs.promotions, 0u);
          CHECK_EQ(hs.promoted_bytes, 0u);
        }
      }
    }
    // Escaping shapes: every leaf writes into the root sink, so the
    // sink's heap keeps becoming a victim while the root is busy.
    {
      StressCfg cfg;
      cfg.seed = seed * 0xD1B54A32D192ED03ull;
      cfg.depth = 6;
      cfg.escape_pct = 100;
      const std::int64_t ref = stress_on<SeqRuntime>(1, cfg);
      for (unsigned w : {1u, 2u}) {
        for (bool full : {false, true}) {
          Stats hs;
          CHECK_EQ(stress_on_hier_internal(w, cfg, full, &hs), ref);
          CHECK(hs.promotions > 0);
          CHECK(hs.internal_gc_count > 0);
        }
      }
    }
  }
}

}  // namespace
