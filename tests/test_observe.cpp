// Observability layer: trace-ring overflow policy, phase-scope
// restoration across fork/steal boundaries, the GC-pause accounting
// invariant (every Stats::gc_count increment yields exactly one pause
// histogram entry), profiler-under-GC-stress correctness, and the
// stats JSON export's structure.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "core/phase.hpp"
#include "core/profiler.hpp"
#include "core/stats_json.hpp"
#include "core/trace.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using namespace parmem::bench;

// ---- trace ring -----------------------------------------------------------

PARMEM_TEST(observe_trace_ring_overflow_drops_oldest) {
  trace::TraceRing ring(4);
  CHECK_EQ(ring.capacity(), 4u);
  CHECK_EQ(ring.size(), 0u);
  CHECK_EQ(ring.dropped(), 0u);

  // Below capacity: nothing dropped, order preserved.
  for (std::uint64_t i = 0; i < 3; ++i) {
    ring.push(trace::Event{i, 10 + i, 0, trace::Ev::kGcLeaf});
  }
  CHECK_EQ(ring.size(), 3u);
  CHECK_EQ(ring.dropped(), 0u);

  // Push past capacity: the ring must keep the NEWEST 4 events and
  // count everything older as dropped.
  for (std::uint64_t i = 3; i < 10; ++i) {
    ring.push(trace::Event{i, 10 + i, 0, trace::Ev::kGateStall});
  }
  CHECK_EQ(ring.total(), 10u);
  CHECK_EQ(ring.size(), 4u);
  CHECK_EQ(ring.dropped(), 6u);

  std::vector<std::uint64_t> starts;
  ring.for_each_oldest_first(
      [&](const trace::Event& e) { starts.push_back(e.start_ns); });
  CHECK_EQ(starts.size(), 4u);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    CHECK_EQ(starts[i], 6u + i);  // oldest survivor is event 6
  }

  ring.clear();
  CHECK_EQ(ring.size(), 0u);
  CHECK_EQ(ring.dropped(), 0u);
}

// ---- phase scopes ---------------------------------------------------------

// Phase scopes must nest on one thread and must not leak across the
// scheduler's boundaries: a task body always starts in kMutator even
// when the executing worker was just in its kSteal loop, and a scope
// opened inside a fork branch is unwound before the join returns.
PARMEM_TEST(observe_phase_scopes_restore_across_fork_and_steal) {
  using Ctx = HierRuntime::Ctx;

  // Single-thread nesting.
  CHECK(phase::current() == phase::Phase::kMutator);
  {
    phase::PhaseScope outer(phase::Phase::kJoinGc);
    CHECK(phase::current() == phase::Phase::kJoinGc);
    {
      phase::PhaseScope inner(phase::Phase::kInternalGc);
      CHECK(phase::current() == phase::Phase::kInternalGc);
    }
    CHECK(phase::current() == phase::Phase::kJoinGc);
  }
  CHECK(phase::current() == phase::Phase::kMutator);

  // Across fork2 and steals: oversubscribe a small fork tree so
  // branches get stolen, and count any task body that does NOT
  // observe kMutator on entry / after a nested scope unwinds.
  std::atomic<std::uint64_t> violations{0};
  HierRuntime::Options opts;
  opts.workers = 4;
  HierRuntime rt(opts);

  struct Walker {
    std::atomic<std::uint64_t>* bad;
    std::int64_t operator()(Ctx& c, int depth) const {
      if (phase::current() != phase::Phase::kMutator) {
        bad->fetch_add(1, std::memory_order_relaxed);
      }
      if (depth == 0) {
        // A GC-ish scope inside a leaf must restore before the task
        // returns to the scheduler.
        phase::PhaseScope s(phase::Phase::kLeafGc);
        if (phase::current() != phase::Phase::kLeafGc) {
          bad->fetch_add(1, std::memory_order_relaxed);
        }
        return 1;
      }
      auto [a, b] = HierRuntime::fork2(
          c, {}, [this, depth](Ctx& cc) { return (*this)(cc, depth - 1); },
          [this, depth](Ctx& cc) { return (*this)(cc, depth - 1); });
      if (phase::current() != phase::Phase::kMutator) {
        bad->fetch_add(1, std::memory_order_relaxed);
      }
      return a + b;
    }
  };

  Walker w{&violations};
  const std::int64_t leaves =
      rt.run([&w](Ctx& ctx) { return w(ctx, 8); });
  CHECK_EQ(leaves, 256);
  CHECK_EQ(violations.load(), 0u);
  CHECK(rt.stats().forks > 0);
  CHECK(phase::current() == phase::Phase::kMutator);
}

// ---- pause-histogram / gc_count invariant ---------------------------------

// Every Stats::gc_count increment must record exactly one pause event
// among {gc_leaf, gc_join, gc_internal, gc_stw}: sum those four
// histograms and compare against the runtime's own counter, under
// stress so every collector (leaf, join, internal, parallel, STW team)
// contributes. Runtimes run one at a time and are destroyed (workers
// joined) before the trace snapshot, so the counts are quiescent.
PARMEM_TEST(observe_pause_histogram_totals_match_gc_counters) {
  const Sizes z = [] {
    Sizes s;
    s.scale = 0.0003;
    s.strassen_n = 16;
    s.strassen_cutoff = 8;
    s.usp_side = 18;
    return s;
  }();

  {  // hier under gc_stress: leaf + join + internal collections.
    trace::reset();
    std::uint64_t gcs = 0;
    {
      HierRuntime::Options o;
      o.workers = 2;
      o.gc_stress = true;
      HierRuntime rt(o);
      (void)bench_usp_tree(rt, z);
      gcs = rt.stats().gc_count;
    }
    CHECK(gcs > 0);
    CHECK_EQ(trace::snapshot().pause_count(), gcs);
  }

  {  // stw with a 1-byte budget: recruited-team evacuations.
    trace::reset();
    std::uint64_t gcs = 0;
    {
      StwRuntime::Options o;
      o.workers = 2;
      o.gc_min_budget = 1;
      StwRuntime rt(o);
      (void)bench_strassen(rt, z);
      gcs = rt.stats().gc_count;
    }
    CHECK(gcs > 0);
    CHECK_EQ(trace::snapshot().pause_count(), gcs);
  }

  {  // localheap: sequential leaf collections + promotions.
    trace::reset();
    std::uint64_t gcs = 0;
    {
      LhRuntime::Options o;
      o.workers = 2;
      o.gc_min_budget = 1;
      LhRuntime rt(o);
      (void)bench_usp_tree(rt, z);
      gcs = rt.stats().gc_count;
    }
    CHECK(gcs > 0);
    CHECK_EQ(trace::snapshot().pause_count(), gcs);
  }

  {  // seq: the single-heap baseline.
    trace::reset();
    std::uint64_t gcs = 0;
    {
      SeqRuntime::Options o;
      o.gc_min_budget = 1;
      SeqRuntime rt(o);
      (void)bench_strassen(rt, z);
      gcs = rt.stats().gc_count;
    }
    CHECK(gcs > 0);
    CHECK_EQ(trace::snapshot().pause_count(), gcs);
  }
  trace::reset();
}

// ---- profiler under GC stress ---------------------------------------------

// The sampling profiler's SIGPROF handler interrupts collectors,
// promotions, and barrier slow paths at ~1 kHz; the kernel's checksum
// must be byte-identical to an unprofiled sequential run, and the
// collapsed output must carry the symbolization header.
PARMEM_TEST(observe_profiler_gc_stress_checksum_correct) {
  Sizes z;
  z.scale = 0.0003;
  z.ray_w = 64;
  z.ray_h = 48;

  SeqRuntime plain;
  const std::int64_t ref = bench_raytracer(plain, z).checksum;

  CHECK(profiler::start(997));
  CHECK(profiler::running());
  // Repeat until CPU time has accrued enough for at least one sample
  // (ITIMER_PROF counts consumed CPU; timer delivery can lag inside
  // containers, so keep burning until one lands).
  for (int round = 0; round < 400; ++round) {
    HierRuntime::Options o;
    o.workers = 2;
    o.gc_stress = true;
    HierRuntime rt(o);
    CHECK_EQ(bench_raytracer(rt, z).checksum, ref);
    if (profiler::sample_count() > 0 && round >= 1) {
      break;
    }
  }
  profiler::stop();
  CHECK(!profiler::running());
  CHECK(profiler::sample_count() > 0);

  const char* path = "observe_profile.tmp.folded";
  CHECK(profiler::write_collapsed(path));
  std::FILE* f = std::fopen(path, "r");
  CHECK(f != nullptr);
  char line[4096];
  CHECK(std::fgets(line, sizeof line, f) != nullptr);
  CHECK(std::strncmp(line, "# parmem-profile binary=", 24) == 0);
  CHECK(std::strstr(line, " base=0x") != nullptr);
  // At least one folded stack, phase-tagged and hex-framed.
  CHECK(std::fgets(line, sizeof line, f) != nullptr);
  CHECK(std::strstr(line, ";0x") != nullptr);
  std::fclose(f);
  std::remove(path);
}

// ---- stats JSON export ----------------------------------------------------

// Minimal structural JSON check (no parser dependency): every brace /
// bracket balances outside strings, quotes pair up, and the line ends
// exactly when the top-level object closes.
bool json_object_line_wellformed(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth < 0) {
        return false;
      }
      if (depth == 0 && i + 1 != s.size()) {
        return false;  // trailing garbage after the object closes
      }
    }
  }
  return depth == 0 && !in_str && !s.empty() && s[0] == '{';
}

PARMEM_TEST(observe_stats_json_export_parses) {
  const char* path = "observe_stats.tmp.json";
  std::remove(path);
  trace::reset();

  Sizes z;
  z.scale = 0.0003;
  z.strassen_n = 16;
  z.strassen_cutoff = 8;

  {  // Two runtimes, one path: first truncates, second appends.
    SeqRuntime::Options o;
    o.gc_min_budget = 1;
    o.stats_json_path = path;
    SeqRuntime rt(o);
    (void)bench_strassen(rt, z);
  }
  {
    HierRuntime::Options o;
    o.workers = 2;
    o.gc_stress = true;
    o.stats_json_path = path;
    HierRuntime rt(o);
    (void)bench_strassen(rt, z);
  }

  std::FILE* f = std::fopen(path, "r");
  CHECK(f != nullptr);
  std::vector<std::string> lines;
  char buf[8192];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    std::string s(buf);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
      s.pop_back();
    }
    if (!s.empty()) {
      lines.push_back(s);
    }
  }
  std::fclose(f);

  CHECK_EQ(lines.size(), 2u);
  for (const std::string& s : lines) {
    CHECK(json_object_line_wellformed(s));
    CHECK(s.find("\"runtime\":\"") != std::string::npos);
    CHECK(s.find("\"gc_count\":") != std::string::npos);
    CHECK(s.find("\"pauses\":{") != std::string::npos);
    CHECK(s.find("\"gc_leaf\":{\"count\":") != std::string::npos);
    CHECK(s.find("\"peak_bytes\":") != std::string::npos);
  }
  CHECK(lines[0].find("\"runtime\":\"seq\"") != std::string::npos);
  CHECK(lines[1].find("\"runtime\":\"hier\"") != std::string::npos);

  // Both stressed runs collected; their exports must say so.
  CHECK(lines[0].find("\"gc_count\":0,") == std::string::npos);
  CHECK(lines[1].find("\"gc_count\":0,") == std::string::npos);

  std::remove(path);
  trace::reset();
}

}  // namespace
}  // namespace parmem
