// core/gc_parallel.hpp: team-based evacuation must preserve the
// object graph exactly -- values, shape, AND sharing (a shared
// subgraph is copied once, not once per referrer) -- independent of
// team size, and its claim protocol must be free (zero conflicts)
// when the team is one worker. Plus end-to-end parity: the STW
// runtime's recruited-team collections and HierRuntime's parallel
// join-time collections keep kernel checksums identical to the
// sequential runtime.
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bench_common/workloads.hpp"
#include "core/gc_parallel.hpp"
#include "core/hier_runtime.hpp"
#include "data/rand.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;

// A graph with all the shapes the collector must get right: a chain
// (deep forwarding), random fan-in within a window (sharing), a hub
// object every k-th object points at (heavy sharing -- the claim
// contention hot spot), and interleaved garbage. Returns root slots.
struct BuiltGraph {
  HeapRecord* heap = nullptr;
  std::vector<Object*> roots;
  Object* hub = nullptr;
};

BuiltGraph build_graph(HeapArena& arena, std::size_t objects,
                       std::uint64_t seed) {
  BuiltGraph g;
  g.heap = arena.create(nullptr, 0);
  std::uint64_t s = seed;
  auto rnd = [&s](std::uint64_t mod) {
    s = data::hash64(s, mod + 1);
    return s % mod;
  };
  g.hub = init_object(g.heap->allocate_raw(object_bytes(0, 4)), 0, 4);
  for (std::uint32_t k = 0; k < 4; ++k) {
    g.hub->store_i64_plain(k, static_cast<std::int64_t>(rnd(1u << 20)));
  }
  std::vector<Object*> objs;
  objs.push_back(g.hub);
  for (std::size_t i = 1; i < objects; ++i) {
    const auto np = static_cast<std::uint32_t>(1 + rnd(3));
    const auto nn = static_cast<std::uint32_t>(1 + rnd(6));
    Object* o = init_object(g.heap->allocate_raw(object_bytes(np, nn)),
                            np, nn);
    for (std::uint32_t k = 0; k < nn; ++k) {
      o->store_i64_plain(k, static_cast<std::int64_t>(rnd(1u << 20)));
    }
    o->store_ptr_plain(0, i % 7 == 0 ? g.hub : objs.back());
    for (std::uint32_t k = 1; k < np; ++k) {
      const std::size_t window = objs.size() < 64 ? objs.size() : 64;
      if (rnd(3) != 0) {  // some fields stay null, some objects die
        o->store_ptr_plain(k, objs[objs.size() - 1 - rnd(window)]);
      }
    }
    objs.push_back(o);
  }
  for (std::size_t i = 0; i < objs.size(); i += 16) {
    g.roots.push_back(objs[i]);  // ~15/16 of the chain tail is garbage
  }
  g.roots.push_back(objs.back());
  return g;
}

// Deterministic structure+value hash: DFS from the roots assigning
// visit-order ids, folding in each object's layout, scalars, and edge
// TARGET IDS. Ids are per-traversal, so the hash is address-free --
// equal before and after evacuation iff values, shape, and sharing all
// survived (a doubled shared subgraph changes the ids of everything
// after it).
std::uint64_t graph_checksum(const std::vector<Object*>& roots) {
  std::unordered_map<const Object*, std::uint64_t> id;
  std::vector<Object*> stack;
  std::uint64_t h = 0x5eed;
  auto visit = [&](Object* o) {
    if (o != nullptr && id.emplace(o, id.size()).second) {
      stack.push_back(o);
    }
  };
  for (Object* r : roots) {
    visit(r);
  }
  // Visit in LIFO order but fold edges in field order at pop time.
  while (!stack.empty()) {
    Object* o = stack.back();
    stack.pop_back();
    h = data::hash64(h, id[o]);
    h = data::hash64(h, o->meta_word());
    for (std::uint32_t i = 0; i < o->nscalar(); ++i) {
      h = data::hash64(h, static_cast<std::uint64_t>(o->scalar(i)));
    }
    for (std::uint32_t i = 0; i < o->nptr(); ++i) {
      visit(o->ptrs()[i]);
    }
  }
  // Fold the edge structure in a second pass now that every id exists.
  for (auto& [o, oid] : id) {
    std::uint64_t eh = oid;
    for (std::uint32_t i = 0; i < o->nptr(); ++i) {
      const Object* t = const_cast<Object*>(o)->ptrs()[i];
      eh = data::hash64(eh, t != nullptr ? id.at(t) + 1 : 0);
    }
    h ^= data::hash64(eh, 0xed9e);
  }
  return h;
}

core::ParallelGcOutcome collect_graph(BuiltGraph& g, ChunkPool& pool,
                                      unsigned team) {
  core::ParallelCollector pc(pool, {g.heap},
                             core::ParallelGcOptions{team, 32});
  return pc.collect([&g](auto&& fn) {
    for (Object*& r : g.roots) {
      fn(&r);
    }
  });
}

// Follow the graph from a root to the hub: every i%7==0 object's
// field 0 is the hub, so roots[7*16 ...] reach it in one hop... rather
// than hardcode, scan reachable objects for 0-pointer/4-scalar ones.
Object* find_hub(const std::vector<Object*>& roots) {
  std::unordered_map<const Object*, bool> seen;
  std::vector<Object*> stack(roots.begin(), roots.end());
  Object* hub = nullptr;
  while (!stack.empty()) {
    Object* o = stack.back();
    stack.pop_back();
    if (o == nullptr || !seen.emplace(o, true).second) {
      continue;
    }
    if (o->nptr() == 0 && o->nscalar() == 4) {
      CHECK(hub == nullptr || hub == o);  // sharing: exactly one copy
      hub = o;
    }
    for (std::uint32_t i = 0; i < o->nptr(); ++i) {
      stack.push_back(o->ptrs()[i]);
    }
  }
  return hub;
}

PARMEM_TEST(parallel_gc_preserves_graph_and_sharing) {
  ChunkPool pool;
  HeapArena arena(pool);
  BuiltGraph g = build_graph(arena, 20000, 7);
  const std::uint64_t before = graph_checksum(g.roots);
  const std::size_t allocated = g.heap->allocated_bytes();
  CHECK(find_hub(g.roots) == g.hub);

  core::ParallelGcOutcome out = collect_graph(g, pool, 3);

  CHECK_EQ(graph_checksum(g.roots), before);
  // The hub survives as exactly one copy, shared by every referrer.
  Object* hub_after = find_hub(g.roots);
  CHECK(hub_after != nullptr);
  CHECK(hub_after != g.hub);  // it moved
  // Garbage died: the evacuated bytes are well under the allocation.
  CHECK(out.totals.bytes_copied > 0);
  CHECK(out.totals.bytes_copied < allocated);
  CHECK_EQ(out.claim_conflicts, out.totals.claim_conflicts);
  // Per-worker rows sum to the totals.
  std::uint64_t sum = 0;
  for (const auto& w : out.per_worker) {
    sum += w.objects_copied;
  }
  CHECK_EQ(sum, out.totals.objects_copied);
}

PARMEM_TEST(parallel_gc_team_sizes_equivalent) {
  std::uint64_t checksum1 = 0;
  core::ParallelGcOutcome out1;
  {
    ChunkPool pool;
    HeapArena arena(pool);
    BuiltGraph g = build_graph(arena, 20000, 21);
    out1 = collect_graph(g, pool, 1);
    checksum1 = graph_checksum(g.roots);
  }
  for (unsigned team : {2u, 4u}) {
    ChunkPool pool;
    HeapArena arena(pool);
    BuiltGraph g = build_graph(arena, 20000, 21);
    core::ParallelGcOutcome out = collect_graph(g, pool, team);
    // Same live set regardless of who copies it.
    CHECK_EQ(out.totals.objects_copied, out1.totals.objects_copied);
    CHECK_EQ(out.totals.bytes_copied, out1.totals.bytes_copied);
    CHECK_EQ(graph_checksum(g.roots), checksum1);
  }
}

PARMEM_TEST(parallel_gc_single_worker_has_no_conflicts) {
  ChunkPool pool;
  HeapArena arena(pool);
  BuiltGraph g = build_graph(arena, 8000, 5);
  core::ParallelGcOutcome out = collect_graph(g, pool, 1);
  CHECK_EQ(out.claim_conflicts, 0u);
  CHECK(out.totals.objects_copied > 0);
  CHECK_EQ(out.per_worker.size(), 1u);
  CHECK_EQ(out.per_worker[0].packets_stolen, 0u);
}

// install_chunk_list's non-empty path: a retired chunk list detached
// from one record can be installed wholesale into another, carrying
// the object graph (addresses intact) and the allocated-bytes account.
PARMEM_TEST(heap_record_install_chunk_list_roundtrip) {
  ChunkPool pool;
  HeapArena arena(pool);
  BuiltGraph g = build_graph(arena, 8000, 11);
  const std::uint64_t before = graph_checksum(g.roots);
  const std::size_t allocated = g.heap->allocated_bytes();

  Chunk* head = g.heap->heap().detach_chunks();
  Chunk* tail = head;
  while (tail != nullptr && tail->next != nullptr) {
    tail = tail->next;
  }
  HeapRecord* other = arena.create(nullptr, 0);
  (void)other->allocate_raw(64);  // preexisting contents must be released
  other->install_chunk_list(head, tail, allocated);

  CHECK_EQ(other->allocated_bytes(), allocated);
  CHECK_EQ(graph_checksum(g.roots), before);  // addresses intact
  for (Object* r : g.roots) {
    CHECK(heap_of(r) == &other->heap());  // ownership retargeted
  }
  // And the adopted list collects normally from its new record.
  core::ParallelCollector pc(pool, {other},
                             core::ParallelGcOptions{2, 32});
  core::ParallelGcOutcome out = pc.collect([&g](auto&& fn) {
    for (Object*& r : g.roots) {
      fn(&r);
    }
  });
  CHECK(out.totals.bytes_copied > 0);
  CHECK_EQ(graph_checksum(g.roots), before);
}

// Stale promotion copies must forward through to their master: a
// "promoted" object's old copy sits in the collected heap with a
// forwarding pointer into a FOREIGN heap; the collector must chase it
// (rewriting roots to the master) and must not claim or copy the
// master itself.
PARMEM_TEST(parallel_gc_collects_promotion_forwarded_heaps) {
  ChunkPool pool;
  HeapArena arena(pool);
  HeapRecord* parent = arena.create(nullptr, 0);
  HeapRecord* child = arena.create(parent, 1);

  Object* master = init_object(parent->allocate_raw(object_bytes(0, 2)),
                               0, 2);
  master->store_i64_plain(0, 41);
  master->store_i64_plain(1, 43);
  Object* stale = init_object(child->allocate_raw(object_bytes(0, 2)), 0, 2);
  stale->set_fwd(master);  // what a finished promotion leaves behind

  Object* keeper = init_object(child->allocate_raw(object_bytes(1, 1)), 1, 1);
  keeper->store_i64_plain(0, 7);
  keeper->store_ptr_plain(0, stale);

  std::vector<Object*> roots{stale, keeper};
  core::ParallelCollector pc(pool, {child},
                             core::ParallelGcOptions{2, 32});
  core::ParallelGcOutcome out = pc.collect([&roots](auto&& fn) {
    for (Object*& r : roots) {
      fn(&r);
    }
  });

  CHECK(roots[0] == master);  // stale root snapped to the master
  CHECK(roots[1] != keeper);  // live child object was evacuated
  CHECK_EQ(roots[1]->scalar(0), 7);
  CHECK(roots[1]->ptrs()[0] == master);  // field chased, master untouched
  CHECK_EQ(out.totals.objects_copied, 1u);  // only `keeper`; never the master
  CHECK_EQ(master->scalar(0), 41);
  CHECK_EQ(master->scalar(1), 43);
}

// The STW runtime's collections go through the recruited-team
// evacuator whenever workers > 1; kernels must come out bit-identical
// to the sequential runtime even under constant collection pressure.
PARMEM_TEST(stw_parallel_evacuation_kernel_parity) {
  bench::Sizes z;
  z.scale = 0.001;
  z.msort_pure_n = 4000;
  z.sort_grain = 256;
  z.seq_n = 6000;
  z.seq_grain = 512;
  const std::int64_t ref_sort = [&] {
    SeqRuntime seq;
    return bench_msort_pure(seq, z).checksum;
  }();
  const std::int64_t ref_filter = [&] {
    SeqRuntime seq;
    return bench_filter(seq, z).checksum;
  }();
  StwRuntime::Options o;
  o.workers = 4;
  o.gc_min_budget = std::size_t{96} << 10;
  StwRuntime rt(o);
  for (int i = 0; i < 3; ++i) {
    CHECK_EQ(bench_msort_pure(rt, z).checksum, ref_sort);
    CHECK_EQ(bench_filter(rt, z).checksum, ref_filter);
  }
  CHECK(rt.stats().gc_count > 0);
}

// Hier join-time subtree collections with a team must preserve kernel
// results exactly like the sequential join-time collector does.
PARMEM_TEST(hier_parallel_join_collection_parity) {
  bench::Sizes z;
  z.scale = 0.001;
  z.usp_side = 12;
  z.msort_pure_n = 4000;
  z.sort_grain = 256;
  const std::int64_t ref_usp = [&] {
    SeqRuntime seq;
    return bench_usp_tree(seq, z).checksum;
  }();
  const std::int64_t ref_sort = [&] {
    SeqRuntime seq;
    return bench_msort_pure(seq, z).checksum;
  }();
  HierRuntime::Options o;
  o.workers = 2;
  o.gc_join_threshold = std::size_t{16} << 10;
  o.gc_parallel_team = 3;
  HierRuntime rt(o);
  for (int i = 0; i < 2; ++i) {
    CHECK_EQ(bench_usp_tree(rt, z).checksum, ref_usp);
    CHECK_EQ(bench_msort_pure(rt, z).checksum, ref_sort);
  }
  CHECK(rt.stats().gc_count > 0);
}

}  // namespace
