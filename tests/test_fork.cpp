// fork2: result plumbing, determinism across repeated parallel runs,
// nesting depth, exception propagation, and the join-time heap merge
// that keeps child-allocated objects alive at stable addresses.
#include <cstdint>
#include <stdexcept>

#include "core/hier_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

std::int64_t fib(Ctx& c, int n) {
  if (n < 2) {
    return n;
  }
  auto [a, b] = HierRuntime::fork2(
      c, {}, [n](Ctx& cc) { return fib(cc, n - 1); },
      [n](Ctx& cc) { return fib(cc, n - 2); });
  return a + b;
}

PARMEM_TEST(fork2_deterministic_results) {
  HierRuntime::Options opts;
  opts.workers = 4;
  HierRuntime rt(opts);
  for (int round = 0; round < 3; ++round) {
    std::int64_t r = rt.run([](Ctx& ctx) { return fib(ctx, 18); });
    CHECK_EQ(r, 2584);
  }
  CHECK(rt.stats().forks > 0);
}

PARMEM_TEST(fork2_heterogeneous_results) {
  HierRuntime rt;
  auto out = rt.run([](Ctx& ctx) {
    auto [a, b] = HierRuntime::fork2(
        ctx, {}, [](Ctx&) { return 3.5; },
        [](Ctx&) { return std::int64_t{7}; });
    return static_cast<double>(b) + a;
  });
  CHECK(out == 10.5);
}

PARMEM_TEST(fork2_merge_keeps_child_objects) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    constexpr int kN = 1000;
    // Each branch builds a list in its own leaf and returns the raw
    // head pointer; the join merges chunks so addresses stay valid.
    auto build = [](Ctx& c, std::int64_t tag) {
      RootFrame f(c);
      Local head = f.local(nullptr);
      for (int i = 0; i < kN; ++i) {
        Object* node = c.alloc(1, 1);
        Ctx::init_i64(node, 0, tag + i);
        node->set_ptr_relaxed(0, head.get());
        head.set(node);
      }
      return head.get();
    };
    auto [left, right] = HierRuntime::fork2(
        ctx, {}, [&build](Ctx& c) { return build(c, 1000000); },
        [&build](Ctx& c) { return build(c, 2000000); });

    Local lroot = frame.local(left);
    Local rroot = frame.local(right);
    CHECK_EQ(heap_of(lroot.get())->depth(), 0u);  // merged into the parent
    CHECK_EQ(heap_of(rroot.get())->depth(), 0u);

    auto check_list = [](Object* head, std::int64_t tag) {
      std::int64_t expect = tag + kN - 1;
      for (Object* p = head; p != nullptr; p = Ctx::read_ptr(p, 0)) {
        CHECK_EQ(Ctx::read_i64_imm(p, 0), expect);
        --expect;
      }
      CHECK_EQ(expect, tag - 1);
    };
    check_list(lroot.get(), 1000000);
    check_list(rroot.get(), 2000000);

    // Survives a forced parent collection too (roots relocate).
    ctx.collect_now();
    check_list(lroot.get(), 1000000);
    check_list(rroot.get(), 2000000);
    CHECK_EQ(ctx.runtime().stats().promotions, 0u);  // merge, not promotion
    return 0;
  });
}

PARMEM_TEST(fork2_nested_depth) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  std::int64_t r = rt.run([](Ctx& ctx) {
    // 2^6 leaves each allocating: exercises heap split/merge 63 times.
    struct Rec {
      static std::int64_t go(Ctx& c, int depth) {
        if (depth == 0) {
          RootFrame f(c);
          Local o = f.local(c.alloc(0, 1));
          Ctx::init_i64(o.get(), 0, 1);
          return Ctx::read_i64_mut(o.get(), 0);
        }
        auto [a, b] = HierRuntime::fork2(
            c, {}, [depth](Ctx& cc) { return Rec::go(cc, depth - 1); },
            [depth](Ctx& cc) { return Rec::go(cc, depth - 1); });
        return a + b;
      }
    };
    return Rec::go(ctx, 6);
  });
  CHECK_EQ(r, 64);
}

PARMEM_TEST(fork2_void_branches) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(2, 0));
    auto [a, b] = HierRuntime::fork2(
        ctx, {box},
        [box](Ctx& c) {  // effect-only branch: no return value needed
          Object* cell = c.alloc(0, 1);
          Ctx::init_i64(cell, 0, 17);
          c.write_ptr(box.get(), 0, cell);
        },
        [box](Ctx& c) { return Ctx::read_i64_imm(box.get(), 1); });
    static_assert(std::is_same_v<decltype(a), std::monostate>);
    CHECK_EQ(b, 0);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 17);
    return 0;
  });
}

PARMEM_TEST(fork2_propagates_exceptions) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  bool caught = false;
  try {
    rt.run([](Ctx& ctx) {
      auto [a, b] = HierRuntime::fork2(
          ctx, {}, [](Ctx&) { return 1; },
          [](Ctx&) -> int { throw std::runtime_error("branch b"); });
      return a + b;
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    CHECK(std::string(e.what()) == "branch b");
  }
  CHECK(caught);
  // The runtime is still usable afterwards.
  CHECK_EQ(rt.run([](Ctx& ctx) { return fib(ctx, 10); }), 55);
}

}  // namespace
}  // namespace parmem
