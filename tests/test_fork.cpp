// fork2: result plumbing, determinism across repeated parallel runs,
// nesting depth, exception propagation, the join-time heap merge that
// keeps child-allocated objects alive at stable addresses, and the
// rooted result channel that keeps raw Object* returns valid across
// collections inside the join window.
#include <cstdint>
#include <stdexcept>

#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

std::int64_t fib(Ctx& c, int n) {
  if (n < 2) {
    return n;
  }
  auto [a, b] = HierRuntime::fork2(
      c, {}, [n](Ctx& cc) { return fib(cc, n - 1); },
      [n](Ctx& cc) { return fib(cc, n - 2); });
  return a + b;
}

PARMEM_TEST(fork2_deterministic_results) {
  HierRuntime::Options opts;
  opts.workers = 4;
  HierRuntime rt(opts);
  for (int round = 0; round < 3; ++round) {
    std::int64_t r = rt.run([](Ctx& ctx) { return fib(ctx, 18); });
    CHECK_EQ(r, 2584);
  }
  CHECK(rt.stats().forks > 0);
}

PARMEM_TEST(fork2_heterogeneous_results) {
  HierRuntime rt;
  auto out = rt.run([](Ctx& ctx) {
    auto [a, b] = HierRuntime::fork2(
        ctx, {}, [](Ctx&) { return 3.5; },
        [](Ctx&) { return std::int64_t{7}; });
    return static_cast<double>(b) + a;
  });
  CHECK(out == 10.5);
}

PARMEM_TEST(fork2_merge_keeps_child_objects) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    constexpr int kN = 1000;
    // Each branch builds a list in its own leaf and returns the raw
    // head pointer; the join merges chunks so addresses stay valid.
    auto build = [](Ctx& c, std::int64_t tag) {
      RootFrame f(c);
      Local head = f.local(nullptr);
      for (int i = 0; i < kN; ++i) {
        Object* node = c.alloc(1, 1);
        Ctx::init_i64(node, 0, tag + i);
        node->set_ptr_relaxed(0, head.get());
        head.set(node);
      }
      return head.get();
    };
    auto [left, right] = HierRuntime::fork2(
        ctx, {}, [&build](Ctx& c) { return build(c, 1000000); },
        [&build](Ctx& c) { return build(c, 2000000); });

    Local lroot = frame.local(left);
    Local rroot = frame.local(right);
    CHECK_EQ(heap_of(lroot.get())->depth(), 0u);  // merged into the parent
    CHECK_EQ(heap_of(rroot.get())->depth(), 0u);

    auto check_list = [](Object* head, std::int64_t tag) {
      std::int64_t expect = tag + kN - 1;
      for (Object* p = head; p != nullptr; p = Ctx::read_ptr(p, 0)) {
        CHECK_EQ(Ctx::read_i64_imm(p, 0), expect);
        --expect;
      }
      CHECK_EQ(expect, tag - 1);
    };
    check_list(lroot.get(), 1000000);
    check_list(rroot.get(), 2000000);

    // Survives a forced parent collection too (roots relocate).
    ctx.collect_now();
    check_list(lroot.get(), 1000000);
    check_list(rroot.get(), 2000000);
    CHECK_EQ(ctx.runtime().stats().promotions, 0u);  // merge, not promotion
    return 0;
  });
}

PARMEM_TEST(fork2_nested_depth) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  std::int64_t r = rt.run([](Ctx& ctx) {
    // 2^6 leaves each allocating: exercises heap split/merge 63 times.
    struct Rec {
      static std::int64_t go(Ctx& c, int depth) {
        if (depth == 0) {
          RootFrame f(c);
          Local o = f.local(c.alloc(0, 1));
          Ctx::init_i64(o.get(), 0, 1);
          return Ctx::read_i64_mut(o.get(), 0);
        }
        auto [a, b] = HierRuntime::fork2(
            c, {}, [depth](Ctx& cc) { return Rec::go(cc, depth - 1); },
            [depth](Ctx& cc) { return Rec::go(cc, depth - 1); });
        return a + b;
      }
    };
    return Rec::go(ctx, 6);
  });
  CHECK_EQ(r, 64);
}

PARMEM_TEST(fork2_void_branches) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(2, 0));
    auto [a, b] = HierRuntime::fork2(
        ctx, {box},
        [box](Ctx& c) {  // effect-only branch: no return value needed
          Object* cell = c.alloc(0, 1);
          Ctx::init_i64(cell, 0, 17);
          c.write_ptr(box.get(), 0, cell);
        },
        [box](Ctx& c) { return Ctx::read_i64_imm(box.get(), 1); });
    static_assert(std::is_same_v<decltype(a), std::monostate>);
    CHECK_EQ(b, 0);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 17);
    return 0;
  });
}

// Regression: a branch result carried as a raw Object* used to sit in
// an unregistered stack slot from branch completion until the parent
// consumed it after the join. Any collection in that window (here the
// GC-stress join cycle) relocates the object and leaves the return
// value stale. fork2's ResultChannel roots the returns, so they are
// rewritten like every other root: each branch publishes its object
// into a parent Local AND returns it raw, and after the join (which
// collected and moved everything under stress) the returned pointer
// must still be the IDENTICAL root the Local tracked.
PARMEM_TEST(fork2_raw_return_rooted_across_join_collection) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.gc_stress = true;  // forces a stopped-world collection per join
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box_a = frame.local(nullptr);
    Local box_b = frame.local(nullptr);
    auto make = [](Ctx& c, const Local& box, std::int64_t tag) {
      Object* o = c.alloc(0, 1);
      Ctx::init_i64(o, 0, tag);
      box.set(c.publish(o));
      return o;
    };
    auto [a, b] = HierRuntime::fork2(
        ctx, {box_a, box_b},
        [&](Ctx& c) { return make(c, box_a, 41); },
        [&](Ctx& c) { return make(c, box_b, 43); });
    // The stress join collection moved both objects; the Locals were
    // rewritten by root scanning, and the returns must match them.
    CHECK(a == box_a.get());
    CHECK(b == box_b.get());
    CHECK_EQ(Ctx::read_i64_imm(a, 0), 41);
    CHECK_EQ(Ctx::read_i64_imm(b, 0), 43);
    return 0;
  });
  CHECK(rt.stats().gc_count > 0);
}

// Same hole under the local-heap runtime, where the window contains
// stopped-world GLOBAL collections: the left branch returns its
// (promoted) result raw, then the right branch churns enough
// allocation that GC-stress safepoints collect the global heap and
// move the master before the parent consumes the return.
PARMEM_TEST(fork2_raw_return_rooted_across_global_collection) {
  using LCtx = LhRuntime::Ctx;
  LhRuntime::Options opts;
  opts.workers = 2;
  opts.gc_stress = true;
  LhRuntime rt(opts);
  rt.run([](LCtx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(nullptr);
    auto [a, b] = LhRuntime::fork2(
        ctx, {box},
        [&box](LCtx& c) {
          Object* o = c.alloc(0, 1);
          LCtx::init_i64(o, 0, 59);
          box.set(c.publish(o));  // also promotes: depth-0 master
          return o;
        },
        [](LCtx& c) {
          RootFrame f(c);
          Local junk = f.local(nullptr);
          for (int i = 0; i < 4000; ++i) {  // several chunk refills ->
            junk.set(c.alloc(1, 2));        // stressed global cycles
          }
          return 0;
        });
    (void)b;
    CHECK_EQ(heap_of(a)->depth(), 0u);  // the channel published it
    CHECK(a == box.get());
    CHECK_EQ(LCtx::read_i64_imm(a, 0), 59);
    return 0;
  });
  CHECK(rt.stats().global_gc_count > 0);
}

PARMEM_TEST(fork2_propagates_exceptions) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  bool caught = false;
  try {
    rt.run([](Ctx& ctx) {
      auto [a, b] = HierRuntime::fork2(
          ctx, {}, [](Ctx&) { return 1; },
          [](Ctx&) -> int { throw std::runtime_error("branch b"); });
      return a + b;
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    CHECK(std::string(e.what()) == "branch b");
  }
  CHECK(caught);
  // The runtime is still usable afterwards.
  CHECK_EQ(rt.run([](Ctx& ctx) { return fib(ctx, 10); }), 55);
}

}  // namespace
}  // namespace parmem
