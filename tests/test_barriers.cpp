// Read/write barrier semantics: immutable vs mutable paths on local
// objects, distant (ancestor-heap) access from a forked child, and the
// promoted-object barrier reading through stale references -- the
// BM_ReadMutablePromoted scenario -- in both promotion modes.
#include <cstdint>

#include "core/hier_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

PARMEM_TEST(barrier_local_read_write) {
  HierRuntime rt;
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local o = frame.local(ctx.alloc(1, 2));
    Local p = frame.local(ctx.alloc(0, 1));
    Ctx::init_i64(o.get(), 0, 11);
    CHECK_EQ(Ctx::read_i64_imm(o.get(), 0), 11);
    CHECK_EQ(Ctx::read_i64_mut(o.get(), 0), 11);
    ctx.write_i64(o.get(), 1, 22);
    CHECK_EQ(Ctx::read_i64_mut(o.get(), 1), 22);
    CHECK_EQ(Ctx::read_i64_imm(o.get(), 1), 22);
    ctx.write_ptr(o.get(), 0, p.get());
    CHECK(Ctx::read_ptr(o.get(), 0) == p.get());
    ctx.write_ptr(o.get(), 0, nullptr);
    CHECK(Ctx::read_ptr(o.get(), 0) == nullptr);
    return 0;
  });
}

PARMEM_TEST(barrier_distant_ops_from_child) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local obj = frame.local(ctx.alloc(1, 1));
    Local peer = frame.local(ctx.alloc(0, 1));
    Ctx::init_i64(obj.get(), 0, 5);
    Ctx::init_i64(peer.get(), 0, 99);

    HierRuntime::fork2(
        ctx, {obj, peer},
        [obj, peer](Ctx& c) {
          // Reads of the parent's object are plain.
          CHECK_EQ(Ctx::read_i64_imm(obj.get(), 0), 5);
          CHECK_EQ(c.read_i64_mut(obj.get(), 0), 5);
          // Non-pointer write to a distant object.
          c.write_i64(obj.get(), 0, 6);
          // Pointer write whose value lives at the same depth: takes
          // the single heap lock, promotes nothing.
          c.write_ptr(obj.get(), 0, peer.get());
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });

    CHECK_EQ(Ctx::read_i64_mut(obj.get(), 0), 6);
    CHECK(Ctx::read_ptr(obj.get(), 0) == peer.get());
    CHECK_EQ(rt.stats().promotions, 0u);
    return 0;
  });
}

void stale_reference_scenario(PromotionMode mode) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.promotion = mode;
  HierRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box](Ctx& c) {
          RootFrame f(c);
          Local cell = f.local(c.alloc(0, 1));
          Ctx::init_i64(cell.get(), 0, 5);
          Object* stale = cell.get();
          c.write_ptr(box.get(), 0, cell.get());  // promotes the cell
          Local sref = f.local(stale);

          // The stale copy must keep forwarding to the master.
          CHECK(stale->fwd_acquire() != nullptr);
          CHECK_EQ(c.read_i64_mut(sref.get(), 0), 5);
          // Immutable reads through the stale copy still see the value
          // it was promoted with.
          CHECK_EQ(Ctx::read_i64_imm(sref.get(), 0), 5);

          // Writes through the stale reference land on the master...
          c.write_i64(sref.get(), 0, 42);
          Object* master = Ctx::read_ptr(box.get(), 0);
          CHECK(master != stale);
          CHECK_EQ(Ctx::read_i64_imm(master, 0), 42);
          // ...and reads through the stale reference see master writes.
          c.write_i64(master, 0, 43);
          CHECK_EQ(c.read_i64_mut(sref.get(), 0), 43);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    CHECK_EQ(rt.stats().promotions, 1u);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 43);
    return 0;
  });
}

PARMEM_TEST(barrier_stale_reference_coarse) {
  stale_reference_scenario(PromotionMode::kCoarseLocking);
}

PARMEM_TEST(barrier_stale_reference_fine) {
  stale_reference_scenario(PromotionMode::kFineGrained);
}

}  // namespace
}  // namespace parmem
