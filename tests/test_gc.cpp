// Leaf GC: garbage is reclaimed (bounded footprint under unbounded
// allocation), live graphs survive relocation with their shape, root
// slots are updated, and stale promoted copies are shortcut to their
// masters.
#include <cstdint>

#include "core/hier_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

PARMEM_TEST(gc_bounds_garbage_footprint) {
  HierRuntime::Options opts;
  opts.gc_min_budget = 512u << 10;
  HierRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local keep = frame.local(ctx.alloc(1, 1));
    Ctx::init_i64(keep.get(), 0, 123);
    Local second = frame.local(ctx.alloc(0, 1));
    Ctx::init_i64(second.get(), 0, 456);
    ctx.write_ptr(keep.get(), 0, second.get());

    // ~64MB of garbage through a 512KB budget.
    for (int i = 0; i < 2000000; ++i) {
      Object* junk = ctx.alloc(0, 2);
      Ctx::init_i64(junk, 0, i);
    }
    Stats s = rt.stats();
    CHECK(s.gc_count >= 10u);
    CHECK(rt.live_bytes() < (8u << 20));  // footprint stayed bounded

    // The rooted pair survived every relocation, link intact.
    CHECK_EQ(Ctx::read_i64_mut(keep.get(), 0), 123);
    Object* linked = Ctx::read_ptr(keep.get(), 0);
    CHECK(linked == second.get());
    CHECK_EQ(Ctx::read_i64_mut(linked, 0), 456);
    return 0;
  });
}

PARMEM_TEST(gc_preserves_live_graph_shape) {
  HierRuntime rt;
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    // Diamond + cycle, as in the promotion test, but collected in place.
    Local shared = frame.local(ctx.alloc(1, 1));
    Ctx::init_i64(shared.get(), 0, 31337);
    Local a = frame.local(ctx.alloc(1, 0));
    Local b = frame.local(ctx.alloc(1, 0));
    ctx.write_ptr(a.get(), 0, shared.get());
    ctx.write_ptr(b.get(), 0, shared.get());
    ctx.write_ptr(shared.get(), 0, a.get());  // cycle
    Object* a_before = a.get();

    ctx.collect_now();

    CHECK(a.get() != a_before);  // it really moved
    Object* sa = Ctx::read_ptr(a.get(), 0);
    Object* sb = Ctx::read_ptr(b.get(), 0);
    CHECK(sa == sb);
    CHECK(sa == shared.get());  // root slot was updated to the new copy
    CHECK_EQ(Ctx::read_i64_mut(sa, 0), 31337);
    CHECK(Ctx::read_ptr(sa, 0) == a.get());
    return 0;
  });
}

PARMEM_TEST(gc_shortcuts_stale_promoted_roots) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box](Ctx& c) {
          RootFrame f(c);
          Local cell = f.local(c.alloc(0, 1));
          Ctx::init_i64(cell.get(), 0, 9);
          Object* stale = cell.get();
          c.write_ptr(box.get(), 0, cell.get());  // promote; stale remains
          Local sref = f.local(stale);
          CHECK(sref.get() == stale);
          c.collect_now();  // child GC: slot must now point at the master
          CHECK(sref.get() != stale);
          CHECK(sref.get() == Object::chase(Ctx::read_ptr(box.get(), 0)));
          CHECK_EQ(c.read_i64_mut(sref.get(), 0), 9);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}

// Regression (small-leaf fix must survive collections): collect_now on
// an empty heap is a true no-op -- no gc_count churn -- and a
// collection that finds nothing alive must not reset the heap's
// chunk-doubling schedule back to the 4 KiB leaf start.
PARMEM_TEST(gc_empty_collection_noop_keeps_chunk_doubling) {
  HierRuntime rt;
  rt.run([&rt](Ctx& ctx) {
    // Fresh heap, no chunks: nothing to do, nothing billed.
    ctx.collect_now();
    CHECK_EQ(rt.stats().gc_count, 0u);

    // Grow the doubling schedule well past the 4 KiB start...
    for (int i = 0; i < 40; ++i) {
      Object* junk = ctx.alloc(0, 360);  // ~2.9 KiB each
      Ctx::init_i64(junk, 0, i);
    }
    Heap* heap = ctx.leaf_heap();
    std::size_t hint = heap->chunk_size_hint();
    CHECK(hint > kMinChunkBytes);

    // ...collect with everything dead (nothing rooted): zero bytes
    // copied, all chunks released, schedule untouched.
    ctx.collect_now();
    CHECK_EQ(rt.stats().gc_count, 1u);
    CHECK_EQ(heap->chunk_size_hint(), hint);
    CHECK(heap->chunks() == nullptr);

    // The now-empty heap: another collect_now is a no-op again.
    ctx.collect_now();
    CHECK_EQ(rt.stats().gc_count, 1u);

    // And the next allocation opens a chunk at the preserved step, not
    // back at 4 KiB.
    Object* o = ctx.alloc(0, 1);
    Ctx::init_i64(o, 0, 1);
    CHECK_EQ(heap->tail()->bytes, hint);
    return 0;
  });
}

// Same no-op guarantee for an all-promoted child leaf: after its
// objects move up, collection copies nothing and the doubling schedule
// survives into the leaf's next allocations.
PARMEM_TEST(gc_all_promoted_collection_keeps_chunk_doubling) {
  HierRuntime::Options opts;
  opts.workers = 2;
  HierRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box, &rt](Ctx& c) {
          for (int i = 0; i < 6; ++i) {
            Object* node = c.alloc(0, 360);
            Ctx::init_i64(node, 0, i);
            c.write_ptr(box.get(), 0, node);  // promote; stale remains
          }
          Heap* heap = c.leaf_heap();
          std::size_t hint = heap->chunk_size_hint();
          std::uint64_t copied_before = rt.stats().gc_bytes_copied;
          c.collect_now();  // every original is a dead stale copy
          CHECK_EQ(rt.stats().gc_bytes_copied, copied_before);
          CHECK_EQ(heap->chunk_size_hint(), hint);
          CHECK_EQ(c.read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 5);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}

PARMEM_TEST(gc_join_threshold_collects_merged_subtree) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.gc_join_threshold = 64u << 10;
  HierRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    // Children allocate garbage plus one published survivor each; the
    // join-time collection reclaims the garbage.
    auto branch = [box](Ctx& c) {
      RootFrame f(c);
      for (int i = 0; i < 50000; ++i) {
        Object* junk = c.alloc(0, 3);
        Ctx::init_i64(junk, 0, i);
      }
      Local keep = f.local(c.alloc(0, 1));
      Ctx::init_i64(keep.get(), 0, 7);
      c.write_ptr(box.get(), 0, keep.get());
      return std::int64_t{0};
    };
    std::uint64_t gcs_before = rt.stats().gc_count;
    HierRuntime::fork2(ctx, {box}, branch, branch);
    CHECK(rt.stats().gc_count > gcs_before);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 7);
    // Merged-then-collected heap is far smaller than the garbage was.
    CHECK(ctx.leaf_heap()->chunk_bytes() < (4u << 20));
    return 0;
  });
}

// Regression (join-GC soundness): a branch may publish its result into
// ANY ancestor's Local -- here a grandchild publishes into the root
// task's frame. With gc_join_threshold=1 every join collects; the
// pre-fix path rooted only the joining task's own frames, so the
// published object was unrooted during the inner join's collection,
// its chunk was released, and the garbage allocated afterwards
// overwrote it. A nonzero gc_join_threshold must therefore enable the
// stopped-world all-frames join path (the same escalation heap budgets
// use).
//
// Also sound under the CI GC-stress row: stress additionally forces a
// LEAF collection at every allocation, and leaf collections root the
// whole ancestor chain (Ctx::collect_now walks parent_), so the churn
// loop's stress collections keep the ancestor-published object alive
// too -- the guarantee gc_leaf_ancestor_publish_survives pins below.
PARMEM_TEST(gc_join_grandparent_publish_survives) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.gc_join_threshold = 1;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(nullptr);
    HierRuntime::fork2(
        ctx, {box},
        [&box](Ctx& c) {
          // Depth-1 branch: fork again, so the publisher below is a
          // grandchild of the frame that owns `box`.
          HierRuntime::fork2(
              c, {box},
              [&box](Ctx& cc) {
                RootFrame f(cc);
                Local keep = f.local(cc.alloc(0, 1));
                Ctx::init_i64(keep.get(), 0, 4242);
                box.set(cc.publish(keep.get()));
                return std::int64_t{0};
              },
              [](Ctx&) { return std::int64_t{0}; });
          // The inner join's threshold collection already ran. Churn
          // through enough fresh allocations to recycle any chunk the
          // collection wrongly released while `box` still pointed into
          // it.
          for (int i = 0; i < 20000; ++i) {
            Object* junk = c.alloc(0, 3);
            Ctx::init_i64(junk, 0, -1);
            Ctx::init_i64(junk, 1, -1);
            Ctx::init_i64(junk, 2, -1);
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    CHECK(box.get() != nullptr);
    CHECK_EQ(Ctx::read_i64_mut(box.get(), 0), 4242);
    return 0;
  });
}

// Regression (leaf-GC soundness): same ancestor-publish shape as
// above, but the collections are plain BUDGET-triggered leaf cycles --
// no join threshold, no stopped world. The publisher's object merges
// up into the depth-1 branch's heap at the inner join; `box` (a ROOT
// frame Local) is then its only reference. The pre-fix leaf collector
// rooted only the owner task's own frames, so the depth-1 branch's
// churn-triggered collections dropped the object and recycled its
// chunk. collect_now now roots the whole ancestor chain (frozen while
// the owner runs -- every ancestor is blocked in fork2), which keeps
// it alive and rewrites `box` when it moves.
PARMEM_TEST(gc_leaf_ancestor_publish_survives) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.gc_min_budget = 1 << 16;  // 64 KB: churn forces many leaf cycles
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(nullptr);
    HierRuntime::fork2(
        ctx, {box},
        [&box](Ctx& c) {
          HierRuntime::fork2(
              c, {box},
              [&box](Ctx& cc) {
                RootFrame f(cc);
                Local keep = f.local(cc.alloc(0, 1));
                Ctx::init_i64(keep.get(), 0, 2424);
                box.set(cc.publish(keep.get()));
                return std::int64_t{0};
              },
              [](Ctx&) { return std::int64_t{0}; });
          // Enough garbage to blow the tiny budget repeatedly while
          // `box` is the published object's only root.
          for (int i = 0; i < 20000; ++i) {
            Object* junk = c.alloc(0, 3);
            Ctx::init_i64(junk, 0, -1);
            Ctx::init_i64(junk, 1, -1);
            Ctx::init_i64(junk, 2, -1);
          }
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    CHECK(box.get() != nullptr);
    CHECK_EQ(Ctx::read_i64_mut(box.get(), 0), 2424);
    return 0;
  });
  CHECK(rt.stats().gc_count > 0);
}

}  // namespace
}  // namespace parmem
