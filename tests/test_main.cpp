#include "tests/test_util.hpp"

namespace parmem::test {

std::map<std::string, TestFn>& registry() {
  static std::map<std::string, TestFn> r;
  return r;
}

}  // namespace parmem::test

int main(int argc, char** argv) {
  auto& reg = parmem::test::registry();
  if (argc > 1 && std::string(argv[1]) == "--list") {
    for (const auto& [name, fn] : reg) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (argc > 1) {
    auto it = reg.find(argv[1]);
    if (it == reg.end()) {
      std::fprintf(stderr, "unknown test: %s\n", argv[1]);
      return 1;
    }
    it->second();
    std::printf("OK %s\n", argv[1]);
    return 0;
  }
  for (const auto& [name, fn] : reg) {
    std::printf("RUN  %s\n", name.c_str());
    std::fflush(stdout);
    fn();
    std::printf("OK   %s\n", name.c_str());
  }
  std::printf("all %zu tests passed\n", reg.size());
  return 0;
}
