#include <csignal>
#include <cstdlib>

#include "core/phase.hpp"
#include "core/sched.hpp"
#include "core/trace.hpp"
#include "tests/test_util.hpp"

namespace parmem::test {

std::map<std::string, TestFn>& registry() {
  static std::map<std::string, TestFn> r;
  return r;
}

namespace {

// In-process watchdog: if a test wedges (a stop that never finishes, a
// join that never completes), dump every live SafepointGate's state,
// each worker's current phase tag, and each worker's last trace event
// -- so the dump says WHAT every stuck thread was doing, not just that
// the process hung -- then abort with a distinguishable message
// instead of hanging until the ctest TIMEOUT reaps us silently.
// Everything in the handler is async-signal-safe: write(2), relaxed
// atomics, abort().
void watchdog_fire(int) {
  parmem::detail::sig_write(
      2, "\nparmem test watchdog: alarm expired, test is hung; "
         "safepoint gates:\n");
  parmem::GateRegistry::for_each(
      [](parmem::SafepointGate* g) { g->dump(2); });
  parmem::phase::dump(2);
  parmem::trace::dump_last_events(2);
  std::abort();
}

void arm_watchdog() {
  unsigned seconds = 120;  // default; PARMEM_TEST_ALARM=0 disables
  if (const char* v = std::getenv("PARMEM_TEST_ALARM")) {
    seconds = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
  }
  if (seconds == 0) {
    return;
  }
  std::signal(SIGALRM, watchdog_fire);
  ::alarm(seconds);
}

}  // namespace

}  // namespace parmem::test

int main(int argc, char** argv) {
  parmem::test::arm_watchdog();
  auto& reg = parmem::test::registry();
  if (argc > 1 && std::string(argv[1]) == "--list") {
    for (const auto& [name, fn] : reg) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (argc > 1) {
    auto it = reg.find(argv[1]);
    if (it == reg.end()) {
      std::fprintf(stderr, "unknown test: %s\n", argv[1]);
      return 1;
    }
    it->second();
    std::printf("OK %s\n", argv[1]);
    return 0;
  }
  for (const auto& [name, fn] : reg) {
    std::printf("RUN  %s\n", name.c_str());
    std::fflush(stdout);
    fn();
    std::printf("OK   %s\n", name.c_str());
  }
  std::printf("all %zu tests passed\n", reg.size());
  return 0;
}
