// Global-heap collection under the local-heap runtime
// (runtimes/localheap_runtime.hpp): a stopped-world Cheney cycle over
// the depth-0 promotion sink, rooted from every worker's frames plus
// local->global edges discovered by scanning the worker-local heaps.
// Covers forwarding-chase through a collected global heap, edge
// discovery (a local object as the only reference to a global
// master), team-size equivalence, the promotion-threshold trigger,
// and stats accounting.
#include <cstdint>

#include "runtimes/localheap_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = LhRuntime::Ctx;

// Enables the safepoint/global-collection machinery without any
// automatic trigger, so tests drive cycles with collect_global_now().
LhRuntime::Options manual_global(unsigned workers = 1) {
  LhRuntime::Options o;
  o.workers = workers;
  o.gc_global_threshold = ~std::size_t{0};
  return o;
}

// A promoted object's local original keeps a forwarding word to its
// global master. Collecting the global heap relocates the master; the
// scan of the local heap must shorten the stale forwarding word, so a
// chase through the original raw local pointer still reaches the
// (moved) master, and writes through it are seen by rooted readers.
PARMEM_TEST(global_gc_forwarding_chase_through_collected_heap) {
  LhRuntime rt(manual_global());
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Object* cell = ctx.alloc(0, 1);
    Ctx::init_i64(cell, 0, 42);
    Local box = frame.local(ctx.publish(cell));  // master now global
    CHECK_EQ(heap_of(box.get())->depth(), 0u);
    CHECK(Object::chase(cell) == box.get());
    ctx.collect_global_now();
    // The stale local pointer still chases to the relocated master...
    CHECK_EQ(Ctx::read_i64_mut(cell, 0), 42);
    CHECK(Object::chase(cell) == box.get());
    // ...and writes through it hit the same master the root sees.
    Ctx::write_i64(cell, 0, 43);
    CHECK_EQ(Ctx::read_i64_mut(box.get(), 0), 43);
    return 0;
  });
}

// Local->global edge discovery: a field of a LOCAL object is the only
// reference to a global master. The collection must find it by
// scanning the local heap, keep the master alive, and rewrite the
// field -- while actually reclaiming the global garbage around it.
PARMEM_TEST(global_gc_local_edge_keeps_master_alive) {
  LhRuntime rt(manual_global());
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    // The only root is a LOCAL wrapper; its pointer field will hold
    // the global master.
    Local wrap = frame.local(ctx.alloc(1, 0));
    {
      Object* cell = ctx.alloc(0, 1);
      Ctx::init_i64(cell, 0, 4242);
      Object* master = ctx.publish(cell);
      CHECK_EQ(heap_of(master)->depth(), 0u);
      ctx.write_ptr(wrap.get(), 0, master);  // local -> global edge
    }
    CHECK_EQ(heap_of(wrap.get())->depth(), 1u);  // wrapper stayed local
    // Global garbage: promote junk and drop every reference to it.
    for (int i = 0; i < 64; ++i) {
      Object* junk = ctx.alloc(0, 15);
      Ctx::init_i64(junk, 0, i);
      (void)ctx.publish(junk);
    }
    // Kill the stale local originals first: their forwarding words
    // would (correctly) keep the dead masters alive.
    ctx.collect_now();
    Stats before = rt.stats();
    ctx.collect_global_now();
    Stats d = rt.stats() - before;
    CHECK_EQ(d.global_gc_count, 1u);
    // Only the one master survived, not the 64 junk payloads.
    CHECK_EQ(d.global_gc_bytes, Object::size_bytes(0, 1));
    Object* master = Ctx::read_ptr(wrap.get(), 0);
    CHECK_EQ(heap_of(master)->depth(), 0u);
    CHECK_EQ(Ctx::read_i64_mut(master, 0), 4242);
    return 0;
  });
}

// Stats accounting: one forced global collection, billed as both a
// collection and a global collection, with bytes-copied exactly the
// live set of the global heap (the promoted box plus its cells).
PARMEM_TEST(global_gc_stats_match_live_set) {
  constexpr std::uint32_t kCells = 8;
  LhRuntime rt(manual_global());
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(kCells, 0));
    box.set(ctx.publish(box.get()));  // the sink: a global array
    for (std::uint32_t i = 0; i < kCells; ++i) {
      Object* cell = ctx.alloc(0, 1);
      Ctx::init_i64(cell, 0, i + 1);
      ctx.write_ptr(box.get(), i, cell);  // promotes each cell
    }
    ctx.collect_now();  // drop stale local originals (forwarding words)
    Stats before = rt.stats();
    ctx.collect_global_now();
    Stats d = rt.stats() - before;
    CHECK_EQ(d.global_gc_count, 1u);
    CHECK_EQ(d.gc_count, 1u);  // a global collection IS a collection
    const std::uint64_t live =
        Object::size_bytes(kCells, 0) + kCells * Object::size_bytes(0, 1);
    CHECK_EQ(d.global_gc_bytes, live);
    CHECK_EQ(d.gc_bytes_copied, live);
    for (std::uint32_t i = 0; i < kCells; ++i) {
      CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), i), 0), i + 1);
    }
    return 0;
  });
}

// The promotion-threshold policy: with a small gc_global_threshold,
// promotions into the global heap ring the doorbell and the next
// safepoint anyone reaches (allocation slow path, fork2 boundary)
// collects -- no manual collect_global_now involved.
PARMEM_TEST(global_gc_threshold_triggers_at_safepoints) {
  constexpr std::uint32_t kSlots = 64;
  LhRuntime::Options opts;
  opts.workers = 2;
  opts.gc_global_threshold = 1u << 10;
  LhRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(kSlots, 0));
    // Each branch owns a disjoint half of the sink's slots (racing the
    // same slot would be a language-level program race). fork2's
    // spawn-time promotion makes `box` global before the branches run.
    auto branch = [box](std::uint32_t base) {
      return [box, base](Ctx& c) {
        for (std::uint32_t i = base; i < base + kSlots / 2; ++i) {
          Object* cell = c.alloc(0, 15);  // 128-byte promoted payloads
          Ctx::init_i64(cell, 0, i);
          c.write_ptr(box.get(), i, cell);
          // Churn allocations to reach the chunk-overflow safepoint.
          for (int j = 0; j < 64; ++j) {
            Object* junk = c.alloc(0, 15);
            Ctx::init_i64(junk, 0, j);
          }
        }
        return std::int64_t{0};
      };
    };
    LhRuntime::fork2(ctx, {box}, branch(0), branch(kSlots / 2));
    CHECK(rt.stats().global_gc_count > 0);
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), i), 0), i);
    }
    return 0;
  });
}

// Team equivalence: a forked workload that publishes from every leaf,
// run with one worker (collections take the sequential path -- no one
// is parked to recruit) and with four (parked mutators join the
// evacuation team), must produce identical sums. GC-stress maximises
// the number of cycles the join windows see.
PARMEM_TEST(global_gc_team_sizes_equivalent) {
  struct Rec {
    static std::int64_t go(Ctx& c, int depth) {
      if (depth == 0) {
        RootFrame f(c);
        Local keep = f.local(nullptr);
        {
          Object* cell = c.alloc(0, 1);
          Ctx::init_i64(cell, 0, 1);
          keep.set(c.publish(cell));
        }
        for (int i = 0; i < 400; ++i) {  // churn across safepoints
          Object* junk = c.alloc(1, 2);
          Ctx::init_i64(junk, 0, i);
        }
        return Ctx::read_i64_mut(keep.get(), 0);
      }
      auto [a, b] = LhRuntime::fork2(
          c, {}, [depth](Ctx& cc) { return Rec::go(cc, depth - 1); },
          [depth](Ctx& cc) { return Rec::go(cc, depth - 1); });
      return a + b;
    }
  };
  for (unsigned workers : {1u, 4u}) {
    LhRuntime::Options opts;
    opts.workers = workers;
    opts.gc_global_threshold = 1u << 10;
    opts.gc_stress = true;
    LhRuntime rt(opts);
    std::int64_t sum = rt.run([](Ctx& ctx) { return Rec::go(ctx, 5); });
    CHECK_EQ(sum, 32);
    CHECK(rt.stats().global_gc_count > 0);
  }
}

}  // namespace
}  // namespace parmem
