// Allocation invariants: alignment, zeroing (including through chunk
// reuse after GC), metadata, chunk-boundary and oversized paths.
#include <cstdint>

#include "core/hier_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

PARMEM_TEST(alloc_alignment_and_metadata) {
  HierRuntime rt;
  rt.run([](Ctx& ctx) {
    for (std::uint32_t np = 0; np < 4; ++np) {
      for (std::uint32_t ns = 0; ns < 4; ++ns) {
        Object* o = ctx.alloc(np, ns);
        CHECK(reinterpret_cast<std::uintptr_t>(o) % Object::kAlign == 0);
        CHECK_EQ(o->nptr(), np);
        CHECK_EQ(o->nscalar(), ns);
        CHECK(o->size() >= Object::kHeaderBytes + 8u * (np + ns));
        CHECK(o->size() % Object::kAlign == 0);
      }
    }
    return 0;
  });
}

PARMEM_TEST(alloc_zeroes_all_fields) {
  HierRuntime rt;
  rt.run([](Ctx& ctx) {
    Object* o = ctx.alloc(3, 5);
    for (std::uint32_t i = 0; i < 5; ++i) {
      CHECK_EQ(Ctx::read_i64_imm(o, i), 0);
    }
    for (std::uint32_t i = 0; i < 3; ++i) {
      CHECK(Ctx::read_ptr(o, i) == nullptr);
    }
    return 0;
  });
}

PARMEM_TEST(alloc_zeroed_through_chunk_reuse) {
  // Dirty chunks, let the leaf GC recycle them through the pool, and
  // confirm fresh allocations still come back zeroed.
  HierRuntime::Options o;
  o.gc_min_budget = 256u << 10;
  HierRuntime rt(o);
  rt.run([](Ctx& ctx) {
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 100000; ++i) {
        Object* junk = ctx.alloc(1, 2);
        Ctx::init_i64(junk, 0, -1);
        Ctx::init_i64(junk, 1, -1);
        junk->set_ptr_relaxed(0, junk);  // self-loop garbage
      }
    }
    CHECK(ctx.runtime().stats().gc_count > 0);
    Object* fresh = ctx.alloc(2, 2);
    CHECK_EQ(Ctx::read_i64_imm(fresh, 0), 0);
    CHECK_EQ(Ctx::read_i64_imm(fresh, 1), 0);
    CHECK(Ctx::read_ptr(fresh, 0) == nullptr);
    CHECK(Ctx::read_ptr(fresh, 1) == nullptr);
    return 0;
  });
}

PARMEM_TEST(alloc_oversized_object) {
  HierRuntime rt;
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    // 100k scalars = 800KB payload > 256KB chunk: dedicated chunk path.
    const std::uint32_t n = 100000;
    Local big = frame.local(ctx.alloc(1, n));
    CHECK_EQ(heap_of(big.get())->depth(), 0u);
    for (std::uint32_t i = 0; i < n; i += 9973) {
      CHECK_EQ(Ctx::read_i64_imm(big.get(), i), 0);
      ctx.write_i64(big.get(), i, i * 3);
    }
    Object* small = ctx.alloc(0, 1);  // heap still usable after oversize
    Ctx::init_i64(small, 0, 7);
    // Objects allocated right after an oversized one must NOT land in
    // the oversized chunk's tail: past the first 256KiB-aligned block
    // the chunk_of() address mask would resolve to garbage.
    CHECK(chunk_of(small) != chunk_of(big.get()));
    CHECK(heap_of(small) == heap_of(big.get()));
    Local small_root = frame.local(small);
    ctx.write_ptr(big.get(), 0, small);  // exercises heap_of(small)
    CHECK(Ctx::read_ptr(big.get(), 0) == small);
    ctx.collect_now();  // both survive relocation; link stays intact
    CHECK(Ctx::read_ptr(big.get(), 0) == small_root.get());
    for (std::uint32_t i = 0; i < n; i += 9973) {
      CHECK_EQ(Ctx::read_i64_mut(big.get(), i), i * 3);
    }
    CHECK_EQ(Ctx::read_i64_imm(small_root.get(), 0), 7);
    return 0;
  });
}

PARMEM_TEST(alloc_many_distinct_objects) {
  HierRuntime rt;
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    constexpr int kN = 50000;  // spans several chunks
    Local head = frame.local(nullptr);
    for (int i = 0; i < kN; ++i) {
      Object* node = ctx.alloc(1, 1);
      Ctx::init_i64(node, 0, i);
      node->set_ptr_relaxed(0, head.get());
      head.set(node);
    }
    std::int64_t expect = kN - 1;
    for (Object* n = head.get(); n != nullptr; n = Ctx::read_ptr(n, 0)) {
      CHECK_EQ(Ctx::read_i64_imm(n, 0), expect);
      --expect;
    }
    CHECK_EQ(expect, -1);
    return 0;
  });
}

}  // namespace
}  // namespace parmem
