// Hierarchy-aware internal-heap collection (core/gc_internal.hpp):
// collecting a heap whose owner is blocked in fork2, while descendants
// still hold pointers (fields, frames, and stale promotion-forwarding
// words) into it. Covers forwarding-chase through a heap collected
// mid-chain, sharing preservation, descendant enumeration, the
// allocation-triggered policy, and stats accounting.
#include <cstdint>
#include <vector>

#include "core/gc_internal.hpp"
#include "core/hier_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

// Enables the internal-collection machinery (registry, safepoint gate)
// without any automatic trigger, so tests drive collections explicitly
// with collect_internal_now().
HierRuntime::Options manual_internal(unsigned workers = 1) {
  HierRuntime::Options o;
  o.workers = workers;
  o.gc_internal_threshold = ~std::size_t{0};
  return o;
}

// A child promotes live data and garbage into the root heap, then
// collects that heap while the root task is still blocked in fork2.
// The owner's Local and the child's stale reference must both survive
// the relocation.
PARMEM_TEST(internal_gc_collects_busy_internal_heap) {
  HierRuntime rt(manual_internal());
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(2, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box, &rt](Ctx& c) {
          RootFrame f(c);
          // First promotion: becomes garbage in the root heap once the
          // slot is overwritten below.
          Object* dead = c.alloc(0, 1);
          Ctx::init_i64(dead, 0, 1);
          c.write_ptr(box.get(), 0, dead);
          Object* live = c.alloc(0, 1);
          Ctx::init_i64(live, 0, 7);
          c.write_ptr(box.get(), 0, live);
          Local keep = f.local(live);
          // Kill the stale originals in this leaf first: their
          // forwarding words would otherwise (correctly) keep the dead
          // master alive through the internal collection.
          c.collect_now();
          std::uint64_t before = rt.stats().internal_gc_count;
          std::size_t root_bytes_before =
              heap_of(Object::chase(keep.get()))->allocated_bytes();
          c.collect_internal_now();
          Stats s = rt.stats();
          CHECK_EQ(s.internal_gc_count, before + 1);
          // The dead master was reclaimed: the root heap shrank.
          Heap* root_heap = heap_of(Object::chase(keep.get()));
          CHECK(root_heap->allocated_bytes() < root_bytes_before);
          // The child's rooted reference was rewritten to the new copy
          // and still reads the right value.
          CHECK_EQ(Ctx::read_i64_mut(keep.get(), 0), 7);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 7);
    return 0;
  });
}

// A forwarding chain leaf -> middle heap -> root heap, where the
// MIDDLE heap is collected mid-chain: the stale copy it held dies, and
// the grandchild's forwarding word is shortened past it, so chasing
// the original raw pointer still reaches the master.
PARMEM_TEST(internal_gc_forwarding_chase_through_collected_heap) {
  HierRuntime rt(manual_internal());
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box0 = frame.local(ctx.alloc(1, 0));  // root-heap anchor
    HierRuntime::fork2(
        ctx, {box0},
        [box0](Ctx& c1) {
          RootFrame f1(c1);
          Local box1 = f1.local(c1.alloc(1, 0));  // middle-heap anchor
          HierRuntime::fork2(
              c1, {box0, box1},
              [box0, box1](Ctx& g) {
                // Promote the cell into the middle heap...
                Object* cell = g.alloc(0, 1);
                Ctx::init_i64(cell, 0, 42);
                g.write_ptr(box1.get(), 0, cell);
                // ...then promote that master onward into the root
                // heap: cell -> M1 (middle) -> M2 (root).
                g.write_ptr(box0.get(), 0, Ctx::read_ptr(box1.get(), 0));
                CHECK(Object::chase(cell) ==
                      Object::chase(Ctx::read_ptr(box0.get(), 0)));
                // Collect every promoted-into heap (middle AND root)
                // while their owners sit blocked in fork2. M1 is stale
                // and dies; cell's forwarding word must be shortened
                // past the collected middle heap.
                g.collect_internal_now();
                // The chase through the original raw pointer still
                // lands on the (relocated) master...
                CHECK_EQ(Ctx::read_i64_mut(cell, 0), 42);
                CHECK(Object::chase(cell) ==
                      Object::chase(Ctx::read_ptr(box0.get(), 0)));
                // ...and writes through the stale pointer hit the same
                // master the root sees.
                Ctx::write_i64(cell, 0, 43);
                CHECK_EQ(
                    Ctx::read_i64_mut(Ctx::read_ptr(box0.get(), 0), 0), 43);
                return std::int64_t{0};
              },
              [](Ctx&) { return std::int64_t{0}; });
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box0.get(), 0), 0), 43);
    return 0;
  });
}

// Diamond + cycle promoted into the root heap, internal-collected, and
// read back after the join: sharing (one hub, not two) and the cycle
// must survive the relocation.
PARMEM_TEST(internal_gc_preserves_sharing_and_cycles) {
  HierRuntime rt(manual_internal());
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(2, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box](Ctx& c) {
          Object* hub = c.alloc(1, 1);
          Ctx::init_i64(hub, 0, 31337);
          Object* a = c.alloc(1, 0);
          Ctx::init_ptr(a, 0, hub);
          Object* b = c.alloc(1, 0);
          Ctx::init_ptr(b, 0, hub);
          c.write_ptr(hub, 0, a);  // cycle hub -> a -> hub
          c.write_ptr(box.get(), 0, a);
          c.write_ptr(box.get(), 1, b);
          c.collect_now();  // drop the stale originals in this leaf
          c.collect_internal_now();
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    Object* a = Ctx::read_ptr(box.get(), 0);
    Object* b = Ctx::read_ptr(box.get(), 1);
    Object* ha = Ctx::read_ptr(a, 0);
    Object* hb = Ctx::read_ptr(b, 0);
    CHECK(ha == hb);  // the hub was copied once, not per parent
    CHECK_EQ(Ctx::read_i64_mut(ha, 0), 31337);
    CHECK(Ctx::read_ptr(ha, 0) == a);  // cycle intact
    return 0;
  });
}

// Descendant enumeration over the live heap registry: at fork depth 2
// there are five heaps (root, two children, two grandchildren on the
// left child); exactly four descend from the root and exactly two from
// the left child. Deterministic with one worker (contexts register at
// fork2, whether or not the sibling branch has started).
PARMEM_TEST(internal_gc_descendant_enumeration) {
  HierRuntime rt(manual_internal(1));
  rt.run([&rt](Ctx& ctx) {
    Heap* root_heap = ctx.leaf_heap();
    HierRuntime::fork2(
        ctx, {},
        [root_heap, &rt](Ctx& c1) {
          Heap* mid_heap = c1.leaf_heap();
          CHECK(mid_heap->is_descendant_of(root_heap));
          HierRuntime::fork2(
              c1, {},
              [root_heap, mid_heap, &rt](Ctx& g) {
                std::vector<Heap*> heaps = rt.snapshot_heaps();
                CHECK_EQ(heaps.size(), 5u);
                std::size_t below_root = 0;
                std::size_t below_mid = 0;
                for (Heap* h : heaps) {
                  below_root += h->is_descendant_of(root_heap);
                  below_mid += h->is_descendant_of(mid_heap);
                }
                CHECK_EQ(below_root, 4u);
                CHECK_EQ(below_mid, 2u);
                CHECK(g.leaf_heap()->is_descendant_of(mid_heap));
                CHECK(g.leaf_heap()->is_descendant_of(root_heap));
                CHECK(!root_heap->is_descendant_of(g.leaf_heap()));
                return std::int64_t{0};
              },
              [](Ctx&) { return std::int64_t{0}; });
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    return 0;
  });
}

// Stats accounting: one forced internal collection, billed to the
// owning runtime as both a collection and an internal collection, with
// bytes-copied exactly the live set of the collected heap (the box the
// root task allocated plus the eight promoted masters).
PARMEM_TEST(internal_gc_stats_match_live_set) {
  constexpr std::uint32_t kCells = 8;
  HierRuntime rt(manual_internal());
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(kCells, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box, &rt](Ctx& c) {
          for (std::uint32_t i = 0; i < kCells; ++i) {
            Object* cell = c.alloc(0, 1);
            Ctx::init_i64(cell, 0, i + 1);
            c.write_ptr(box.get(), i, cell);
          }
          Stats before = rt.stats();
          c.collect_internal_now();
          Stats d = rt.stats() - before;
          CHECK_EQ(d.internal_gc_count, 1u);
          CHECK_EQ(d.gc_count, 1u);  // an internal collection IS a collection
          const std::uint64_t live =
              Object::size_bytes(kCells, 0) +
              kCells * Object::size_bytes(0, 1);
          CHECK_EQ(d.internal_gc_bytes, live);
          CHECK_EQ(d.gc_bytes_copied, live);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });
    for (std::uint32_t i = 0; i < kCells; ++i) {
      CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), i), 0), i + 1);
    }
    return 0;
  });
}

// The allocation-triggered policy: with a small gc_internal_threshold,
// promotions into the busy root heap ring the doorbell and the next
// safepoint (an allocation slow path or fork2 boundary) collects it --
// no manual collect_internal_now involved.
PARMEM_TEST(internal_gc_threshold_triggers_at_safepoints) {
  constexpr std::uint32_t kSlots = 64;
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.gc_internal_threshold = 1u << 10;
  HierRuntime rt(opts);
  rt.run([&rt](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(kSlots, 0));
    // Each branch owns a disjoint half of the sink's slots (racing the
    // same slot would be a language-level program race).
    auto branch = [box](std::uint32_t base) {
      return [box, base](Ctx& c) {
        for (std::uint32_t i = base; i < base + kSlots / 2; ++i) {
          Object* cell = c.alloc(0, 15);  // 128-byte promoted payloads
          Ctx::init_i64(cell, 0, i);
          c.write_ptr(box.get(), i, cell);
          // Churn allocations to reach the chunk-overflow safepoint.
          for (int j = 0; j < 64; ++j) {
            Object* junk = c.alloc(0, 15);
            Ctx::init_i64(junk, 0, j);
          }
        }
        return std::int64_t{0};
      };
    };
    HierRuntime::fork2(ctx, {box}, branch(0), branch(kSlots / 2));
    CHECK(rt.stats().internal_gc_count > 0);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(box.get(), 0), 0), 0);
    return 0;
  });
}

// The parallel-team variant must agree with the sequential one: same
// survivors, same values, internal collections still billed.
PARMEM_TEST(internal_gc_parallel_team_equivalent) {
  for (unsigned team : {0u, 3u}) {
    HierRuntime::Options opts = manual_internal();
    opts.gc_parallel_team = team;
    HierRuntime rt(opts);
    std::int64_t got = rt.run([&rt, team](Ctx& ctx) -> std::int64_t {
      RootFrame frame(ctx);
      constexpr std::uint32_t kCells = 32;
      Local box = frame.local(ctx.alloc(kCells, 0));
      auto [sum, ignored] = HierRuntime::fork2(
          ctx, {box},
          [box, &rt, team](Ctx& c) {
            for (std::uint32_t i = 0; i < kCells; ++i) {
              Object* cell = c.alloc(0, 1);
              Ctx::init_i64(cell, 0, 3 * i + 1);
              c.write_ptr(box.get(), i, cell);
            }
            std::uint64_t before = rt.stats().internal_gc_count;
            c.collect_internal_now();
            CHECK_EQ(rt.stats().internal_gc_count, before + 1);
            std::int64_t s = 0;
            for (std::uint32_t i = 0; i < kCells; ++i) {
              s += Ctx::read_i64_mut(Ctx::read_ptr(box.get(), i), 0);
            }
            return s;
          },
          [](Ctx&) { return std::int64_t{0}; });
      (void)ignored;
      return sum;
    });
    constexpr std::int64_t kWant = 32 * 1 + 3 * (31 * 32 / 2);
    CHECK_EQ(got, kWant);
  }
}

}  // namespace
}  // namespace parmem
