// Serving-harness tests (bench_common/serve_harness.hpp):
//
//   * fixed-count determinism: the same (seed, count) wave produces
//     the same commutative checksum on every runtime and at 1 vs 2
//     lanes -- the property that makes the serve driver's cross-
//     runtime verification meaningful;
//   * histogram merge exactness: per-lane latency shards sum to the
//     global histogram bucket-for-bucket (mirroring the ShardedStats
//     exactness test), so lock-free per-lane recording loses nothing;
//   * long-run accounting soaks: several request waves through ONE
//     rt.run() -- the long-running-server shape -- must reach a live-
//     bytes steady state on ALL FOUR runtimes (GC budgets kick in;
//     memory does not grow monotonically across waves). The local-heap
//     runtime needs its gc_global_threshold for this: without it the
//     global promotion sink grows every wave and is reclaimed only at
//     run() exit;
//   * scheduler quiescence: an idle pool must be near-silent. After a
//     serve burst, parked workers may time out their park backstop at
//     most once per kParkBackstop, so a sub-backstop idle window sees
//     ~zero timed-out wakeups (the old 10 ms backstop woke every
//     worker ~100x/s forever).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common/serve_harness.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

// ASan/TSan instrumentation inflates and retains RSS unpredictably, so
// the process-level RSS assertions are compiled out under them; the
// runtime-level live-bytes assertions always run.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PARMEM_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PARMEM_UNDER_SANITIZER 1
#endif
#endif

namespace {

using namespace parmem;
using namespace parmem::bench;

serve::ServeConfig tiny_serve_config() {
  serve::ServeConfig cfg;
  cfg.seed = 1234;
  cfg.session_elems = 240;
  cfg.dedup_slots = 128;
  cfg.reach_verts = 96;
  cfg.grain = 96;
  cfg.requests = 60;  // fixed-count mode
  cfg.sample_memory = false;
  return cfg;
}

template <class RT>
std::int64_t serve_checksum(unsigned workers, const serve::ServeConfig& cfg) {
  typename RT::Options o;
  o.workers = workers;
  RT rt(o);
  return serve::serve_run(rt, cfg).checksum;
}

PARMEM_TEST(serve_deterministic_across_runtimes_and_lanes) {
  const serve::ServeConfig cfg = tiny_serve_config();
  const std::int64_t ref = serve_checksum<SeqRuntime>(1, cfg);
  CHECK(ref != 0);
  for (unsigned w : {1u, 2u}) {
    CHECK_EQ(serve_checksum<StwRuntime>(w, cfg), ref);
    CHECK_EQ(serve_checksum<LhRuntime>(w, cfg), ref);
    CHECK_EQ(serve_checksum<HierRuntime>(w, cfg), ref);
  }
  // The hier serve row runs with a join threshold (the serve driver
  // sets one); the checksum must not depend on that knob.
  HierRuntime::Options o;
  o.workers = 2;
  o.gc_join_threshold = std::size_t{64} << 10;
  HierRuntime rt(o);
  CHECK_EQ(serve::serve_run(rt, cfg).checksum, ref);
}

PARMEM_TEST(serve_histogram_merge_is_exact) {
  // Four per-lane shards vs one reference fed the same stream: counts,
  // sums, maxima, every bucket, and every percentile must agree
  // exactly -- merging is element-wise addition, nothing is resampled.
  serve::LatencyHistogram shards[4];
  serve::LatencyHistogram reference;
  serve::LatencyHistogram merged;
  std::uint64_t x = 99;
  for (int i = 0; i < 40000; ++i) {
    x = wl::mix64(x);
    // Spread samples across six decades so every bucket regime (exact
    // small values, each log-linear band) is exercised.
    const std::uint64_t v = x % (std::uint64_t{1} << (4 + 6 * (i % 10)));
    shards[i % 4].record(v);
    reference.record(v);
  }
  for (const serve::LatencyHistogram& s : shards) {
    merged.merge(s);
  }
  CHECK_EQ(merged.count(), reference.count());
  CHECK_EQ(merged.max_ns(), reference.max_ns());
  CHECK(merged.mean_ns() == reference.mean_ns());
  for (unsigned b = 0; b < serve::LatencyHistogram::kBuckets; ++b) {
    CHECK_EQ(merged.bucket_count(b), reference.bucket_count(b));
  }
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    CHECK_EQ(merged.percentile_ns(q), reference.percentile_ns(q));
  }
}

PARMEM_TEST(serve_histogram_buckets_bound_values) {
  using H = serve::LatencyHistogram;
  std::uint64_t x = 7;
  for (int i = 0; i < 20000; ++i) {
    x = wl::mix64(x);
    const std::uint64_t v = x >> (x % 60);
    const unsigned b = H::bucket_of(v);
    CHECK(b < H::kBuckets);
    CHECK(H::bucket_upper(b) >= v);  // conservative upper bound
    if (b > 0) {
      CHECK(H::bucket_upper(b - 1) < v);  // tightest such bucket
    }
  }
  // A single sample's percentile is exactly its value when the value
  // is the histogram maximum (the clamp keeps bucket rounding from
  // overshooting the observed max).
  H h;
  h.record(12345);
  CHECK_EQ(h.percentile_ns(0.5), 12345u);
  CHECK_EQ(h.percentile_ns(1.0), 12345u);
}

// ---- long-run accounting soaks --------------------------------------------

constexpr int kSoakWaves = 6;

serve::ServeConfig soak_wave_config() {
  serve::ServeConfig cfg;
  cfg.seed = 77;
  cfg.session_elems = 512;
  cfg.dedup_slots = 256;
  cfg.reach_verts = 128;
  cfg.grain = 256;
  cfg.requests = 120;
  return cfg;
}

template <class RT>
void run_soak_waves(RT& rt, unsigned lanes, std::vector<std::size_t>* live,
                    std::vector<std::size_t>* rss) {
  const serve::ServeConfig cfg = soak_wave_config();
  rt.run([&](typename RT::Ctx& c) {
    for (int w = 0; w < kSoakWaves; ++w) {
      std::vector<serve::LaneStats> ls(lanes);
      serve::serve_wave_in_ctx<RT>(c, lanes, cfg, ls.data());
      live->push_back(rt.live_bytes());
      rss->push_back(serve::read_vm_rss_bytes());
    }
    return 0;
  });
}

void check_soak_steady_state(const std::vector<std::size_t>& live,
                             const std::vector<std::size_t>& rss) {
  // Live bytes at wave boundaries must reach a steady state: the
  // later waves may not keep growing past the early ones (collection
  // budgets bound garbage; chunk doubling settles). 2x + slack
  // tolerates budget-growth ramping without admitting a real leak,
  // which grows per wave forever.
  std::size_t early = 0;
  std::size_t late = 0;
  for (int w = 0; w < kSoakWaves; ++w) {
    std::size_t& half = w < kSoakWaves / 2 ? early : late;
    half = std::max(half, live[static_cast<std::size_t>(w)]);
  }
  CHECK(late <= early * 2 + (std::size_t{2} << 20));
#if !defined(PARMEM_UNDER_SANITIZER)
  // Process RSS between the mid and last wave boundary must be flat to
  // within allocator noise -- a monotonic climb here is exactly the
  // long-run accounting bug this soak exists to catch.
  CHECK(rss.back() <= rss[kSoakWaves / 2 - 1] + (std::size_t{12} << 20));
#else
  (void)rss;
#endif
}

PARMEM_TEST(serve_soak_seq_reaches_steady_state) {
  SeqRuntime::Options o;
  o.gc_min_budget = std::size_t{1} << 20;
  SeqRuntime rt(o);
  std::vector<std::size_t> live;
  std::vector<std::size_t> rss;
  run_soak_waves(rt, 1, &live, &rss);
  check_soak_steady_state(live, rss);
}

PARMEM_TEST(serve_soak_stw_reaches_steady_state) {
  StwRuntime::Options o;
  o.workers = 2;
  o.gc_min_budget = std::size_t{1} << 20;
  StwRuntime rt(o);
  std::vector<std::size_t> live;
  std::vector<std::size_t> rss;
  run_soak_waves(rt, 2, &live, &rss);
  check_soak_steady_state(live, rss);
}

PARMEM_TEST(serve_soak_hier_reaches_steady_state) {
  HierRuntime::Options o;
  o.workers = 2;
  o.gc_min_budget = std::size_t{1} << 20;
  // Without join collections the root heap would accrue each wave's
  // merged garbage forever (the root task itself never allocates, so
  // its own collection never triggers); the join threshold is the
  // serving knob that bounds it -- and its soundness is exactly what
  // gc_join_grandparent_publish_survives pins down.
  o.gc_join_threshold = std::size_t{256} << 10;
  HierRuntime rt(o);
  std::vector<std::size_t> live;
  std::vector<std::size_t> rss;
  run_soak_waves(rt, 2, &live, &rss);
  check_soak_steady_state(live, rss);
}

PARMEM_TEST(serve_soak_localheap_reaches_steady_state) {
  // The global heap used to be a pure allocation sink -- promoted
  // session state was reclaimed only at run() exit, so a long-running
  // server's footprint grew with every wave (the old soak pinned that
  // slope as the design). With gc_global_threshold set, the
  // stopped-world global collection bounds the sink the way the join
  // threshold bounds hier's root heap, so the local-heap runtime now
  // holds the SAME flatness contract as the other three.
  LhRuntime::Options o;
  o.workers = 2;
  o.gc_min_budget = std::size_t{1} << 20;
  o.gc_global_threshold = std::size_t{256} << 10;
  LhRuntime rt(o);
  std::vector<std::size_t> live;
  std::vector<std::size_t> rss;
  run_soak_waves(rt, 2, &live, &rss);
  check_soak_steady_state(live, rss);
  CHECK(rt.stats().global_gc_count > 0);  // flatness came from cycles
}

// ---- scheduler quiescence --------------------------------------------------

PARMEM_TEST(serve_quiescent_pool_has_near_zero_idle_wakeups) {
  HierRuntime::Options o;
  o.workers = 4;
  HierRuntime rt(o);
  serve::ServeConfig cfg = tiny_serve_config();
  cfg.requests = 200;
  cfg.lanes = 4;
  // Sample during the burst too: this is the suite's sanitizer
  // coverage for the RSS/live background sampler racing the workers.
  cfg.sample_memory = true;
  const serve::ServeResult burst = serve::serve_run(rt, cfg);
  CHECK(burst.peak_rss_bytes > 0);
  CHECK(burst.peak_rss_bytes >= burst.steady_rss_bytes);

  // Let every worker finish its spin/yield backoff and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::uint64_t base = rt.scheduler_idle_wakeups();

  // A window shorter than the park backstop: a freshly parked worker
  // cannot time out inside it, so the pool is near-silent. (The old
  // 10 ms backstop produced ~100 wakeups per worker per second here.)
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  const std::uint64_t quiet = rt.scheduler_idle_wakeups() - base;
  CHECK(quiet <= o.workers);

  // A window spanning multiple backstops: the counter is alive (each
  // parked worker times out once per kParkBackstop) but bounded by the
  // backstop cadence, not the old 100 Hz churn.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  const std::uint64_t longer = rt.scheduler_idle_wakeups() - base;
  CHECK(longer >= 1);
  CHECK(longer <= std::uint64_t{5} * o.workers);
}

}  // namespace
