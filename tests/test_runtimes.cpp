// Cross-runtime parity: every workload kernel must produce the same
// checksum on seq, stw, localheap, and hier, at 1 and 2 workers --
// the guarantee that makes fig10-fig13's comparisons meaningful.
// Plus regression tests for the behaviours that distinguish the
// runtimes (promotion volume, STW cycles, small starter chunks).
#include <cstdint>

#include "bench_common/workloads.hpp"
#include "core/hier_runtime.hpp"
#include "runtimes/localheap_runtime.hpp"
#include "runtimes/seq_runtime.hpp"
#include "runtimes/stw_runtime.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace parmem;
using namespace parmem::bench;

Sizes tiny_sizes() {
  Sizes z;
  z.scale = 0.001;
  z.seq_n = 6000;
  z.msort_n = 5000;
  z.msort_pure_n = 4000;
  z.sort_grain = 256;
  z.seq_grain = 512;
  z.fib_n = 14;
  z.dmm_n = 20;
  z.smvm_rows = 2000;
  z.usp_side = 12;
  return z;
}

template <class RT>
std::int64_t run_kernel(KernelOut (*fn)(RT&, const Sizes&), unsigned workers,
                        const Sizes& z) {
  typename RT::Options o;
  o.workers = workers;
  RT rt(o);
  // Twice on the same runtime: checksums must be stable across the
  // reuse of chunk pools / worker heaps that bench_common::measure does.
  std::int64_t first = fn(rt, z).checksum;
  CHECK_EQ(fn(rt, z).checksum, first);
  return first;
}

#define PARITY_TEST(name, fn)                                            \
  PARMEM_TEST(parity_##name) {                                           \
    const Sizes z = tiny_sizes();                                        \
    const std::int64_t ref = run_kernel<SeqRuntime>(&fn<SeqRuntime>, 1, z); \
    for (unsigned w : {1u, 2u}) {                                        \
      CHECK_EQ(run_kernel<StwRuntime>(&fn<StwRuntime>, w, z), ref);      \
      CHECK_EQ(run_kernel<LhRuntime>(&fn<LhRuntime>, w, z), ref);        \
      CHECK_EQ(run_kernel<HierRuntime>(&fn<HierRuntime>, w, z), ref);    \
    }                                                                    \
  }

PARITY_TEST(fib, bench_fib)
PARITY_TEST(tabulate, bench_tabulate)
PARITY_TEST(map, bench_map)
PARITY_TEST(reduce, bench_reduce)
PARITY_TEST(filter, bench_filter)
PARITY_TEST(msort_pure, bench_msort_pure)
PARITY_TEST(dmm, bench_dmm)
PARITY_TEST(smvm, bench_smvm)
PARITY_TEST(msort, bench_msort)
PARITY_TEST(usp, bench_usp)
PARITY_TEST(usp_tree, bench_usp_tree)
PARITY_TEST(multi_usp_tree, bench_multi_usp_tree)

// The Section 4.4 contrast, as a hard assertion: on a pure structured
// kernel the local-heap runtime promotes data on the order of the
// input, while hierarchical heaps promote nothing at all.
PARMEM_TEST(localheap_promotes_pure_kernels_hier_does_not) {
  const Sizes z = tiny_sizes();
  {
    LhRuntime rt(LhRuntime::Options{.workers = 2});
    (void)bench_map(rt, z);
    Stats s = rt.stats();
    CHECK(s.promotions > 0);
    // Input rope + output rope are each ~8 bytes/element plus headers.
    CHECK(s.promoted_bytes >
          static_cast<std::uint64_t>(z.seq_n) * 8);
  }
  {
    HierRuntime rt(HierRuntime::Options{.workers = 2});
    (void)bench_map(rt, z);
    Stats s = rt.stats();
    CHECK_EQ(s.promotions, 0u);
    CHECK_EQ(s.promoted_bytes, 0u);
  }
}

// usp-tree's visitation writes must entangle and promote under
// hierarchical heaps (one promotion per visited cell), while plain usp
// (scalar distances only) must not promote at all.
PARMEM_TEST(usp_tree_promotes_per_visitation) {
  Sizes z = tiny_sizes();
  z.usp_side = 10;
  HierRuntime rt(HierRuntime::Options{.workers = 2});
  (void)bench_usp(rt, z);
  CHECK_EQ(rt.stats().promotions, 0u);
  (void)bench_usp_tree(rt, z);
  // Every cell except those visited from the root task's own leaf
  // promotes; with workers the frontier is spread across tasks, so at
  // least half the cells must have promoted.
  CHECK(rt.stats().promotions >
        static_cast<std::uint64_t>(z.usp_side * z.usp_side) / 2);
}

// The stop-the-world runtime must actually run whole-world collections
// under parallel allocation pressure and still produce the right
// answer (exercises the safepoint/park protocol).
PARMEM_TEST(stw_collects_under_parallel_load) {
  Sizes z = tiny_sizes();
  StwRuntime::Options o;
  o.workers = 4;
  o.gc_min_budget = std::size_t{96} << 10;
  StwRuntime rt(o);
  const std::int64_t ref = [&] {
    SeqRuntime seq;
    return bench_msort_pure(seq, z).checksum;
  }();
  for (int i = 0; i < 3; ++i) {
    CHECK_EQ(bench_msort_pure(rt, z).checksum, ref);
  }
  CHECK(rt.stats().gc_count > 0);
}

// Satellite regression: leaf heaps start on a small chunk (doubling up
// to 256 KiB), so a fine-grained fork tree of ~1k tiny leaves peaks far
// below the ~256 MB it cost when every leaf pinned a full chunk.
PARMEM_TEST(leaf_chunks_start_small) {
  HierRuntime rt(HierRuntime::Options{.workers = 2});
  auto tree_sum = [](auto&& self, HierRuntime::Ctx& c,
                     int depth) -> std::int64_t {
    if (depth == 0) {
      Object* o = c.alloc(0, 1);
      HierRuntime::Ctx::init_i64(o, 0, 1);
      return HierRuntime::Ctx::read_i64_imm(o, 0);
    }
    auto [a, b] = HierRuntime::fork2(
        c, {},
        [&](HierRuntime::Ctx& cc) { return self(self, cc, depth - 1); },
        [&](HierRuntime::Ctx& cc) { return self(self, cc, depth - 1); });
    return a + b;
  };
  std::int64_t total = rt.run([&](HierRuntime::Ctx& c) {
    return tree_sum(tree_sum, c, 10);  // 1024 leaves, ~32 B live each
  });
  CHECK_EQ(total, 1024);
  // Before the fix this peaked at 1024 leaves x 256 KiB = ~256 MB.
  CHECK(rt.peak_bytes() < std::size_t{32} << 20);

  // And a trivial run must not pin a full 256 KiB chunk either.
  HierRuntime rt2;
  rt2.run([](HierRuntime::Ctx& c) {
    Object* o = c.alloc(0, 1);
    HierRuntime::Ctx::init_i64(o, 0, 7);
    return 0;
  });
  CHECK(rt2.peak_bytes() <= std::size_t{64} << 10);
}

}  // namespace
