// Promotion correctness: transitive closures (lists, diamonds, cycles)
// survive promotion with graph shape and identity intact, in both the
// coarse path-locking mode and the fine-grained CAS-claim mode, and
// concurrent promoters into the same ancestor heap do not corrupt it.
#include <cstdint>

#include "core/hier_runtime.hpp"
#include "tests/test_util.hpp"

namespace parmem {
namespace {

using Ctx = HierRuntime::Ctx;

// Builds a child-local list of n nodes [ptr, scalar] with values
// n-1..0 from head, publishes it into the parent box, and checks the
// promoted list from the parent after the join.
void promote_list_scenario(PromotionMode mode, int n) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.promotion = mode;
  HierRuntime rt(opts);
  rt.run([&rt, n](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box, n](Ctx& c) {
          RootFrame f(c);
          Local head = f.local(nullptr);
          for (int i = 0; i < n; ++i) {
            Object* node = c.alloc(1, 1);
            Ctx::init_i64(node, 0, i);
            node->set_ptr_relaxed(0, head.get());
            head.set(node);
          }
          c.write_ptr(box.get(), 0, head.get());  // promotes all n nodes
          // The stale head still reaches every element via barriers.
          std::int64_t expect = n - 1;
          for (Object* p = head.get(); p != nullptr; p = Ctx::read_ptr(p, 0)) {
            CHECK_EQ(c.read_i64_mut(p, 0), expect);
            --expect;
          }
          CHECK_EQ(expect, -1);
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });

    // Parent-side traversal of the promoted masters.
    std::int64_t expect = n - 1;
    for (Object* p = Ctx::read_ptr(box.get(), 0); p != nullptr;
         p = Ctx::read_ptr(p, 0)) {
      CHECK_EQ(heap_of(Object::chase(p))->depth(), 0u);
      CHECK_EQ(Ctx::read_i64_mut(p, 0), expect);
      --expect;
    }
    CHECK_EQ(expect, -1);
    Stats s = rt.stats();
    CHECK_EQ(s.promotions, 1u);
    CHECK_EQ(s.promoted_objects, static_cast<std::uint64_t>(n));
    return 0;
  });
}

PARMEM_TEST(promote_list_coarse) {
  promote_list_scenario(PromotionMode::kCoarseLocking, 100);
}

PARMEM_TEST(promote_list_fine) {
  promote_list_scenario(PromotionMode::kFineGrained, 100);
}

// Diamond sharing and a 2-cycle: promotion must keep identity (the
// shared node is copied once) and terminate on cycles.
void promote_shape_scenario(PromotionMode mode) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.promotion = mode;
  HierRuntime rt(opts);
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local box = frame.local(ctx.alloc(1, 0));
    HierRuntime::fork2(
        ctx, {box},
        [box](Ctx& c) {
          RootFrame f(c);
          // top -> {a, b}; a -> shared; b -> shared; shared <-> top (cycle)
          Local shared = f.local(c.alloc(1, 1));
          Ctx::init_i64(shared.get(), 0, 777);
          Local a = f.local(c.alloc(1, 0));
          Local b = f.local(c.alloc(1, 0));
          Local top = f.local(c.alloc(2, 0));
          c.write_ptr(a.get(), 0, shared.get());
          c.write_ptr(b.get(), 0, shared.get());
          c.write_ptr(top.get(), 0, a.get());
          c.write_ptr(top.get(), 1, b.get());
          c.write_ptr(shared.get(), 0, top.get());  // cycle back
          c.write_ptr(box.get(), 0, top.get());     // promote the lot
          return std::int64_t{0};
        },
        [](Ctx&) { return std::int64_t{0}; });

    Object* top = Ctx::read_ptr(box.get(), 0);
    Object* a = Ctx::read_ptr(top, 0);
    Object* b = Ctx::read_ptr(top, 1);
    Object* sa = Object::chase(Ctx::read_ptr(a, 0));
    Object* sb = Object::chase(Ctx::read_ptr(b, 0));
    CHECK(sa == sb);  // diamond: single master for the shared node
    CHECK_EQ(Ctx::read_i64_mut(sa, 0), 777);
    CHECK(Object::chase(Ctx::read_ptr(sa, 0)) == Object::chase(top));  // cycle
    // A write through one arm is visible through the other.
    Ctx::write_i64(sa, 0, 778);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(b, 0), 0), 778);
    return 0;
  });
}

PARMEM_TEST(promote_diamond_cycle_coarse) {
  promote_shape_scenario(PromotionMode::kCoarseLocking);
}

PARMEM_TEST(promote_diamond_cycle_fine) {
  promote_shape_scenario(PromotionMode::kFineGrained);
}

// Both children repeatedly promote fresh objects into their own slot
// of a shared parent array: exercises concurrent promotion into one
// ancestor heap under each protocol.
void concurrent_promotion_scenario(PromotionMode mode) {
  HierRuntime::Options opts;
  opts.workers = 2;
  opts.promotion = mode;
  HierRuntime rt(opts);
  constexpr int kIters = 20000;
  rt.run([](Ctx& ctx) {
    RootFrame frame(ctx);
    Local slots = frame.local(ctx.alloc(2, 0));
    auto hammer = [slots](Ctx& c, std::uint32_t slot) {
      std::int64_t last = -1;
      for (int i = 0; i < kIters; ++i) {
        Object* fresh = c.alloc(0, 1);
        Ctx::init_i64(fresh, 0, i);
        c.write_ptr(slots.get(), slot, fresh);
        last = Ctx::read_i64_mut(Ctx::read_ptr(slots.get(), slot), 0);
        CHECK_EQ(last, i);
      }
      return last;
    };
    auto [l, r] = HierRuntime::fork2(
        ctx, {slots}, [&hammer](Ctx& c) { return hammer(c, 0); },
        [&hammer](Ctx& c) { return hammer(c, 1); });
    CHECK_EQ(l, kIters - 1);
    CHECK_EQ(r, kIters - 1);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(slots.get(), 0), 0), kIters - 1);
    CHECK_EQ(Ctx::read_i64_mut(Ctx::read_ptr(slots.get(), 1), 0), kIters - 1);
    return 0;
  });
  Stats s = rt.stats();
  CHECK(s.promotions >= 2u * kIters);
  CHECK(s.promoted_bytes >= s.promoted_objects * Object::kHeaderBytes);
}

PARMEM_TEST(promote_concurrent_coarse) {
  concurrent_promotion_scenario(PromotionMode::kCoarseLocking);
}

PARMEM_TEST(promote_concurrent_fine) {
  concurrent_promotion_scenario(PromotionMode::kFineGrained);
}

}  // namespace
}  // namespace parmem
