#!/usr/bin/env bash
# Build (Release) and run the perf baseline:
#   micro_ops            -> BENCH_micro.json    (google-benchmark JSON, the
#                                                baseline later perf PRs diff)
#   fig08_op_costs       -> BENCH_fig08.txt     (the paper's Figure 8 matrix)
#   fig10_pure           -> BENCH_runtimes.json (per-runtime sections: seq /
#                                                stw / localheap / hier)
#   ablation_parallel_gc -> BENCH_parallel_gc.txt (team-scaling + join-time
#                                                policy tables)
#   ablation_internal_gc -> BENCH_internal_gc.txt (internal-heap collection
#                                                policy sweep + controls)
#   ablation_oom         -> BENCH_oom.txt        (bounded-memory degradation
#                                                curve + allocation-fault sweep)
#   serve                -> BENCH_serve.json     (steady-state serving: req/s,
#                                                latency percentiles, RSS +
#                                                fragmentation per runtime)
#   serve --runtime=localheap sweep
#                        -> BENCH_global_gc.txt  (localheap steady-state RSS
#                                                vs gc_global_threshold: off /
#                                                1 MB / 16 MB)
#
# Usage: scripts/run_bench.sh [profile] [--quick] [--bench=FILTER]
#   profile          observability mode: instead of the baselines above,
#                    record a flame graph (SVG + collapsed stacks), a
#                    Perfetto-loadable Chrome trace, and a stats JSON
#                    per runtime under $BUILD/observe/ using the serve
#                    driver (one process per runtime via --runtime=).
#   --quick          smoke mode: short min-time / tiny sizes, for CI.
#   --bench=FILTER   run only matching benchmarks. For micro_ops the
#                    filter is a google-benchmark regex; for fig10 it is
#                    a comma-separated kernel list (fib,map,...); the
#                    parallel_gc section is skipped under a filter.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

QUICK=0
FILTER=""
PROFILE=0
for arg in "$@"; do
  case "$arg" in
    profile) PROFILE=1 ;;
    --quick) QUICK=1 ;;
    --bench=*) FILTER="${arg#--bench=}" ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

# ---- profile mode -----------------------------------------------------------
# One serve-driver run per runtime with the in-runtime observability
# layer on: PARMEM_PROFILE (sampling profiler -> collapsed stacks ->
# flame-graph SVG), PARMEM_TRACE (GC pauses / gate stalls / promotions
# as Chrome trace-event JSON), PARMEM_STATS_JSON (counters + pause
# percentiles; diff two recordings with scripts/perf_diff.py).
if [ "$PROFILE" -eq 1 ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$(nproc)" --target serve >/dev/null
  OBS="$BUILD/observe"
  mkdir -p "$OBS"
  DURATION=$([ "$QUICK" -eq 1 ] && echo 1 || echo 5)
  for rt in seq stw localheap hier; do
    echo "== profiling runtime: $rt =="
    PARMEM_PROFILE="$OBS/$rt.folded" \
    PARMEM_TRACE="$OBS/$rt.trace.json" \
    PARMEM_STATS_JSON="$OBS/$rt.stats.jsonl" \
      "$BUILD/serve" --procs=2 --runtime="$rt" --duration="$DURATION"
    python3 "$ROOT/scripts/flamegraph.py" "$OBS/$rt.folded" \
      -o "$OBS/$rt.svg" --collapsed "$OBS/$rt.sym.folded"
  done
  echo
  echo "observability recordings written under $OBS/:"
  echo "  <rt>.svg          flame graph (phase-tagged; open in a browser)"
  echo "  <rt>.sym.folded   symbolized collapsed stacks (flamediff.py input)"
  echo "  <rt>.trace.json   Chrome trace (load in Perfetto / chrome://tracing)"
  echo "  <rt>.stats.jsonl  counters + pause percentiles (perf_diff.py input)"
  exit 0
fi

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j"$(nproc)" \
  --target micro_ops fig08_op_costs fig10_pure ablation_parallel_gc \
           ablation_internal_gc ablation_oom serve >/dev/null

# A filtered run is a subset: never let it overwrite the committed
# baselines that later perf PRs (and CI's asserts) diff against.
OUT_DIR="$ROOT"
if [ -n "$FILTER" ]; then
  OUT_DIR="$BUILD"
  echo "note: --bench filter active; writing results under $OUT_DIR" \
       "(committed baselines untouched)"
fi

BM_ARGS=(
  "--benchmark_out=$OUT_DIR/BENCH_micro.json"
  "--benchmark_out_format=json"
)
if [ "$QUICK" -eq 1 ]; then
  BM_ARGS+=("--benchmark_min_time=0.05")
else
  BM_ARGS+=("--benchmark_min_time=0.5")
fi
if [ -n "$FILTER" ]; then
  BM_ARGS+=("--benchmark_filter=$FILTER")
fi

"$BUILD/micro_ops" "${BM_ARGS[@]}"

FIG08_ARGS=()
if [ "$QUICK" -eq 1 ]; then
  FIG08_ARGS+=("--quick")
fi
"$BUILD/fig08_op_costs" "${FIG08_ARGS[@]+"${FIG08_ARGS[@]}"}" \
  | tee "$OUT_DIR/BENCH_fig08.txt"

# Per-runtime comparison baseline: one JSON section per runtime. Keep
# the sweep small even in full mode -- it covers four runtimes x two
# worker counts per kernel.
FIG10_ARGS=("--json=$OUT_DIR/BENCH_runtimes.json" "--procs=2")
if [ "$QUICK" -eq 1 ]; then
  FIG10_ARGS+=("--quick")
else
  FIG10_ARGS+=("--scale=0.2" "--runs=3")
fi
if [ -n "$FILTER" ]; then
  FIG10_ARGS+=("--bench=$FILTER")
fi
"$BUILD/fig10_pure" "${FIG10_ARGS[@]}"

# Parallel-GC baseline: Part 1 team scaling of one-heap evacuation,
# Part 2 join-time policy. Kernel-agnostic, so a --bench filter skips
# it rather than recording a half-empty table.
if [ -z "$FILTER" ]; then
  PGC_ARGS=("--procs=2")
  if [ "$QUICK" -eq 1 ]; then
    PGC_ARGS+=("--quick")
  else
    PGC_ARGS+=("--scale=0.25" "--runs=3")
  fi
  "$BUILD/ablation_parallel_gc" "${PGC_ARGS[@]}" \
    | tee "$OUT_DIR/BENCH_parallel_gc.txt"
fi

# Internal-heap collection baseline: policy sweep over the promoting
# imperative kernels plus the zero-promotion controls. Kernel set is
# fixed, so a --bench filter skips it like the parallel_gc section.
if [ -z "$FILTER" ]; then
  IGC_ARGS=("--procs=2")
  if [ "$QUICK" -eq 1 ]; then
    IGC_ARGS+=("--quick")
  else
    IGC_ARGS+=("--scale=0.25" "--runs=3")
  fi
  "$BUILD/ablation_internal_gc" "${IGC_ARGS[@]}" \
    | tee "$OUT_DIR/BENCH_internal_gc.txt"
fi

# Bounded-memory baseline: per-kernel degradation curve (budgets as
# fractions of each kernel's own peak) plus the allocation-fault sweep
# across all four runtimes. The driver exits nonzero on any silent
# corruption, so this section is also a correctness gate. Kernel set
# is fixed; a --bench filter skips it like the sections above.
if [ -z "$FILTER" ]; then
  OOM_ARGS=("--procs=2")
  if [ "$QUICK" -eq 1 ]; then
    OOM_ARGS+=("--quick")
  else
    OOM_ARGS+=("--scale=0.25" "--runs=3")
  fi
  "$BUILD/ablation_oom" "${OOM_ARGS[@]}" \
    | tee "$OUT_DIR/BENCH_oom.txt"
fi

# Steady-state serving baseline: fixed-count verify wave (checksums
# must agree across all four runtimes; the driver exits nonzero on a
# mismatch, so this is a correctness gate too) plus a fixed-duration
# measured wave per runtime. Kernel-agnostic; a --bench filter skips it.
if [ -z "$FILTER" ]; then
  SERVE_ARGS=("--procs=2" "--json=$OUT_DIR/BENCH_serve.json")
  if [ "$QUICK" -eq 1 ]; then
    SERVE_ARGS+=("--quick" "--duration=2")
  else
    SERVE_ARGS+=("--duration=5")
  fi
  "$BUILD/serve" "${SERVE_ARGS[@]}"
fi

# Global-collection baseline: the localheap runtime's stopped-world
# depth-0 cycle, swept over the promotion threshold on the serve
# workload (the design it exists for: bounding the promotion sink's
# steady-state footprint). 0 restores the pure paper-baseline sink,
# so the sweep records the leak-vs-pause trade directly.
if [ -z "$FILTER" ]; then
  GGC_ARGS=("--procs=2" "--runtime=localheap")
  if [ "$QUICK" -eq 1 ]; then
    GGC_ARGS+=("--quick" "--duration=1")
  else
    GGC_ARGS+=("--duration=3")
  fi
  {
    for thr in 0 1048576 16777216; do
      echo "== localheap serve, PARMEM_GC_GLOBAL_THRESHOLD=$thr =="
      PARMEM_GC_GLOBAL_THRESHOLD=$thr "$BUILD/serve" "${GGC_ARGS[@]}"
    done
  } | tee "$OUT_DIR/BENCH_global_gc.txt"
fi

echo
echo "results written: $OUT_DIR/BENCH_micro.json, $OUT_DIR/BENCH_fig08.txt," \
     "$OUT_DIR/BENCH_runtimes.json" \
     "${FILTER:+(parallel_gc + internal_gc + oom sections skipped under --bench)}"
if [ -z "$FILTER" ]; then
  echo "                 + $OUT_DIR/BENCH_parallel_gc.txt," \
       "$OUT_DIR/BENCH_internal_gc.txt, $OUT_DIR/BENCH_oom.txt," \
       "$OUT_DIR/BENCH_serve.json, $OUT_DIR/BENCH_global_gc.txt"
fi
