#!/usr/bin/env bash
# Build (Release) and run the perf baseline:
#   micro_ops      -> BENCH_micro.json   (google-benchmark JSON, the
#                                         baseline later perf PRs diff)
#   fig08_op_costs -> BENCH_fig08.txt    (the paper's Figure 8 matrix)
#
# Usage: scripts/run_bench.sh [--quick]
#   --quick   smoke mode: short min-time per benchmark, for CI.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target micro_ops fig08_op_costs >/dev/null

BM_ARGS=(
  "--benchmark_out=$ROOT/BENCH_micro.json"
  "--benchmark_out_format=json"
)
if [ "$QUICK" -eq 1 ]; then
  BM_ARGS+=("--benchmark_min_time=0.05")
else
  BM_ARGS+=("--benchmark_min_time=0.5")
fi

"$BUILD/micro_ops" "${BM_ARGS[@]}"

FIG08_ARGS=()
if [ "$QUICK" -eq 1 ]; then
  FIG08_ARGS+=("--quick")
fi
"$BUILD/fig08_op_costs" "${FIG08_ARGS[@]+"${FIG08_ARGS[@]}"}" \
  | tee "$ROOT/BENCH_fig08.txt"

echo
echo "baseline written: $ROOT/BENCH_micro.json, $ROOT/BENCH_fig08.txt"
