#!/usr/bin/env bash
# Build (Release) and run the perf baseline:
#   micro_ops            -> BENCH_micro.json    (google-benchmark JSON, the
#                                                baseline later perf PRs diff)
#   fig08_op_costs       -> BENCH_fig08.txt     (the paper's Figure 8 matrix)
#   fig10_pure           -> BENCH_runtimes.json (per-runtime sections: seq /
#                                                stw / localheap / hier)
#   ablation_parallel_gc -> BENCH_parallel_gc.txt (team-scaling + join-time
#                                                policy tables)
#   ablation_internal_gc -> BENCH_internal_gc.txt (internal-heap collection
#                                                policy sweep + controls)
#   ablation_oom         -> BENCH_oom.txt        (bounded-memory degradation
#                                                curve + allocation-fault sweep)
#   serve                -> BENCH_serve.json     (steady-state serving: req/s,
#                                                latency percentiles, RSS +
#                                                fragmentation per runtime)
#
# Usage: scripts/run_bench.sh [--quick] [--bench=FILTER]
#   --quick          smoke mode: short min-time / tiny sizes, for CI.
#   --bench=FILTER   run only matching benchmarks. For micro_ops the
#                    filter is a google-benchmark regex; for fig10 it is
#                    a comma-separated kernel list (fib,map,...); the
#                    parallel_gc section is skipped under a filter.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

QUICK=0
FILTER=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --bench=*) FILTER="${arg#--bench=}" ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j"$(nproc)" \
  --target micro_ops fig08_op_costs fig10_pure ablation_parallel_gc \
           ablation_internal_gc ablation_oom serve >/dev/null

# A filtered run is a subset: never let it overwrite the committed
# baselines that later perf PRs (and CI's asserts) diff against.
OUT_DIR="$ROOT"
if [ -n "$FILTER" ]; then
  OUT_DIR="$BUILD"
  echo "note: --bench filter active; writing results under $OUT_DIR" \
       "(committed baselines untouched)"
fi

BM_ARGS=(
  "--benchmark_out=$OUT_DIR/BENCH_micro.json"
  "--benchmark_out_format=json"
)
if [ "$QUICK" -eq 1 ]; then
  BM_ARGS+=("--benchmark_min_time=0.05")
else
  BM_ARGS+=("--benchmark_min_time=0.5")
fi
if [ -n "$FILTER" ]; then
  BM_ARGS+=("--benchmark_filter=$FILTER")
fi

"$BUILD/micro_ops" "${BM_ARGS[@]}"

FIG08_ARGS=()
if [ "$QUICK" -eq 1 ]; then
  FIG08_ARGS+=("--quick")
fi
"$BUILD/fig08_op_costs" "${FIG08_ARGS[@]+"${FIG08_ARGS[@]}"}" \
  | tee "$OUT_DIR/BENCH_fig08.txt"

# Per-runtime comparison baseline: one JSON section per runtime. Keep
# the sweep small even in full mode -- it covers four runtimes x two
# worker counts per kernel.
FIG10_ARGS=("--json=$OUT_DIR/BENCH_runtimes.json" "--procs=2")
if [ "$QUICK" -eq 1 ]; then
  FIG10_ARGS+=("--quick")
else
  FIG10_ARGS+=("--scale=0.2" "--runs=3")
fi
if [ -n "$FILTER" ]; then
  FIG10_ARGS+=("--bench=$FILTER")
fi
"$BUILD/fig10_pure" "${FIG10_ARGS[@]}"

# Parallel-GC baseline: Part 1 team scaling of one-heap evacuation,
# Part 2 join-time policy. Kernel-agnostic, so a --bench filter skips
# it rather than recording a half-empty table.
if [ -z "$FILTER" ]; then
  PGC_ARGS=("--procs=2")
  if [ "$QUICK" -eq 1 ]; then
    PGC_ARGS+=("--quick")
  else
    PGC_ARGS+=("--scale=0.25" "--runs=3")
  fi
  "$BUILD/ablation_parallel_gc" "${PGC_ARGS[@]}" \
    | tee "$OUT_DIR/BENCH_parallel_gc.txt"
fi

# Internal-heap collection baseline: policy sweep over the promoting
# imperative kernels plus the zero-promotion controls. Kernel set is
# fixed, so a --bench filter skips it like the parallel_gc section.
if [ -z "$FILTER" ]; then
  IGC_ARGS=("--procs=2")
  if [ "$QUICK" -eq 1 ]; then
    IGC_ARGS+=("--quick")
  else
    IGC_ARGS+=("--scale=0.25" "--runs=3")
  fi
  "$BUILD/ablation_internal_gc" "${IGC_ARGS[@]}" \
    | tee "$OUT_DIR/BENCH_internal_gc.txt"
fi

# Bounded-memory baseline: per-kernel degradation curve (budgets as
# fractions of each kernel's own peak) plus the allocation-fault sweep
# across all four runtimes. The driver exits nonzero on any silent
# corruption, so this section is also a correctness gate. Kernel set
# is fixed; a --bench filter skips it like the sections above.
if [ -z "$FILTER" ]; then
  OOM_ARGS=("--procs=2")
  if [ "$QUICK" -eq 1 ]; then
    OOM_ARGS+=("--quick")
  else
    OOM_ARGS+=("--scale=0.25" "--runs=3")
  fi
  "$BUILD/ablation_oom" "${OOM_ARGS[@]}" \
    | tee "$OUT_DIR/BENCH_oom.txt"
fi

# Steady-state serving baseline: fixed-count verify wave (checksums
# must agree across all four runtimes; the driver exits nonzero on a
# mismatch, so this is a correctness gate too) plus a fixed-duration
# measured wave per runtime. Kernel-agnostic; a --bench filter skips it.
if [ -z "$FILTER" ]; then
  SERVE_ARGS=("--procs=2" "--json=$OUT_DIR/BENCH_serve.json")
  if [ "$QUICK" -eq 1 ]; then
    SERVE_ARGS+=("--quick" "--duration=2")
  else
    SERVE_ARGS+=("--duration=5")
  fi
  "$BUILD/serve" "${SERVE_ARGS[@]}"
fi

echo
echo "results written: $OUT_DIR/BENCH_micro.json, $OUT_DIR/BENCH_fig08.txt," \
     "$OUT_DIR/BENCH_runtimes.json" \
     "${FILTER:+(parallel_gc + internal_gc + oom sections skipped under --bench)}"
if [ -z "$FILTER" ]; then
  echo "                 + $OUT_DIR/BENCH_parallel_gc.txt," \
       "$OUT_DIR/BENCH_internal_gc.txt, $OUT_DIR/BENCH_oom.txt," \
       "$OUT_DIR/BENCH_serve.json"
fi
