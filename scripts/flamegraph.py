#!/usr/bin/env python3
"""Render a parmem collapsed-stack profile as a flame-graph SVG.

Input is the collapsed output of core/profiler.hpp (PARMEM_PROFILE=...
or profiler::write_collapsed):

    # parmem-profile binary=/path/exe base=0x555555554000 samples=N drops=D
    <phase>;0x<root pc>;...;0x<leaf pc> <count>

Frames are raw addresses; this script symbolizes them offline with
addr2line against the binary/base recorded in the header (override with
--binary/--base), so static functions resolve even in PIE executables
where dladdr cannot see them. Stdlib-only; addr2line is optional --
without it the frames stay hex.

Usage:
    flamegraph.py prof.folded -o prof.svg
    flamegraph.py prof.folded --collapsed prof.sym.folded   # text only
"""

import argparse
import html
import shutil
import subprocess
import sys

PHASES = [
    "mutator", "leaf-GC", "join-GC", "internal-GC", "parallel-evac",
    "promotion", "steal", "park", "gate-stall",
]

# Phase frame colors: mutator warm, GC phases red-orange family,
# scheduler phases cool.
PHASE_COLOR = {
    "mutator": "#7aa457",
    "leaf-GC": "#d9534f",
    "join-GC": "#c9302c",
    "internal-GC": "#b02a27",
    "parallel-evac": "#e46a5f",
    "promotion": "#e0a030",
    "steal": "#5b84b1",
    "park": "#8a8a8a",
    "gate-stall": "#7d5ba6",
}


def parse_collapsed(path):
    """Return (meta dict, list of (frames_root_first, count))."""
    meta = {"binary": None, "base": 0, "samples": 0, "drops": 0}
    stacks = []
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                for tok in line[1:].split():
                    if tok.startswith("binary="):
                        meta["binary"] = tok[len("binary="):]
                    elif tok.startswith("base="):
                        meta["base"] = int(tok[len("base="):], 16)
                    elif tok.startswith("samples="):
                        meta["samples"] = int(tok[len("samples="):])
                    elif tok.startswith("drops="):
                        meta["drops"] = int(tok[len("drops="):])
                continue
            key, _, count = line.rpartition(" ")
            if not key:
                continue
            stacks.append((key.split(";"), int(count)))
    return meta, stacks


def symbolize(stacks, binary, base):
    """Map 0x... frames to function names via one addr2line batch."""
    if binary is None or shutil.which("addr2line") is None:
        return stacks
    addrs = sorted(
        {fr for frames, _ in stacks for fr in frames if fr.startswith("0x")})
    if not addrs:
        return stacks
    # addr2line wants file-relative addresses; the sampled values are
    # runtime addresses, so subtract the recorded load base. The -1
    # moves return addresses back inside the calling instruction.
    rel = [hex(max(int(a, 16) - base - 1, 0)) for a in addrs]
    try:
        out = subprocess.run(
            ["addr2line", "-f", "-C", "-e", binary] + rel,
            capture_output=True, text=True, timeout=120, check=True).stdout
    except (subprocess.SubprocessError, OSError):
        return stacks
    lines = out.splitlines()
    name_of = {}
    for i, a in enumerate(addrs):
        fn = lines[2 * i] if 2 * i < len(lines) else "??"
        name_of[a] = fn if fn and fn != "??" else a
    return [([name_of.get(fr, fr) for fr in frames], count)
            for frames, count in stacks]


class Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.children = {}


def build_trie(stacks):
    root = Node("all")
    for frames, count in stacks:
        root.value += count
        node = root
        for fr in frames:
            node = node.children.setdefault(fr, Node(fr))
            node.value += count
    return root


def frame_color(name, phase):
    if name in PHASE_COLOR:
        return PHASE_COLOR[name]
    base = PHASE_COLOR.get(phase, "#c07830")
    # Deterministic per-name lightness jitter so adjacent frames differ.
    h = sum(name.encode()) % 5
    return base + ("", "e0", "c8", "f0", "d4")[h] if h else base

def render_svg(root, out_path, title):
    width = 1200
    row_h = 16
    min_px = 0.4

    def depth_of(node):
        return 1 + max((depth_of(c) for c in node.children.values()),
                       default=0)

    height = depth_of(root) * row_h + 40
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<text x="{width/2}" y="16" text-anchor="middle" '
        f'font-size="14">{html.escape(title)}</text>',
    ]
    total = root.value or 1

    def emit(node, x, y, w, phase):
        if w < min_px:
            return
        pct = 100.0 * node.value / total
        label = f"{node.name} ({node.value} samples, {pct:.2f}%)"
        color = frame_color(node.name, phase)
        parts.append(
            f'<g><title>{html.escape(label)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_h - 1}"'
            f' fill="{color}" rx="1"/>')
        if w > 40:
            shown = node.name
            max_chars = max(int(w / 6.5) - 1, 1)
            if len(shown) > max_chars:
                shown = shown[:max_chars - 1] + ".."
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + row_h - 5}" '
                f'fill="#000000">{html.escape(shown)}</text>')
        parts.append('</g>')
        cx = x
        for child in sorted(node.children.values(), key=lambda n: -n.value):
            cw = w * child.value / node.value
            child_phase = child.name if child.name in PHASE_COLOR else phase
            emit(child, cx, y + row_h, cw, child_phase)
            cx += cw

    emit(root, 10, 28, width - 20, "mutator")
    parts.append("</svg>")
    with open(out_path, "w") as f:
        f.write("\n".join(parts) + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", help="collapsed profile from PARMEM_PROFILE")
    ap.add_argument("-o", "--svg", help="write flame-graph SVG here")
    ap.add_argument("--collapsed",
                    help="write symbolized collapsed stacks here")
    ap.add_argument("--binary", help="override the header's binary path")
    ap.add_argument("--base", help="override the header's load base (hex)")
    ap.add_argument("--no-symbolize", action="store_true",
                    help="keep raw hex frames")
    ap.add_argument("--title", default=None)
    args = ap.parse_args()

    meta, stacks = parse_collapsed(args.input)
    if not stacks:
        print(f"{args.input}: no samples", file=sys.stderr)
        return 1
    binary = args.binary or meta["binary"]
    base = int(args.base, 16) if args.base else meta["base"]
    if not args.no_symbolize:
        stacks = symbolize(stacks, binary, base)

    if args.collapsed:
        with open(args.collapsed, "w") as f:
            f.write(f"# parmem-profile binary={binary} base=0x{base:x} "
                    f"samples={meta['samples']} drops={meta['drops']}\n")
            for frames, count in sorted(stacks):
                f.write(";".join(frames) + f" {count}\n")

    if args.svg or not args.collapsed:
        out = args.svg or (args.input + ".svg")
        title = args.title or (
            f"parmem profile: {meta['samples']} samples"
            + (f", {meta['drops']} dropped" if meta["drops"] else ""))
        render_svg(build_trie(stacks), out, title)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
