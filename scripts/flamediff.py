#!/usr/bin/env python3
"""Attribute the difference between two parmem profile recordings.

Takes two collapsed-stack recordings (core/profiler.hpp output) --
baseline and current -- normalizes each to sample shares, and reports
where the time moved: per runtime phase first (the head segment of
every folded stack: mutator / leaf-GC / join-GC / internal-GC /
parallel-evac / promotion / steal / park / gate-stall), then per
function. This answers "the run got slower -- WHICH phase absorbed the
extra time?" without the two recordings needing equal durations or
sample counts.

Usage:
    flamediff.py baseline.folded current.folded [--top 15] [--raw]

Exit status is 0; pair with perf_diff.py for gating.
"""

import argparse
import sys
from collections import defaultdict

from flamegraph import parse_collapsed, symbolize

GC_PHASES = ("leaf-GC", "join-GC", "internal-GC", "parallel-evac")


def shares(stacks):
    """(phase->share, function->inclusive share, total samples)."""
    total = sum(c for _, c in stacks) or 1
    by_phase = defaultdict(int)
    by_func = defaultdict(int)
    for frames, count in stacks:
        by_phase[frames[0]] += count
        for fr in set(frames[1:]):  # inclusive, counted once per stack
            by_func[fr] += count
    return ({k: v / total for k, v in by_phase.items()},
            {k: v / total for k, v in by_func.items()},
            total)


def load(path, raw):
    meta, stacks = parse_collapsed(path)
    if not stacks:
        sys.exit(f"{path}: no samples")
    if not raw:
        stacks = symbolize(stacks, meta["binary"], meta["base"])
    return stacks


def fmt_pct(x):
    return f"{100.0 * x:6.2f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--top", type=int, default=15,
                    help="function rows to show (default 15)")
    ap.add_argument("--raw", action="store_true",
                    help="skip symbolization, diff hex frames")
    args = ap.parse_args()

    base_phase, base_func, base_n = shares(load(args.baseline, args.raw))
    cur_phase, cur_func, cur_n = shares(load(args.current, args.raw))

    print(f"baseline: {args.baseline} ({base_n} samples)")
    print(f"current:  {args.current} ({cur_n} samples)")
    print()
    print("phase attribution (share of samples):")
    print(f"  {'phase':<14} {'baseline':>9} {'current':>9} {'delta':>9}")
    deltas = {}
    for ph in sorted(set(base_phase) | set(cur_phase),
                     key=lambda p: -(cur_phase.get(p, 0.0)
                                     - base_phase.get(p, 0.0))):
        b = base_phase.get(ph, 0.0)
        c = cur_phase.get(ph, 0.0)
        deltas[ph] = c - b
        print(f"  {ph:<14} {fmt_pct(b)} {fmt_pct(c)} {100 * (c - b):+8.2f}pt")
    gc_delta = sum(deltas.get(p, 0.0) for p in GC_PHASES)
    gc_base = sum(base_phase.get(p, 0.0) for p in GC_PHASES)
    gc_cur = sum(cur_phase.get(p, 0.0) for p in GC_PHASES)
    print(f"  {'GC (all)':<14} {fmt_pct(gc_base)} {fmt_pct(gc_cur)} "
          f"{100 * gc_delta:+8.2f}pt")
    if deltas:
        top_phase = max(deltas, key=lambda p: abs(deltas[p]))
        if abs(gc_delta) >= abs(deltas[top_phase]) and top_phase in GC_PHASES:
            print(f"\nlargest shift: GC phases "
                  f"({100 * gc_delta:+.2f}pt, led by {top_phase})")
        else:
            print(f"\nlargest shift: {top_phase} "
                  f"({100 * deltas[top_phase]:+.2f}pt)")

    func_delta = {
        fn: cur_func.get(fn, 0.0) - base_func.get(fn, 0.0)
        for fn in set(base_func) | set(cur_func)
    }
    movers = sorted(func_delta.items(), key=lambda kv: -abs(kv[1]))
    movers = [m for m in movers if abs(m[1]) > 0.0005][:args.top]
    if movers:
        print("\ntop function shifts (inclusive share):")
        print(f"  {'delta':>9}  function")
        for fn, d in movers:
            print(f"  {100 * d:+8.2f}pt  {fn}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
