#!/usr/bin/env python3
"""Gate on performance regressions between two recordings.

Compares a baseline and a current file, both in either supported
format (auto-detected per file):

  * google-benchmark JSON (BENCH_micro.json style): rows matched by
    benchmark name; the metric is cpu_time (median across repetitions
    when several rows share a name, preferring explicit median
    aggregate rows).
  * parmem stats JSON-lines (PARMEM_STATS_JSON output): records
    matched by runtime name + occurrence order; gated metrics are
    counters.gc_ns, memory.peak_bytes, and each pause kind's
    sum_ns / p95_ns / p99_ns.

A row REGRESSES when current > baseline * (1 + threshold) and the
absolute growth also exceeds --abs-floor (so sub-nanosecond noise on
fast-path rows cannot trip the gate). Improvements are reported, never
fatal. Exit status: 0 clean, 1 regression(s), 2 usage/input error.

Usage:
    perf_diff.py baseline.json current.json [--threshold 0.05]
                 [--abs-floor 0.05] [--only REGEX]
"""

import argparse
import json
import re
import statistics
import sys


def load_records(path):
    """Parse either format into {row_name: numeric value}."""
    with open(path) as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "benchmarks" in doc:
        return bench_rows(doc), "google-benchmark"
    # JSON-lines of per-runtime stats objects.
    rows = {}
    seen = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        rt = rec.get("runtime", "?")
        idx = seen.get(rt, 0)
        seen[rt] = idx + 1
        tag = rt if idx == 0 else f"{rt}#{idx}"
        for name, val in stats_metrics(rec):
            rows[f"{tag}/{name}"] = val
    if not rows:
        raise ValueError(f"{path}: neither benchmark JSON nor stats JSONL")
    return rows, "stats-jsonl"


def bench_rows(doc):
    medians = {}
    samples = {}
    for b in doc["benchmarks"]:
        name = b.get("run_name", b["name"])
        if b.get("aggregate_name") == "median":
            medians[name] = float(b["cpu_time"])
        elif b.get("run_type", "iteration") == "iteration":
            samples.setdefault(name, []).append(float(b["cpu_time"]))
    rows = dict(medians)
    for name, vals in samples.items():
        rows.setdefault(name, statistics.median(vals))
    return rows


def stats_metrics(rec):
    yield "counters.gc_ns", float(rec["counters"]["gc_ns"])
    yield "memory.peak_bytes", float(rec["memory"]["peak_bytes"])
    for kind, hist in rec.get("pauses", {}).items():
        for metric in ("sum_ns", "p95_ns", "p99_ns"):
            yield f"pauses.{kind}.{metric}", float(hist[metric])


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.05,
                    help="relative regression gate (default 0.05 = 5%%)")
    ap.add_argument("--abs-floor", type=float, default=0.05,
                    help="ignore absolute growth below this (same unit "
                         "as the metric; default 0.05)")
    ap.add_argument("--only", metavar="REGEX",
                    help="gate only rows whose name matches")
    args = ap.parse_args()

    try:
        base, base_fmt = load_records(args.baseline)
        cur, cur_fmt = load_records(args.current)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"perf_diff: {e}", file=sys.stderr)
        return 2
    if base_fmt != cur_fmt:
        print(f"perf_diff: format mismatch ({base_fmt} vs {cur_fmt})",
              file=sys.stderr)
        return 2

    pat = re.compile(args.only) if args.only else None
    common = [n for n in base if n in cur
              and (pat is None or pat.search(n))]
    if not common:
        print("perf_diff: no comparable rows", file=sys.stderr)
        return 2
    missing = [n for n in base if n not in cur]
    if missing:
        print(f"note: {len(missing)} baseline row(s) absent from current: "
              + ", ".join(sorted(missing)[:5]))

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'row':<{width}} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(common):
        b, c = base[name], cur[name]
        delta = (c - b) / b if b else (0.0 if c == b else float("inf"))
        flag = ""
        if c > b * (1.0 + args.threshold) and (c - b) > args.abs_floor:
            flag = "  REGRESSION"
            regressions.append(name)
        elif b > c * (1.0 + args.threshold) and (b - c) > args.abs_floor:
            flag = "  improved"
        print(f"{name:<{width}} {b:12.3f} {c:12.3f} {100 * delta:+7.2f}%"
              f"{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{100 * args.threshold:.1f}%: " + ", ".join(regressions))
        return 1
    print(f"\nOK: {len(common)} row(s) within {100 * args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
