// Hierarchy-aware internal-heap collection: evacuate one INTERNAL heap
// (a heap whose owning task is blocked in fork2 while descendants run)
// in place, while every running task of its runtime is parked at a
// safepoint (core/sched.hpp's SafepointGate).
//
// What makes an internal heap collectable without copying anything
// else: references into heap H can only live in
//
//   1. H itself (the ordinary Cheney scan),
//   2. the root frames of H's owner and of every task below it,
//   3. pointer fields of objects in H's DESCENDANT heaps (pointers up
//      the tree are always legal, so any descendant object may point
//      into H), and
//   4. forwarding words of stale promotion copies in descendant heaps
//      whose master was promoted into H (a task holding the stale copy
//      reaches the master by chasing, so the edge is a root: it keeps
//      the master alive and must be rewritten when the master moves).
//
// Ancestors never point down (that is what promotion maintains) and a
// cousin can only reach shared data through a common ancestor of both
// tasks -- which is then an ancestor of H, not H. So the root set is
// "all frames + descendant fields + descendant forwarding words", and
// the existing collectors (core/gc_leaf.hpp sequentially,
// core/gc_parallel.hpp with a team) evacuate H against it unchanged:
// survivors keep their depth and heap, so the zero/one-check barrier
// invariants are untouched, and forwarding chains that used to pass
// through H are shortened past it before from-space is released.
//
// Scanning every descendant object treats descendants as fully live --
// conservative (descendant garbage retains what it references in H)
// but sound; descendant leaves have their own leaf collections.
//
// Allocation faults: both underlying collectors run in collector
// context (core/failpoint.hpp GcAllocScope), so heap budgets and
// injected faults never fire inside an internal collection -- which is
// what lets the emergency cascade run collections to RECOVER from a
// budget hit without tripping over it again.
#pragma once

#include <cassert>
#include <vector>

#include "core/gc_leaf.hpp"
#include "core/gc_parallel.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/stats.hpp"

namespace parmem {

namespace detail {

// Emit the extra root slots contributed by one descendant heap `h` of
// `target`: every non-null pointer field, plus the forwarding word of
// any stale copy whose master sits in target's (already detached and
// from_space-flagged) from-space. Must run inside the collector's
// root_iter callback -- after the flip, before tracing.
template <class SlotFn>
void internal_gc_scan_descendant(Heap* target, Heap* h, SlotFn&& fn) {
  heap_for_each_object(h, [&](Object* o) {
    std::uint32_t np = o->nptr();
    Object** fields = o->ptrs();
    for (std::uint32_t j = 0; j < np; ++j) {
      if (fields[j] != nullptr) {
        fn(&fields[j]);
      }
    }
    Object* f = o->fwd_relaxed();
    if (f != nullptr) {
      assert(f != Object::busy_sentinel() &&
             "promotion in flight during a stopped internal collection");
      Chunk* c = chunk_of(f);
      if (c->from_space &&
          c->heap.load(std::memory_order_relaxed) == target) {
        fn(o->fwd_slot());
      }
    }
  });
}

// The full internal-collection root enumeration; `all_heaps` is every
// live heap of the runtime (one per task context), `frame_roots(fn)`
// invokes fn(Object** slot) on every root-frame slot of every task
// (owner, descendants, and unrelated tasks alike -- unrelated frames
// cannot point into target, so scanning them is merely harmless).
template <class FrameRoots, class SlotFn>
void internal_gc_emit_roots(Heap* target, const std::vector<Heap*>& all_heaps,
                            FrameRoots&& frame_roots, SlotFn&& fn) {
  frame_roots(fn);
  for (Heap* h : all_heaps) {
    if (h != target && h->is_descendant_of(target)) {
      internal_gc_scan_descendant(target, h, fn);
    }
  }
}

}  // namespace detail

// Sequential hierarchy-aware collection of `target`. Caller guarantees
// the stopped-world precondition: target's owner is parked, blocked in
// fork2, or is the caller itself at a safepoint, and so is every other
// task of the runtime. Returns live bytes evacuated. Bills gc_count /
// gc_bytes_copied / gc_ns through the shared leaf collector AND the
// internal_gc_* pair.
template <class FrameRoots>
std::size_t internal_gc_collect(Heap* target,
                                const std::vector<Heap*>& all_heaps,
                                StatsCell* stats, FrameRoots&& frame_roots) {
  std::size_t live = leaf_gc_collect(target, stats, [&](auto&& fn) {
    detail::internal_gc_emit_roots(target, all_heaps, frame_roots, fn);
  });
  stats->internal_gc_count.fetch_add(1, std::memory_order_relaxed);
  stats->internal_gc_bytes.fetch_add(live, std::memory_order_relaxed);
  return live;
}

// Team variant: same roots, same survivors, copied by `team` workers
// (core/gc_parallel.hpp spawns them per collection). Caller bills the
// runtime stats from the outcome.
template <class FrameRoots>
core::ParallelGcOutcome internal_gc_collect_parallel(
    ChunkPool& pool, Heap* target, const std::vector<Heap*>& all_heaps,
    unsigned team, FrameRoots&& frame_roots) {
  core::ParallelCollector pc(pool, std::vector<Heap*>{target},
                             core::ParallelGcOptions{team, 128});
  return pc.collect([&](auto&& fn) {
    detail::internal_gc_emit_roots(target, all_heaps, frame_roots, fn);
  });
}

}  // namespace parmem
