// Promotion: when a pointer write would entangle the heap hierarchy
// (store a deeper object into a shallower one), the transitive closure
// of the written value that lives below the target heap is copied up
// into it. Old copies get forwarding pointers and stay readable, so a
// task holding a stale reference pays only a chase in its mutable
// barriers.
//
// Two synchronisation protocols:
//   kCoarseLocking -- the paper's design: lock the heap path from the
//       target down to the writer's leaf, copy, store, unlock.
//   kFineGrained   -- Section 5 future work: claim each object with a
//       CAS on its forwarding word (kBusy while mid-copy) and bump the
//       target heap under a spinlock; no path locks.
//
// Programs are expected to be race-free at the language level (the
// paper's deterministic fork-join setting); racing user mutation with
// a concurrent promotion of the same object is a program bug, exactly
// as racing two writes is.
#pragma once

#include <cstring>
#include <vector>

#include "core/failpoint.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace parmem {
namespace detail {

struct PromoteResult {
  Object* master;              // src after promotion
  std::uint64_t objects = 0;   // objects copied
  std::uint64_t bytes = 0;     // bytes copied
};

// Copy `m` (chased, strictly deeper than dst) into dst. Caller holds
// whatever lock the mode requires for dst's bump pointer.
inline Object* copy_object_into(Object* m, Heap* dst) {
  Object* n = dst->bump_alloc(m->nptr(), m->nscalar());
  std::size_t payload = 8u * (std::size_t{m->nptr()} + m->nscalar());
  std::memcpy(n->scalars(), m->scalars(), payload);
  return n;
}

// ---- coarse path-locking protocol -----------------------------------------

inline PromoteResult promote_coarse_locked(Object* src, Heap* dst) {
  PromoteResult res{nullptr};
  std::uint32_t target_depth = dst->depth();
  std::vector<Object*> scan;

  auto copy_one = [&](Object* m) {
    Object* n = copy_object_into(m, dst);
    m->set_fwd(n);  // release: publish before fields are fixed (Cheney)
    scan.push_back(n);
    res.objects += 1;
    res.bytes += n->size();
    return n;
  };

  Object* root = Object::chase(src);
  if (heap_of(root)->depth() > target_depth) {
    root = copy_one(root);
  }
  for (std::size_t i = 0; i < scan.size(); ++i) {
    Object* n = scan[i];
    std::uint32_t np = n->nptr();
    for (std::uint32_t j = 0; j < np; ++j) {
      Object* q = n->ptrs()[j];
      if (q == nullptr) {
        continue;
      }
      q = Object::chase(q);
      if (heap_of(q)->depth() > target_depth) {
        q = copy_one(q);
      }
      n->set_ptr_relaxed(j, q);
    }
  }
  res.master = root;
  return res;
}

// ---- fine-grained claim protocol ------------------------------------------

inline Object* claim_and_copy_fine(Object* m, Heap* dst,
                                   PromoteResult* res,
                                   std::vector<Object*>* scan,
                                   StatsCell* stats) {
  std::uint32_t target_depth = dst->depth();
  for (;;) {
    m = Object::chase(m);  // spins past other claimers
    if (heap_of(m)->depth() <= target_depth) {
      return m;  // someone (possibly us, earlier) already lifted it enough
    }
    // Pre-reserve dst space BEFORE claiming: from claim_fwd to set_fwd
    // nothing may throw, or the kBusy sentinel would strand and hang
    // every chaser. reserve() is the only step that can fail (true OS
    // OOM -- budget and injected faults never fire inside the copy
    // window), and here the object is still unclaimed and chaseable.
    // The claim itself happens under the remote lock too; that is
    // safe because claimers never spin on a forwarding word while
    // holding the lock (chase() runs before acquisition), so a
    // teammate's kBusy cannot deadlock against us.
    std::size_t need = Object::size_bytes(m->nptr(), m->nscalar());
    dst->remote_lock().lock();
    try {
      dst->reserve(need);
    } catch (...) {
      dst->remote_lock().unlock();
      throw;
    }
    if (!m->claim_fwd()) {
      dst->remote_lock().unlock();
      stats->promo_claim_conflicts.fetch_add(1, std::memory_order_relaxed);
      continue;  // lost the race; chase the winner's forwarding pointer
    }
    Object* n = copy_object_into(m, dst);  // bump within the reserve
    dst->remote_lock().unlock();
    m->set_fwd(n);  // replaces kBusy; releases waiting chasers
    scan->push_back(n);
    res->objects += 1;
    res->bytes += n->size();
    return n;
  }
}

inline PromoteResult promote_fine(Object* src, Heap* dst, StatsCell* stats) {
  PromoteResult res{nullptr};
  std::vector<Object*> scan;
  res.master = claim_and_copy_fine(src, dst, &res, &scan, stats);
  for (std::size_t i = 0; i < scan.size(); ++i) {
    Object* n = scan[i];
    std::uint32_t np = n->nptr();
    for (std::uint32_t j = 0; j < np; ++j) {
      Object* q = n->ptrs()[j];
      if (q == nullptr) {
        continue;
      }
      q = claim_and_copy_fine(q, dst, &res, &scan, stats);
      n->set_ptr(j, q);
    }
  }
  return res;
}

// Lock the heap path from `dst` (exclusive top) down to `leaf`,
// shallow-first to keep a global acquisition order along tree paths.
class PathLockGuard {
 public:
  PathLockGuard(Heap* leaf, Heap* dst) {
    for (Heap* h = leaf; h != nullptr; h = h->parent()) {
      heaps_.push_back(h);
      if (h == dst) {
        break;
      }
    }
    for (std::size_t i = heaps_.size(); i-- > 0;) {
      heaps_[i]->path_lock().lock();
    }
  }
  ~PathLockGuard() {
    for (Heap* h : heaps_) {
      h->path_lock().unlock();
    }
  }
  PathLockGuard(const PathLockGuard&) = delete;
  PathLockGuard& operator=(const PathLockGuard&) = delete;

 private:
  std::vector<Heap*> heaps_;  // leaf-first (deepest to shallowest)
};

}  // namespace detail

// Promote the closure of `v` into heap_of(dst_obj) and then perform
// the entangling store dst_obj.ptr[idx] = v, all under the protocol
// selected by `mode`. `leaf` is the writing task's leaf heap.
inline void promote_and_store(Object* dst_obj, std::uint32_t idx, Object* v,
                              Heap* leaf, PromotionMode mode,
                              StatsCell* stats) {
  // The injected promote_copy fault fires HERE, before any mutation:
  // nothing is claimed or copied yet, so the throw unwinds cleanly to
  // the store that asked for the promotion.
  // (gc_exempt first: an exempt caller must not consume a scheduled hit.)
  if (__builtin_expect(!failpoint::gc_exempt() &&
                           failpoint::triggered(failpoint::Site::kPromoteCopy),
                       0)) {
    ChunkPool* pool = leaf->pool();
    throw OutOfMemory("promote_copy", 0, pool->live_bytes(), pool->budget(),
                      pool->peak_bytes());
  }
  // Past this point the copy loop is a non-unwindable window, like a
  // collection: once the first set_fwd publishes, the partial copies
  // are reachable through forwarding words, and abandoning them would
  // leave ancestor objects with un-lifted (deeper-heap) fields for a
  // later leaf GC to dangle. So budget checks and injected faults are
  // suppressed for the copies themselves -- a budget overshoot here is
  // bounded by one promoted closure and is charged at the mutator's
  // next chunk allocation instead.
  failpoint::GcAllocScope copy_scope;
  phase::PhaseScope promo_scope(phase::Phase::kPromotion);
  // Promotions can be hot (every entangling write); even the clock
  // reads are skipped unless trace rings are on.
  const bool traced = trace::ring_enabled();
  const std::uint64_t trace_t0 = traced ? trace::now_ns() : 0;
  stats->promotions.fetch_add(1, std::memory_order_relaxed);
  detail::PromoteResult res{nullptr};
  if (mode == PromotionMode::kCoarseLocking) {
    // The destination object may itself be mid-promotion by a cousin;
    // re-chase under the locks and restart if it moved above our lock
    // span.
    for (;;) {
      Heap* dst_heap = heap_of(dst_obj = Object::chase(dst_obj));
      detail::PathLockGuard guard(leaf, dst_heap);
      Object* d = Object::chase(dst_obj);
      if (heap_of(d) != dst_heap) {
        continue;  // moved while we were acquiring; retry at new depth
      }
      res = detail::promote_coarse_locked(v, dst_heap);
      d->set_ptr(idx, res.master);
      // Feed the internal-collection policy: this heap just grew by
      // remotely promoted bytes its owner never allocated.
      dst_heap->note_remote_bytes(res.bytes);
      break;
    }
  } else {
    Heap* dst_heap = heap_of(Object::chase(dst_obj));
    res = detail::promote_fine(v, dst_heap, stats);
    Object::chase(dst_obj)->set_ptr(idx, res.master);
    dst_heap->note_remote_bytes(res.bytes);
  }
  stats->promoted_objects.fetch_add(res.objects, std::memory_order_relaxed);
  stats->promoted_bytes.fetch_add(res.bytes, std::memory_order_relaxed);
  if (traced) {
    trace::record_promotion(trace_t0, trace::now_ns() - trace_t0, res.bytes);
  }
}

}  // namespace parmem
