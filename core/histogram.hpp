// Shared log-bucketed histogram (HDR-style log-linear): values below
// kSub are exact; above, each power of two is split into kSub linear
// subbuckets, bounding the relative quantization error by 1/kSub
// (6.25 %). Buckets are plain uint64 counts, so merging shards is
// element-wise addition -- exact, like ShardedStats::snapshot().
//
// Grown out of the serve harness's per-lane latency histogram (PR 8);
// now also the GC-pause / gate-stall / promotion histograms of
// core/trace.hpp. Writers are single-threaded (one lane, one worker
// slot); merge() folds shards on a quiesced reader.
#pragma once

#include <cstdint>

namespace parmem {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSub = 1u << kSubBits;  // 16 subbuckets
  static constexpr unsigned kBuckets = (64 - kSubBits + 1) * kSub;

  static unsigned bucket_of(std::uint64_t v) {
    if (v < kSub) {
      return static_cast<unsigned>(v);
    }
    const unsigned lg = 63u - static_cast<unsigned>(__builtin_clzll(v));
    return (lg - (kSubBits - 1)) * kSub +
           static_cast<unsigned>((v >> (lg - kSubBits)) & (kSub - 1));
  }

  // Inclusive upper bound of a bucket's value range (percentiles
  // report this, i.e. they round conservatively upward).
  static std::uint64_t bucket_upper(unsigned idx) {
    if (idx < kSub) {
      return idx;
    }
    const unsigned b = idx / kSub;
    const unsigned sub = idx % kSub;
    const std::uint64_t scale = std::uint64_t{1} << (b - 1);
    return static_cast<std::uint64_t>(kSub + sub + 1) * scale - 1;
  }

  void record(std::uint64_t ns) {
    ++counts_[bucket_of(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns > max_ns_) {
      max_ns_ = ns;
    }
  }

  void merge(const Histogram& o) {
    for (unsigned i = 0; i < kBuckets; ++i) {
      counts_[i] += o.counts_[i];
    }
    count_ += o.count_;
    sum_ns_ += o.sum_ns_;
    if (o.max_ns_ > max_ns_) {
      max_ns_ = o.max_ns_;
    }
  }

  void reset() { *this = Histogram{}; }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  std::uint64_t sum_ns() const { return sum_ns_; }
  std::uint64_t bucket_count(unsigned idx) const { return counts_[idx]; }
  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }

  // Value at quantile q in [0, 1]: the upper bound of the bucket
  // holding the ceil(q * count)-th smallest sample, clamped to the
  // exactly-tracked maximum.
  std::uint64_t percentile_ns(double q) const {
    if (count_ == 0) {
      return 0;
    }
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_) + 0.9999999);
    if (rank < 1) {
      rank = 1;
    }
    if (rank > count_) {
      rank = count_;
    }
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) {
        const std::uint64_t v = bucket_upper(i);
        return v < max_ns_ ? v : max_ns_;
      }
    }
    return max_ns_;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace parmem
