// Team-based parallel heap evacuation -- the collection completion the
// paper's Section 5 plans ("each such collection is sequential" is
// team=1 here). A team of workers evacuates the live graph of one or
// more quiesced heaps into fresh to-space chunks:
//
//   - ownership claims: a worker claims an object by CASing its
//     forwarding word null -> kBusy (core/promote.hpp's fine-grained
//     encoding, reused verbatim), copies it, then publishes the real
//     forwarding pointer. Losers chase the winner's pointer; every
//     lost CAS is counted in claim_conflicts.
//   - grey packets: copied objects are batched into fixed-size packets
//     on per-worker deques; a worker out of local packets steals the
//     oldest packet from a teammate (FIFO end, like core/sched.hpp).
//   - per-worker to-space buffers: each worker copies into its own
//     Heap, so evacuation never contends on a shared bump pointer; the
//     buffers are spliced into the target heap (Heap::merge_from) when
//     the team terminates.
//
// The caller guarantees the collected heaps are quiesced: no mutator
// reads, writes, or allocates in them for the duration (a stopped
// world under StwRuntime; the just-merged two-sibling subtree at a
// HierRuntime join; a standalone bench heap). Concurrent activity in
// OTHER heaps is fine -- tracing stops at any chunk not owned by a
// collected heap, exactly like the leaf collector, and forwarding
// words of foreign objects are only ever chased, never claimed.
//
// collect() is the one-call surface (it spawns its own team threads).
// The split prepare()/run_worker()/finish() surface lets a runtime
// supply an existing team instead -- StwRuntime recruits its parked
// mutators as workers, so a stop-the-world pause puts every stopped
// mutator to work.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "core/deque.hpp"
#include "core/failpoint.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"

namespace parmem {

// A standalone heap handle for code that builds and collects heaps
// outside any runtime Ctx (bench drivers, tests): raw allocation over
// the chunk machinery plus wholesale chunk-list replacement.
class HeapRecord {
 public:
  HeapRecord(const HeapRecord&) = delete;
  HeapRecord& operator=(const HeapRecord&) = delete;

  // Reserve `bytes` (an object_bytes() footprint) by pointer bump; the
  // caller places the object with init_object(). Single-owner: no
  // locking, like a leaf heap.
  void* allocate_raw(std::size_t bytes) { return heap_.bump_raw(bytes); }

  // Replace this record's chunk list wholesale, releasing the current
  // one to the pool. The new list must be fully retired (obj_end set,
  // `tail` terminal); (nullptr, nullptr, 0) empties the record, e.g.
  // between benchmark repetitions.
  void install_chunk_list(Chunk* head, Chunk* tail,
                          std::size_t allocated_bytes) {
    heap_.release_all_chunks();
    if (head != nullptr) {
      heap_.adopt_chunks(head, tail, allocated_bytes);
    }
  }

  Heap& heap() { return heap_; }
  const Heap& heap() const { return heap_; }
  std::size_t allocated_bytes() const { return heap_.allocated_bytes(); }

 private:
  friend class HeapArena;
  HeapRecord(Heap* parent, std::uint32_t depth, ChunkPool* pool)
      : heap_(parent, depth, pool) {}

  Heap heap_;
};

// Owns a family of HeapRecords over one ChunkPool; records live until
// the arena dies (their chunks go back to the pool then).
class HeapArena {
 public:
  explicit HeapArena(ChunkPool& pool) : pool_(&pool) {}
  HeapArena(const HeapArena&) = delete;
  HeapArena& operator=(const HeapArena&) = delete;

  HeapRecord* create(HeapRecord* parent, std::uint32_t depth) {
    records_.push_back(std::unique_ptr<HeapRecord>(new HeapRecord(
        parent != nullptr ? &parent->heap_ : nullptr, depth, pool_)));
    return records_.back().get();
  }

 private:
  ChunkPool* pool_;
  std::vector<std::unique_ptr<HeapRecord>> records_;
};

namespace core {

struct ParallelGcOptions {
  unsigned team_size = 1;            // workers evacuating in parallel
  std::size_t packet_objects = 128;  // grey objects per work packet
};

struct ParallelGcWorkerStats {
  std::uint64_t objects_copied = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t packets_drained = 0;
  std::uint64_t packets_stolen = 0;
  std::uint64_t claim_conflicts = 0;  // lost forwarding-word CAS claims
  std::uint64_t busy_ns = 0;  // this worker's run_worker() span (its copy
                              // work plus termination idling, but not
                              // thread spawn/join or recruitment latency)
};

struct ParallelGcOutcome {
  ParallelGcWorkerStats totals;                  // summed over the team
  std::vector<ParallelGcWorkerStats> per_worker;
  std::uint64_t claim_conflicts = 0;  // == totals.claim_conflicts
  std::uint64_t wall_ns = 0;          // prepare() .. finish() wall time
};

class ParallelCollector {
  struct Worker;  // defined below; named in member signatures above it

 public:
  ParallelCollector(ChunkPool& pool, std::vector<Heap*> heaps,
                    ParallelGcOptions opts)
      : pool_(&pool), heaps_(std::move(heaps)), opts_(opts) {
    if (opts_.team_size == 0) {
      opts_.team_size = 1;
    }
    if (opts_.packet_objects < 8) {
      opts_.packet_objects = 8;
    }
    if (heaps_.empty()) {
      throw std::invalid_argument("ParallelCollector needs >= 1 heap");
    }
  }

  ParallelCollector(ChunkPool& pool, const std::vector<HeapRecord*>& records,
                    ParallelGcOptions opts)
      : ParallelCollector(pool, heaps_of(records), opts) {}

  ParallelCollector(const ParallelCollector&) = delete;
  ParallelCollector& operator=(const ParallelCollector&) = delete;

  ~ParallelCollector() {
    // Abandoned mid-cycle (exception before finish()): put the
    // detached from-space chunks back so nothing leaks.
    release_from_space();
    for (void* p : packet_mem_) {
      std::free(p);
    }
  }

  unsigned team_size() const { return opts_.team_size; }

  // One-call surface: evacuate with a self-spawned team. root_iter(fn)
  // must call fn(Object** slot) for every root slot of the collected
  // heaps; slots are rewritten in place when their referent moves.
  template <class RootIter>
  ParallelGcOutcome collect(RootIter&& root_iter) {
    prepare(root_iter);
    std::vector<std::thread> team;
    team.reserve(opts_.team_size - 1);
    for (unsigned i = 1; i < opts_.team_size; ++i) {
      team.emplace_back([this, i] { run_worker(i); });
    }
    run_worker(0);
    for (std::thread& t : team) {
      t.join();
    }
    return finish();  // rethrows any worker's allocation failure
  }

  // Split surface for runtimes that bring their own team: the driver
  // calls prepare(), then EXACTLY team_size workers (the driver plus
  // recruits) each call run_worker with a distinct slot in
  // [0, team_size); finish() may be called once the driver's own
  // run_worker returns (it waits for stragglers).
  template <class RootIter>
  void prepare(RootIter&& root_iter) {
    t0_ = std::chrono::steady_clock::now();
    for (Heap* h : heaps_) {
      Chunk* c = h->detach_chunks();
      while (c != nullptr) {
        Chunk* next = c->next;
        c->from_space = true;  // c->heap stays: it is the ownership test
        c->next = from_;
        from_ = c;
        c = next;
      }
    }
    roots_.clear();
    root_iter([this](Object** slot) { roots_.push_back(slot); });
    workers_.clear();
    for (unsigned i = 0; i < opts_.team_size; ++i) {
      workers_.push_back(std::make_unique<Worker>());
      Worker& w = *workers_.back();
      w.index = i;
      w.to = std::make_unique<Heap>(nullptr, heaps_[0]->depth(), pool_);
    }
    state_.store(0, std::memory_order_relaxed);
    root_cursor_.store(0, std::memory_order_relaxed);
    exited_.store(0, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_relaxed);
    abort_err_ = nullptr;
  }

  // Never throws: an allocation failure mid-evacuation (only possible
  // when the OS itself refuses memory -- the budget and injected
  // faults are exempt in collector context) aborts the whole team via
  // aborted_, and finish() rethrows it. That guarantees no hang and no
  // stranded kBusy word even then; the collected heaps are lost, so
  // the caller must treat the rethrow as fatal for the computation.
  void run_worker(unsigned slot) {
    failpoint::GcAllocScope gc_scope;
    phase::PhaseScope evac_scope(phase::Phase::kParallelEvac);
    Worker& ws = *workers_[slot];
    auto w0 = std::chrono::steady_clock::now();
    try {
      run_worker_impl(ws);
    } catch (...) {
      {
        std::lock_guard<SpinLock> g(abort_lock_);
        if (!abort_err_) {
          abort_err_ = std::current_exception();
        }
      }
      aborted_.store(true, std::memory_order_release);
    }
    ws.stats.busy_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - w0)
            .count());
    exited_.fetch_add(1, std::memory_order_release);
  }

 private:
  void run_worker_impl(Worker& ws) {
    // Phase 1: forward the roots, batch-claimed off a shared cursor.
    // Claims make duplicate and cross-worker aliases idempotent.
    const std::size_t nroots = roots_.size();
    for (;;) {
      if (aborted_.load(std::memory_order_acquire)) {
        return;
      }
      std::size_t i = root_cursor_.fetch_add(kRootBatch,
                                             std::memory_order_relaxed);
      if (i >= nroots) {
        break;
      }
      std::size_t e = i + kRootBatch < nroots ? i + kRootBatch : nroots;
      for (; i < e; ++i) {
        Object** slot_p = roots_[i];
        Object* cur =
            std::atomic_ref<Object*>(*slot_p).load(std::memory_order_relaxed);
        if (cur == nullptr) {
          continue;
        }
        Object* fwd = forward(ws, cur);
        if (fwd != cur) {
          std::atomic_ref<Object*>(*slot_p).store(fwd,
                                                  std::memory_order_relaxed);
        }
      }
    }
    // Phase 2: drain grey packets until the whole team is idle with
    // nothing queued. A worker only goes idle with empty hands (its
    // partial open packet drained, its private overflow list empty),
    // so idle==team && queued==0 is a stable no-work-exists state.
    for (;;) {
      if (aborted_.load(std::memory_order_acquire)) {
        return;
      }
      if (!ws.overflow.empty()) {
        // Degraded mode (packet allocation failed): scan one object
        // off the private overflow list. Worker-private, so it needs
        // no queued accounting and cannot be stolen.
        Object* o = ws.overflow.back();
        ws.overflow.pop_back();
        scan_object(ws, o);
        continue;
      }
      Packet* p = pop_local(ws);
      if (p == nullptr && ws.open != nullptr && ws.open->count > 0) {
        p = ws.open;
        ws.open = nullptr;
      }
      if (p == nullptr) {
        p = steal(ws);
      }
      if (p != nullptr) {
        drain(ws, p);
        continue;
      }
      std::uint64_t s =
          state_.fetch_add(kIdleOne, std::memory_order_acq_rel) + kIdleOne;
      bool done = false;
      for (unsigned spins = 0;; ++spins) {
        if (aborted_.load(std::memory_order_acquire)) {
          done = true;  // a teammate failed: terminate without the quorum
          break;
        }
        if (queued_of(s) > 0) {
          state_.fetch_sub(kIdleOne, std::memory_order_acq_rel);
          break;  // visible work: rejoin the loop
        }
        if (idle_of(s) == opts_.team_size) {
          done = true;  // every worker idle, nothing queued: terminate
          break;
        }
        if (spins < 64) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
        s = state_.load(std::memory_order_acquire);
      }
      if (done) {
        break;
      }
    }
  }

 public:

  ParallelGcOutcome finish() {
    // Stragglers are past their last packet; still escalate to yield
    // in case one was preempted right before its exited_ store.
    for (unsigned spins = 0;
         exited_.load(std::memory_order_acquire) != opts_.team_size;
         ++spins) {
      if (spins < 64) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    if (aborted_.load(std::memory_order_acquire)) {
      // A worker failed (OS-level allocation failure in collector
      // context). The collected heaps are not reconstructible; keep
      // every to-space buffer reachable by merging it into the target
      // (roots already rewritten point there), put from-space back so
      // nothing leaks, and surface the failure to the caller.
      Heap* target = heaps_.front();
      for (auto& w : workers_) {
        target->merge_from(*w->to);
      }
      release_from_space();
      std::rethrow_exception(abort_err_);
    }
    ParallelGcOutcome out;
    out.per_worker.reserve(workers_.size());
    Heap* target = heaps_.front();
    for (auto& w : workers_) {
      target->merge_from(*w->to);
      out.per_worker.push_back(w->stats);
      out.totals.objects_copied += w->stats.objects_copied;
      out.totals.bytes_copied += w->stats.bytes_copied;
      out.totals.packets_drained += w->stats.packets_drained;
      out.totals.packets_stolen += w->stats.packets_stolen;
      out.totals.claim_conflicts += w->stats.claim_conflicts;
      out.totals.busy_ns += w->stats.busy_ns;
    }
    out.claim_conflicts = out.totals.claim_conflicts;
    for (Heap* h : heaps_) {
      h->reset_remote_bytes();  // full collection settles promoted-into growth
    }
    release_from_space();
    out.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
    return out;
  }

 private:
  static constexpr std::size_t kRootBatch = 64;
  static constexpr std::uint64_t kIdleOne = 1;
  static constexpr std::uint64_t kQueuedOne = std::uint64_t{1} << 32;
  static std::uint32_t idle_of(std::uint64_t s) {
    return static_cast<std::uint32_t>(s);
  }
  static std::uint32_t queued_of(std::uint64_t s) {
    return static_cast<std::uint32_t>(s >> 32);
  }

  struct Packet {
    Packet* next = nullptr;
    std::uint32_t count = 0;
    Object** slots() { return reinterpret_cast<Object**>(this + 1); }
  };

  struct alignas(64) Worker {
    unsigned index = 0;
    std::unique_ptr<Heap> to;  // private to-space buffer: no contention
    Packet* open = nullptr;    // partial packet being filled
    Packet* free = nullptr;    // recycled packets
    std::vector<Object*> overflow;  // degraded-mode greys (no packets)
    // Lock-free grey-packet deque (same Chase-Lev core as the task
    // scheduler): the owner pushes/pops full packets at the bottom,
    // thieves take the oldest at the top. The [queued:idle] state_
    // word stays the termination authority -- a transiently wrapped
    // queued count (thief's decrement landing before the pusher's
    // increment) only keeps workers spinning, never terminates early.
    ChaseLevDeque<Packet> deque{32};
    ParallelGcWorkerStats stats;
  };

  static std::vector<Heap*> heaps_of(const std::vector<HeapRecord*>& rs) {
    std::vector<Heap*> hs;
    hs.reserve(rs.size());
    for (HeapRecord* r : rs) {
      hs.push_back(&r->heap());
    }
    return hs;
  }

  bool collected(const Heap* h) const {
    for (const Heap* x : heaps_) {
      if (x == h) {
        return true;
      }
    }
    return false;
  }

  // Evacuate-or-resolve one reference. Returns the surviving address:
  // untouched for foreign (non-collected) objects, the to-space copy
  // otherwise. Exactly one worker wins the claim CAS per object.
  Object* forward(Worker& ws, Object* p) {
    for (;;) {
      p = Object::chase(p);  // spins past teammates' in-flight kBusy
      Chunk* c = chunk_of(p);
      if (!c->from_space ||
          !collected(c->heap.load(std::memory_order_relaxed))) {
        return p;  // foreign, or already a to-space copy
      }
      // Pre-reserve the to-space bytes BEFORE claiming: from claim_fwd
      // to set_fwd nothing may throw, or the kBusy sentinel would
      // strand and hang every chaser. Any allocation failure surfaces
      // here, with the object still unclaimed and chaseable. (Object
      // headers are immutable, so reading the size pre-claim is safe.)
      ws.to->reserve(Object::size_bytes(p->nptr(), p->nscalar()));
      if (p->claim_fwd()) {
        break;
      }
      ws.stats.claim_conflicts += 1;  // lost: chase the winner's copy
    }
    Object* n = ws.to->bump_alloc(p->nptr(), p->nscalar());  // reserved above
    std::size_t payload = 8u * (std::size_t{p->nptr()} + p->nscalar());
    std::memcpy(n->scalars(), p->scalars(), payload);
    p->set_fwd(n);  // release: payload visible before the pointer
    ws.stats.objects_copied += 1;
    ws.stats.bytes_copied += n->size();
    push_grey(ws, n);
    return n;
  }

  // Forward every field of one copied object (the per-slot work of
  // drain, shared with the degraded no-packet path).
  void scan_object(Worker& ws, Object* o) {
    std::uint32_t np = o->nptr();
    Object** fields = o->ptrs();
    for (std::uint32_t j = 0; j < np; ++j) {
      if (fields[j] != nullptr) {
        fields[j] = forward(ws, fields[j]);  // only this worker scans o
      }
    }
  }

  void drain(Worker& ws, Packet* p) {
    ws.stats.packets_drained += 1;
    for (std::uint32_t i = 0; i < p->count; ++i) {
      scan_object(ws, p->slots()[i]);
    }
    p->count = 0;
    p->next = ws.free;
    ws.free = p;
  }

  // May return nullptr: the packet_alloc failpoint fired, or malloc
  // itself refused. Callers degrade to the private overflow list then
  // -- evacuation completes correctly, just with less steal-able work.
  Packet* take_packet(Worker& ws) {
    if (ws.free != nullptr) {
      Packet* p = ws.free;
      ws.free = p->next;
      p->next = nullptr;
      return p;
    }
    if (__builtin_expect(
            failpoint::triggered(failpoint::Site::kPacketAlloc), 0)) {
      return nullptr;
    }
    void* mem = std::malloc(sizeof(Packet) +
                            opts_.packet_objects * sizeof(Object*));
    if (mem == nullptr) {
      return nullptr;
    }
    {
      std::lock_guard<SpinLock> g(packet_mem_lock_);
      packet_mem_.push_back(mem);
    }
    return new (mem) Packet();
  }

  void push_grey(Worker& ws, Object* n) {
    Packet* p = ws.open;
    if (p == nullptr) {
      p = take_packet(ws);
      if (p == nullptr) {
        // Degraded mode: remember the grey privately. If even this
        // tiny growth fails the machine is truly out of memory; the
        // typed throw (n is already copied AND published, so its
        // children would go unscanned) aborts the team via run_worker.
        try {
          ws.overflow.push_back(n);
        } catch (...) {
          throw OutOfMemory("packet_alloc",
                            sizeof(Packet) +
                                opts_.packet_objects * sizeof(Object*),
                            pool_->live_bytes(), pool_->budget(),
                            pool_->peak_bytes());
        }
        return;
      }
      ws.open = p;
    }
    p->slots()[p->count++] = n;
    if (p->count == opts_.packet_objects) {
      ws.deque.push(p);
      state_.fetch_add(kQueuedOne, std::memory_order_acq_rel);
      ws.open = nullptr;
    }
  }

  Packet* pop_local(Worker& ws) {
    Packet* p = ws.deque.pop();
    if (p != nullptr) {
      state_.fetch_sub(kQueuedOne, std::memory_order_acq_rel);
    }
    return p;
  }

  // Steal the OLDEST packet from a teammate: early greys root the
  // widest unexplored subgraphs (same heuristic as the task scheduler).
  // A lost steal CAS reads as an empty victim; the drain loop retries
  // while state_ still shows queued packets, so nothing is missed.
  Packet* steal(Worker& ws) {
    for (unsigned k = 1; k < opts_.team_size; ++k) {
      Worker& v = *workers_[(ws.index + k) % opts_.team_size];
      Packet* p = v.deque.steal();
      if (p != nullptr) {
        state_.fetch_sub(kQueuedOne, std::memory_order_acq_rel);
        ws.stats.packets_stolen += 1;
        return p;
      }
    }
    return nullptr;
  }

  void release_from_space() {
    while (from_ != nullptr) {
      Chunk* n = from_->next;
      pool_->release(from_);
      from_ = n;
    }
  }

  ChunkPool* pool_;
  std::vector<Heap*> heaps_;  // collected set; heaps_[0] receives survivors
  ParallelGcOptions opts_;

  Chunk* from_ = nullptr;  // detached from-space chunks, released at finish
  std::vector<Object**> roots_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> state_{0};  // [queued packets : idle workers]
  std::atomic<std::size_t> root_cursor_{0};
  std::atomic<unsigned> exited_{0};
  std::atomic<bool> aborted_{false};  // a worker threw; team terminates
  SpinLock abort_lock_;
  std::exception_ptr abort_err_;
  SpinLock packet_mem_lock_;
  std::vector<void*> packet_mem_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace core
}  // namespace parmem
