// Chunked heaps arranged in a tree that mirrors the fork-join task
// tree. A heap is a singly linked list of 256 KiB chunks, each aligned
// to its own size so `object -> owning heap` is one mask plus one load
// (no per-object heap word, which keeps allocation at a pointer bump).
//
// Chunks are recycled through a per-runtime ChunkPool so steady-state
// allocation and leaf GC never touch the OS allocator. Full-size and
// oversized chunks are mmap-backed so freeing one (pool destruction,
// ChunkPool::trim after a global collection) returns pages to the OS
// immediately; sub-chunk starter sizes stay on posix_memalign, whose
// arena recycles their per-leaf churn cheaply. Oversized objects get a
// dedicated multiple-of-256KiB chunk; their start address still lies
// inside the first aligned block, so the mask trick holds.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <new>

#include <sys/mman.h>

#include "core/failpoint.hpp"
#include "core/object.hpp"
#include "core/stats.hpp"

#if defined(__SANITIZE_THREAD__)
#define PARMEM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARMEM_TSAN 1
#endif
#endif
#if defined(PARMEM_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace parmem {

class Heap;

inline constexpr std::size_t kChunkBytesLog2 = 18;
inline constexpr std::size_t kChunkBytes = std::size_t{1} << kChunkBytesLog2;
inline constexpr std::size_t kChunkHeaderBytes = 64;
inline constexpr std::size_t kChunkPayload = kChunkBytes - kChunkHeaderBytes;

// Leaf heaps start on a small chunk that doubles up to kChunkBytes, so
// a fine-grained fork tree of thousands of tiny leaves doesn't pin a
// full 256 KiB per leaf. Small chunks are still kChunkBytes-ALIGNED
// (so chunk_of()'s mask finds the header) but only kMinChunkBytes big.
inline constexpr std::size_t kMinChunkBytes = std::size_t{4} << 10;

struct alignas(kChunkHeaderBytes) Chunk {
  std::atomic<Heap*> heap{nullptr};  // owning heap; retargeted at join-merge
  Chunk* next = nullptr;
  char* obj_end = nullptr;  // end of allocated objects; valid when retired
  std::size_t bytes = 0;    // total footprint including header
  bool oversized = false;
  bool mmapped = false;     // mmap-backed (full-size / oversized chunks)
  bool from_space = false;  // transient mark used by the leaf collector

  char* data() { return reinterpret_cast<char*>(this) + kChunkHeaderBytes; }
  char* data_limit() { return reinterpret_cast<char*>(this) + bytes; }
};

static_assert(sizeof(Chunk) <= kChunkHeaderBytes,
              "chunk header must fit its reserved prefix");

inline Chunk* chunk_of(const Object* o) {
  return reinterpret_cast<Chunk*>(reinterpret_cast<std::uintptr_t>(o) &
                                  ~(kChunkBytes - 1));
}

inline Heap* heap_of(const Object* o) {
  return chunk_of(o)->heap.load(std::memory_order_relaxed);
}

// Polite spin: tells the core we are in a busy-wait so the sibling
// hyperthread gets the pipeline. Shared by every spin site (SpinLock,
// the scheduler's steal loop, GC-team termination detection).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

// Tiny spinlock guarding fine-grained remote bumps into an internal
// heap; promotion critical sections are a handful of instructions.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      cpu_relax();
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Per-runtime chunk recycler. The global free list sits behind a
// mutex, but sharded per-thread caches (kCacheShards slots of up to
// kCacheCap full-size chunks, each shard on its own cache line behind
// its own spinlock) absorb the common acquire/release churn of leaf
// GC and fork-tree turnover, so only cache misses and overflows ever
// touch the shared lock.
class ChunkPool {
 public:
  ChunkPool() = default;
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  ~ChunkPool() {
    for (CacheShard& s : cache_) {
      while (s.head != nullptr) {
        Chunk* c = s.head;
        s.head = c->next;
        free_chunk(c);
      }
    }
    std::lock_guard<std::mutex> g(mu_);
    while (free_ != nullptr) {
      Chunk* c = free_;
      free_ = c->next;
      free_chunk(c);
    }
  }

  // payload_bytes: object bytes the caller needs to fit in one chunk.
  // size_hint: the heap's current chunk-growth step; grown as needed to
  // fit the payload and clamped to [kMinChunkBytes, kChunkBytes].
  //
  // Throws parmem::OutOfMemory when handing out the chunk would push
  // live_bytes past the budget (or the chunk_alloc failpoint fires, or
  // the OS refuses the memory). Collector-context allocations
  // (failpoint::gc_exempt) bypass budget and faults: a mid-evacuation
  // failure is not unwindable, and to-space is bounded by live data.
  Chunk* acquire(std::size_t payload_bytes,
                 std::size_t size_hint = kChunkBytes) {
    if (payload_bytes <= kChunkPayload) {
      std::size_t want = size_hint < kMinChunkBytes ? kMinChunkBytes
                         : size_hint > kChunkBytes  ? kChunkBytes
                                                    : size_hint;
      while (want - kChunkHeaderBytes < payload_bytes) {
        want <<= 1;  // terminates: payload fits a kChunkBytes chunk
      }
      if (want < kChunkBytes) {
        return fresh(want, false);
      }
      // Per-thread cache first: uncontended spinlock on our own line.
      // check_budget runs BEFORE the pop on both paths, so a budget
      // throw leaves the chunk where it was.
      {
        CacheShard& s = shard();
        std::lock_guard<SpinLock> g(s.lock);
        if (s.head != nullptr) {
          check_budget(s.head->bytes);  // pooled reuse still counts as live
          Chunk* c = s.head;
          s.head = c->next;
          --s.count;
          account_live(c->bytes);
          reset(c);
          return c;
        }
      }
      {
        std::lock_guard<std::mutex> g(mu_);
        if (free_ != nullptr) {
          check_budget(free_->bytes);
          Chunk* c = free_;
          free_ = c->next;
          account_live(c->bytes);
          reset(c);
          return c;
        }
      }
      return fresh(kChunkBytes, false);
    }
    std::size_t total = kChunkHeaderBytes + payload_bytes;
    total = (total + kChunkBytes - 1) & ~(kChunkBytes - 1);
    return fresh(total, true);
  }

  void release(Chunk* c) {
    std::size_t bytes = c->bytes;
    if (c->oversized || c->bytes < kChunkBytes) {
      // Only full-size chunks are pooled; small starter chunks are
      // cheap to realloc and pooling them would fragment the free list.
      free_chunk(c);
    } else {
      // Capped per-thread cache first; overflow spills to the shared
      // list so one thread's GC churn stays reusable by everyone.
      CacheShard& s = shard();
      bool cached = false;
      {
        std::lock_guard<SpinLock> g(s.lock);
        if (s.count < kCacheCap) {
          c->next = s.head;
          s.head = c;
          ++s.count;
          cached = true;
        }
      }
      if (!cached) {
        std::lock_guard<std::mutex> g(mu_);
        c->next = free_;
        free_ = c;
      }
    }
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // Frees pooled chunks from the shared free list until at most
  // keep_bytes remain pooled there (the per-thread caches, capped at
  // kCacheShards * kCacheCap chunks, are untouched). Full-size chunks
  // are mmap-backed at this allocation size, so freeing actually
  // returns RSS to the OS. Collectors that just emptied a large
  // from-space call this; without it the pool pins the process at its
  // all-time chunk high-water forever.
  void trim(std::size_t keep_bytes) {
    Chunk* excess = nullptr;
    {
      std::lock_guard<std::mutex> g(mu_);
      std::size_t pooled = 0;
      Chunk** p = &free_;
      while (*p != nullptr && pooled + (*p)->bytes <= keep_bytes) {
        pooled += (*p)->bytes;
        p = &(*p)->next;
      }
      excess = *p;
      *p = nullptr;
    }
    while (excess != nullptr) {
      Chunk* c = excess;
      excess = c->next;
      free_chunk(c);
    }
  }

  // Bytes currently handed out to heaps (excludes pooled free chunks).
  std::size_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  // Hard byte budget on handed-out chunks (0 = unlimited). Enforced in
  // acquire(); the owning runtime catches the resulting OutOfMemory on
  // its allocation slow path, runs its emergency-collection cascade,
  // and retries once before letting the exception escape.
  void set_budget(std::size_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

 private:
  void check_budget(std::size_t incoming) {
    std::size_t b = budget_.load(std::memory_order_relaxed);
    if (__builtin_expect(b != 0, 0) && !failpoint::gc_exempt() &&
        live_bytes_.load(std::memory_order_relaxed) + incoming > b) {
      throw OutOfMemory("chunk_alloc", incoming, live_bytes(), b,
                        peak_bytes());
    }
  }
  static void reset(Chunk* c) {
    c->heap.store(nullptr, std::memory_order_relaxed);
    c->next = nullptr;
    c->obj_end = nullptr;
    c->from_space = false;
  }

  Chunk* fresh(std::size_t total, bool oversized) {
    check_budget(total);
    // gc_exempt checked FIRST: triggered() consumes a hit from the
    // schedule, and collector-context allocations must not eat the
    // one-shot a fail@N spec aimed at the mutator.
    if (__builtin_expect(!failpoint::gc_exempt() &&
                             failpoint::triggered(failpoint::Site::kChunkAlloc),
                         0)) {
      throw OutOfMemory("chunk_alloc", total, live_bytes(), budget(),
                        peak_bytes());
    }
    // Full-size and oversized chunks bypass glibc and mmap directly:
    // these are the bulk of heap memory, and releasing one must
    // return its pages to the OS NOW (glibc's free of comparably
    // sized blocks either munmaps -- in which case every 256
    // KiB-ALIGNED request, even a 4 KiB starter whose internal
    // size+alignment allocation crosses the mmap threshold, pays
    // mmap/munmap/refault churn -- or, once its dynamic threshold
    // ratchets past the chunk size, parks them in the main arena
    // forever and steady RSS reads as the all-time high-water). The
    // sub-chunk starter sizes keep posix_memalign (not aligned_alloc:
    // total < alignment, which aligned_alloc rejects); their churn is
    // exactly what glibc's arena recycles well. The kChunkBytes
    // alignment is what makes chunk_of()'s address mask work.
    void* mem = nullptr;
    bool mapped = total >= kChunkBytes;
    if (mapped) {
      mem = map_chunk_aligned(total);
    } else if (posix_memalign(&mem, kChunkBytes, total) != 0) {
      mem = nullptr;
    }
    if (mem == nullptr) {
      throw OutOfMemory("chunk_alloc", total, live_bytes(), budget(),
                        peak_bytes());
    }
    Chunk* c = new (mem) Chunk();
    c->bytes = total;
    c->oversized = oversized;
    c->mmapped = mapped;
    account_live(total);
    return c;
  }

  // Anonymous mapping of `total` bytes at kChunkBytes alignment: map
  // alignment's worth of slack, then unmap the misaligned head and
  // tail. Returns nullptr when the OS refuses the memory.
  static void* map_chunk_aligned(std::size_t total) {
    std::size_t span = total + kChunkBytes;
    void* raw = ::mmap(nullptr, span, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) {
      return nullptr;
    }
    auto base = reinterpret_cast<std::uintptr_t>(raw);
    std::uintptr_t aligned = (base + kChunkBytes - 1) & ~(kChunkBytes - 1);
    if (aligned != base) {
      ::munmap(raw, aligned - base);
    }
    std::size_t tail = base + span - (aligned + total);
    if (tail != 0) {
      ::munmap(reinterpret_cast<void*>(aligned + total), tail);
    }
    return reinterpret_cast<void*>(aligned);
  }

  static void free_chunk(Chunk* c) {
    if (c->mmapped) {
      std::size_t bytes = c->bytes;
      ::munmap(c, bytes);
    } else {
      std::free(c);
    }
  }

  void account_live(std::size_t bytes) {
    std::size_t now =
        live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  static constexpr unsigned kCacheShards = 8;  // power of two
  static constexpr unsigned kCacheCap = 4;     // chunks per shard

  struct alignas(64) CacheShard {
    SpinLock lock;
    Chunk* head = nullptr;
    unsigned count = 0;
  };

  CacheShard& shard() { return cache_[thread_shard_id() % kCacheShards]; }

  CacheShard cache_[kCacheShards];
  std::mutex mu_;  // global free list: cache-miss path only
  Chunk* free_ = nullptr;
  // The byte counters live on their own line: every acquire/release on
  // every worker hits them, and they must not share a line with the
  // mutex word or the free-list head.
  alignas(64) std::atomic<std::size_t> live_bytes_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::atomic<std::size_t> budget_{0};  // 0 = unlimited
};

// One node of the heap tree. Leaf heaps are bumped lock-free by their
// owning task; internal heaps only grow via promotion, which
// synchronises with either the heap mutex (coarse path locking) or the
// remote spinlock (fine-grained mode).
class Heap {
 public:
  Heap(Heap* parent, std::uint32_t depth, ChunkPool* pool)
      : parent_(parent), depth_(depth), pool_(pool) {}
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  ~Heap() {
    release_all_chunks();
#if defined(PARMEM_TSAN)
    // Heaps live in fork2 stack frames, so a dead heap's address is
    // promptly reused by another heap at a different depth. glibc's
    // std::mutex destructor is trivial (no pthread_mutex_destroy
    // call), so without this TSan keeps the dead path lock's
    // lock-order edges and conflates the logical mutexes sharing the
    // address across time -- its deadlock detector then reports
    // cycles no live acquisition order can produce. (Live edges are
    // acyclic: PathLockGuard locks shallow-first along ancestor
    // chains and parent_ is construction-only, so the relative order
    // of two live heaps can never invert.)
    __tsan_mutex_destroy(&lock_, 0);
#endif
  }

  Heap* parent() const { return parent_; }
  std::uint32_t depth() const { return depth_; }
  std::mutex& path_lock() { return lock_; }
  SpinLock& remote_lock() { return remote_lock_; }
  ChunkPool* pool() const { return pool_; }

  // True when `anc` lies strictly above this heap on its root path --
  // the descendant-enumeration test used by hierarchy-aware internal
  // collection (a heap's referents can only live in itself, its
  // descendants' frames/fields, or its owner's frames; never in
  // ancestors or cousins).
  bool is_descendant_of(const Heap* anc) const {
    for (const Heap* h = parent_; h != nullptr; h = h->parent_) {
      if (h == anc) {
        return true;
      }
    }
    return false;
  }

  // Bytes promoted INTO this heap since its last full collection --
  // the allocation-triggered internal-collection policy's pressure
  // metric. Bumped under the promotion protocol's lock but read
  // remotely, hence atomic.
  void note_remote_bytes(std::size_t n) {
    remote_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  std::size_t remote_bytes() const {
    return remote_bytes_.load(std::memory_order_relaxed);
  }
  void reset_remote_bytes() {
    remote_bytes_.store(0, std::memory_order_relaxed);
  }

  // Current chunk-growth step (4 KiB doubling to 256 KiB). Exposed so
  // tests can pin that collections never reset the doubling schedule
  // back to the small-leaf start.
  std::size_t chunk_size_hint() const { return next_chunk_bytes_; }

  char* top() const { return top_; }
  Chunk* chunks() const { return head_; }
  Chunk* tail() const { return tail_; }
  std::size_t chunk_bytes() const { return bytes_; }
  std::size_t allocated_bytes() const {
    return allocated_full_ +
           (top_ != nullptr ? static_cast<std::size_t>(top_ - tail_->data())
                            : 0);
  }

  // Inline fast path: bump or bail. Returns null on overflow so the
  // caller can run its GC policy before acquiring a chunk. The caller
  // initialises the header.
  char* try_bump(std::size_t size) {
    char* p = top_;
    if (__builtin_expect(static_cast<std::size_t>(end_ - p) < size, 0)) {
      return nullptr;
    }
    top_ = p + size;
    return p;
  }

  // Raw bump allocation. The caller provides mutual exclusion: the
  // owning task for its leaf, or the promotion lock for an internal
  // heap. Header is initialised; fields are NOT zeroed here.
  Object* bump_alloc(std::uint32_t nptr, std::uint32_t nscalar) {
    std::size_t size = Object::size_bytes(nptr, nscalar);
    char* p = top_;
    char* nt = p + size;
    if (__builtin_expect(nt > end_, 0)) {
      return overflow_alloc(nptr, nscalar, size);
    }
    top_ = nt;
    Object* o = reinterpret_cast<Object*>(p);
    o->init_header(nptr, nscalar);
    return o;
  }

  // Header-agnostic bump: reserve `size` bytes (already object-aligned,
  // e.g. from object_bytes()) without writing a header. Same mutual
  // exclusion rules as bump_alloc.
  char* bump_raw(std::size_t size) {
    char* p = top_;
    char* nt = p + size;
    if (__builtin_expect(nt > end_, 0)) {
      return overflow_raw(size);
    }
    top_ = nt;
    return p;
  }

  // Guarantee the next bump of `size` bytes takes the fast path: opens
  // a new chunk now if the current one lacks room. Any OutOfMemory
  // surfaces HERE, with the heap untouched -- which is what lets
  // callers pre-reserve before entering a window that must not throw
  // (a claimed forwarding word mid-copy). Same mutual exclusion rules
  // as bump_alloc.
  void reserve(std::size_t size) {
    if (__builtin_expect(static_cast<std::size_t>(end_ - top_) < size, 0)) {
      open_new_chunk(size);
    }
  }

  // Snapshot the bump pointer into the tail chunk so object walkers
  // can iterate it without consulting `top_`.
  void retire_tail() {
    if (top_ != nullptr) {
      tail_->obj_end = top_;
    }
  }

  // Detach the whole chunk list (leaf GC flips it to from-space).
  Chunk* detach_chunks() {
    retire_tail();
    Chunk* h = head_;
    head_ = tail_ = nullptr;
    top_ = end_ = nullptr;
    bytes_ = 0;
    allocated_full_ = 0;
    return h;
  }

  // Fold `child` into this heap at join: every surviving child object
  // keeps its address; only the chunk->heap back-pointers change.
  void merge_from(Heap& child) {
    child.retire_tail();
    Chunk* h = child.head_;
    if (h == nullptr) {
      return;
    }
    Chunk* last = h;
    for (Chunk* c = h;; c = c->next) {
      c->heap.store(this, std::memory_order_relaxed);
      c->from_space = false;
      last = c;
      if (c->next == nullptr) {
        break;
      }
    }
    // Splice at the head so this heap's tail stays the active bump
    // chunk; merged chunks are all retired (obj_end valid).
    last->next = head_;
    head_ = h;
    if (tail_ == nullptr) {
      tail_ = last;
    }
    bytes_ += child.bytes_;
    allocated_full_ += child.allocated_bytes();
    child.head_ = child.tail_ = nullptr;
    child.top_ = child.end_ = nullptr;
    child.bytes_ = 0;
    child.allocated_full_ = 0;
  }

  void release_all_chunks() {
    Chunk* c = detach_chunks();
    while (c != nullptr) {
      Chunk* n = c->next;
      pool_->release(c);
      c = n;
    }
  }

  // Adopt an externally built, fully retired chunk list (obj_end valid
  // on every chunk; `tail` terminates it). The current list must have
  // been detached or released first. `allocated` is the object bytes
  // the list carries; the bump pointer stays closed, so the next
  // bump_alloc opens a fresh chunk.
  void adopt_chunks(Chunk* head, Chunk* tail, std::size_t allocated) {
    assert(head_ == nullptr && "detach or release existing chunks first");
    std::size_t bytes = 0;
    for (Chunk* c = head; c != nullptr; c = c->next) {
      c->heap.store(this, std::memory_order_relaxed);
      c->from_space = false;
      bytes += c->bytes;
    }
    head_ = head;
    tail_ = tail;
    top_ = end_ = nullptr;
    bytes_ = bytes;
    allocated_full_ = allocated;
  }

 private:
  Object* overflow_alloc(std::uint32_t nptr, std::uint32_t nscalar,
                         std::size_t size) {
    Object* o = reinterpret_cast<Object*>(overflow_raw(size));
    o->init_header(nptr, nscalar);
    return o;
  }

  // Open a fresh chunk able to hold `size` payload bytes and make it
  // the bump target. If the pool throws (budget, failpoint, OS), the
  // heap is left fully consistent -- tail retired but nothing linked
  // or double-counted -- so the owner can collect and retry.
  void open_new_chunk(std::size_t size) {
    retire_tail();
    Chunk* c = pool_->acquire(size, next_chunk_bytes_);
    if (top_ != nullptr) {
      allocated_full_ += static_cast<std::size_t>(top_ - tail_->data());
    }
    if (!c->oversized) {
      next_chunk_bytes_ =
          c->bytes < kChunkBytes ? c->bytes << 1 : kChunkBytes;
    }
    c->heap.store(this, std::memory_order_relaxed);
    c->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = c;
    } else {
      head_ = c;
    }
    tail_ = c;
    bytes_ += c->bytes;
    top_ = c->data();
    // An oversized chunk is closed at exactly `size`: objects after the
    // big one would sit past the first kChunkBytes-aligned block, where
    // chunk_of()'s address mask no longer finds this header.
    end_ = c->oversized ? c->data() + size : c->data_limit();
  }

  char* overflow_raw(std::size_t size) {
    open_new_chunk(size);
    char* p = top_;
    top_ += size;
    return p;
  }

  // Cold identity: fixed after construction, read-only thereafter.
  Heap* parent_;
  std::uint32_t depth_;
  ChunkPool* pool_;

  // Owner-hot bump group, isolated on its own cache line: everything
  // the inline alloc fast path (try_bump/bump_alloc) and the chunk
  // bookkeeping behind it touch. Must not share a line with the
  // remote-writer group below -- a promoting worker bumping
  // remote_bytes_ would otherwise invalidate the owner's bump pointer
  // line on every promotion.
  alignas(64) char* top_ = nullptr;
  char* end_ = nullptr;
  Chunk* tail_ = nullptr;
  Chunk* head_ = nullptr;
  std::size_t next_chunk_bytes_ = kMinChunkBytes;  // doubles to kChunkBytes
  std::size_t bytes_ = 0;           // chunk footprint owned by this heap
  std::size_t allocated_full_ = 0;  // object bytes in retired chunks

  // Remote group: written by OTHER workers promoting into this heap
  // (remote_bytes_ under the promotion protocol, the locks by the
  // coarse/fine promotion paths).
  alignas(64) std::atomic<std::size_t> remote_bytes_{0};  // promoted-into
  SpinLock remote_lock_;
  std::mutex lock_;
};

// Walk every object of `heap` in allocation order, invoking
// fn(Object*). Retires the tail first so the active bump chunk is
// walkable; the caller must be the owning task, or the owner must be
// quiesced (a stopped world or a merged/joined subtree).
template <class Fn>
void heap_for_each_object(Heap* heap, Fn&& fn) {
  heap->retire_tail();
  for (Chunk* c = heap->chunks(); c != nullptr; c = c->next) {
    char* p = c->data();
    char* limit = c->obj_end;
    while (p < limit) {
      Object* o = reinterpret_cast<Object*>(p);
      fn(o);
      p += o->size();
    }
  }
}

}  // namespace parmem
