// Work-stealing fork-join scheduler. fork2 pushes the right branch on
// the calling worker's deque, runs the left branch inline, then either
// pops the right branch back (the common, steal-free case -- this is
// what keeps hierarchical heaps promotion-free on balanced work) or
// helps by stealing other tasks until the thief finishes.
//
// The deques are per-worker Chase-Lev lock-free deques
// (core/deque.hpp): the uncontended fork2 push+pop cycle touches no
// mutex and no shared cache line beyond the deque's own bottom index.
// Tasks are stack-allocated by fork2 and joined before the frame dies,
// so the deques hold raw pointers and never allocate per fork (ring
// growth aside).
//
// Deque <-> gate memory-ordering contract (shared with SafepointGate
// below and the STW runtime's inlined copy of the same protocol): a
// task sitting in a deque is INERT -- it is not a member of any gate's
// running set and holds no heap or runtime state that a stopper could
// need quiesced. A task joins the running set only when the worker
// that dequeued it executes it and that execution activates the gate
// (branch_enter / the STW fork path), which is a seq_cst RMW on the
// executing worker's own slot, Dekker-paired with the stopper's
// seq_cst stop-flag store + count read. Stoppers therefore never
// inspect deque contents, and the deque's internal orderings only have
// to publish the task payload from pusher to taker (see
// core/deque.hpp); no ordering edge between deque indices and gate
// flags is required for stop correctness. The one cross-component
// ordering this file does own is the push-vs-park Dekker pair on
// sleepers_, documented at push()/park_worker().
#pragma once

#include <unistd.h>

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/phase.hpp"
#include "core/profiler.hpp"
#include "core/sig_io.hpp"  // sig_write / sig_write_i64 (hoisted from here)
#include "core/trace.hpp"
#include "deque.hpp"

namespace parmem {

class WorkStealPool {
 public:
  class Task {
   public:
    virtual void execute() = 0;

   protected:
    ~Task() = default;
  };

  // The worker count an Options value of `workers` resolves to (0 =
  // hardware concurrency). Exposed so runtimes can size per-worker
  // state (sharded stats, chunk caches) declared BEFORE their pool
  // member without reordering destruction.
  static unsigned resolved_workers(unsigned workers) {
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers == 0) {
        workers = 1;
      }
    }
    return workers;
  }

  explicit WorkStealPool(unsigned workers) {
    workers = resolved_workers(workers);
    deques_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      deques_.push_back(std::make_unique<ChaseLevDeque<Task>>());
    }
    // Worker 0 is the thread that calls run(); spawn the rest.
    for (unsigned i = 1; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  }

  ~WorkStealPool() {
    stop_.store(true, std::memory_order_seq_cst);
    {
      // The epoch bump under the lock makes the stop visible to a
      // parker between its predicate check and its wait (same protocol
      // as wake_one, see push()).
      std::lock_guard<std::mutex> g(sleep_mu_);
      wake_epoch_.fetch_add(1, std::memory_order_release);
    }
    sleep_cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  unsigned workers() const { return static_cast<unsigned>(deques_.size()); }

  // How long a parked worker sleeps before its backstop re-check (see
  // park_worker for why this is safe to make long).
  static constexpr std::chrono::milliseconds kParkBackstop{500};

  // Parks that ended in the wait_for timeout with nothing to do -- the
  // idle-churn metric a long-running server pays as permanent wakeup
  // CPU. A quiescent pool accrues at most one per worker per
  // kParkBackstop; the serve-harness quiescence test pins that.
  std::uint64_t idle_wakeups() const {
    return idle_wakeups_.load(std::memory_order_relaxed);
  }

  // Index of the calling thread within this pool (0 is the thread that
  // entered run()). Runtimes with per-worker state (local heaps) key it
  // off this.
  unsigned current_index() const {
    auto [pool, idx] = tls();
    assert(pool == this && "caller must be a thread owned by this pool");
    (void)pool;
    return idx;
  }

  // RAII registration of the calling thread as worker 0 for the
  // duration of a run(); nests correctly across runtimes.
  class Scope {
   public:
    explicit Scope(WorkStealPool* p) : saved_(tls()) { tls() = {p, 0}; }
    ~Scope() { tls() = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::pair<WorkStealPool*, unsigned> saved_;
  };

  // Owner-side push: lock-free deque push, then a fence-free sleeper
  // check. This is deliberately an ASYMMETRIC Dekker pair: the parker
  // pays a seq_cst RMW + fence before its rescan (park_worker), while
  // the pusher pays only plain stores and a relaxed load -- a fence
  // here would put an mfence on every fork2 and measurably tax the
  // uncontended cycle. The cost of the asymmetry is one narrow window
  // (this push's store still in the store buffer while the sleepers_
  // load reads a pre-announce 0, i.e. both sides miss each other
  // within one store-buffer drain, tens of ns) in which a wake is
  // lost; park_worker's bounded wait_for turns that into a
  // <=kParkBackstop delay, not a hang. Every wake the pusher DOES
  // observe is guaranteed delivered by the wake_epoch_ protocol, which
  // is what lets the park timeout be long: the old code lost wakes
  // systematically (notify_one racing the pre-wait window), so its
  // 500 us poll was load-bearing; here the timeout is a safety net
  // for a provably rare race only.
  void push(Task* t) {
    auto [pool, idx] = tls();
    assert(pool == this && "fork2 must run on a thread owned by its runtime");
    deques_[idx]->push(t);
    if (__builtin_expect(sleepers_.load(std::memory_order_relaxed) > 0, 0)) {
      wake_one();
    }
  }

  // Remove `t` if it was not stolen. fork2 nesting makes this exact:
  // every task pushed after `t` on this deque has already been joined
  // (popped or stolen) by the time `t`'s join runs, so `t` is the
  // newest entry if present at all; and thieves drain from the top
  // (oldest first), so if `t` was stolen the whole deque below it was
  // stolen first and pop() sees empty. Hence pop() returns `t` or
  // nullptr, never a different task. Returns true when the caller
  // should run `t` inline.
  bool cancel(Task* t) {
    auto [pool, idx] = tls();
    assert(pool == this);
    Task* p = deques_[idx]->pop();
    assert((p == t || p == nullptr) &&
           "fork2 joins must nest: cancel target is newest-or-stolen");
    return p == t;
  }

  // Join loop: execute other tasks until `done` returns true. Spins /
  // yields but never parks on sleep_cv_ -- `done` flips on a plain
  // atomic the finishing thief does not pair with the condvar.
  template <class Pred>
  void help_until(Pred&& done) {
    phase::PhaseScope steal_scope(phase::Phase::kSteal);
    unsigned idle = 0;
    while (!done()) {
      Task* t = try_steal();
      if (t != nullptr) {
        phase::PhaseScope run_scope(phase::Phase::kMutator);
        t->execute();
        idle = 0;
        continue;
      }
      back_off(idle++);
    }
  }

 private:
  static std::pair<WorkStealPool*, unsigned>& tls() {
    static thread_local std::pair<WorkStealPool*, unsigned> slot{nullptr, 0};
    return slot;
  }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  static void back_off(unsigned idle) {
    if (idle < 64) {
      cpu_relax();
    } else if (idle < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  // Per-thread xorshift64 for victim selection; seeded from the thread
  // identity so thieves do not sweep victims in lockstep.
  static std::uint64_t next_rand() {
    static thread_local std::uint64_t state =
        0x9e3779b97f4a7c15ull ^
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    std::uint64_t x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state = x;
    return x;
  }

  // Take the OLDEST available task: own deque's top first (a pending
  // sibling branch from an enclosing fork2 -- running it inline is the
  // cheapest possible "steal"), then one randomized sweep over the
  // other workers. A lost steal CAS shows up as nullptr from one
  // victim; callers loop, so a single attempt per victim per sweep is
  // enough and keeps thieves from convoying on one deque.
  Task* try_steal() {
    auto [pool, idx] = tls();
    unsigned n = workers();
    if (Task* t = deques_[idx]->steal()) {
      return t;
    }
    if (n > 1) {
      unsigned start = static_cast<unsigned>(next_rand() % n);
      for (unsigned k = 0; k < n; ++k) {
        unsigned v = (start + k) % n;
        if (v == idx) {
          continue;
        }
        if (Task* t = deques_[v]->steal()) {
          return t;
        }
      }
    }
    return nullptr;
  }

  bool any_work() const {
    for (const auto& d : deques_) {
      if (!d->empty()) {
        return true;
      }
    }
    return false;
  }

  // Wake path, only reached when a pusher observed sleepers_ > 0: bump
  // the epoch under sleep_mu_ so a parker between its announce/rescan
  // and its wait sees the wake through the condvar predicate, then
  // notify. Cost is confined to genuinely-idle periods.
  void wake_one() {
    {
      std::lock_guard<std::mutex> g(sleep_mu_);
      wake_epoch_.fetch_add(1, std::memory_order_release);
    }
    sleep_cv_.notify_one();
  }

  // Parker's half of the asymmetric push-vs-park pair (see push()):
  // announce on sleepers_ with a seq_cst RMW, fence, THEN rescan the
  // deques -- so any push whose sleepers_ check completed before our
  // announce became visible is seen by this rescan and we bail out
  // without sleeping. If the pusher saw our announce, its wake_one
  // either bumps wake_epoch_ before our wait (the predicate catches
  // it, closing the old check-then-park window) or notifies us out of
  // the wait. The wait_for timeout only backstops the pusher-side
  // store-buffer race push() documents -- a tens-of-ns window -- so it
  // can be long: the old 10 ms value had every parked worker waking at
  // 100 Hz forever, idle CPU a steady-state server pays for nothing.
  // The worst case a lost wake now costs is one branch waiting
  // kParkBackstop to be stolen (its owner can still pop it back
  // meanwhile), traded for near-zero idle churn.
  void park_worker() {
    std::uint64_t seq = wake_epoch_.load(std::memory_order_acquire);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_acquire) || any_work()) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      return;
    }
    {
      std::unique_lock<std::mutex> lk(sleep_mu_);
      bool woken = sleep_cv_.wait_for(lk, kParkBackstop, [&] {
        return wake_epoch_.load(std::memory_order_acquire) != seq ||
               stop_.load(std::memory_order_acquire);
      });
      if (!woken) {
        idle_wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }

  void worker_main(unsigned idx) {
    tls() = {this, idx};
    profiler::note_stack_hi();  // frame-walk watermark: this is the
                                // outermost frame worth unwinding
    phase::PhaseScope steal_scope(phase::Phase::kSteal);
    unsigned idle = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      Task* t = try_steal();
      if (t != nullptr) {
        phase::PhaseScope run_scope(phase::Phase::kMutator);
        t->execute();
        idle = 0;
        continue;
      }
      // Exponential backoff before parking: spin briefly (steals are
      // usually satisfied within a few cycles on busy workloads),
      // yield for a while, then park for real.
      if (idle < 64) {
        cpu_relax();
        ++idle;
      } else if (idle < 192) {
        std::this_thread::yield();
        ++idle;
      } else {
        phase::PhaseScope park_scope(phase::Phase::kPark);
        park_worker();
      }
    }
    tls() = {nullptr, 0};
  }

  std::vector<std::unique_ptr<ChaseLevDeque<Task>>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  // sleepers_ and wake_epoch_ each get their own line: sleepers_ is
  // read by every push, wake_epoch_ only inside the (rare) park/wake
  // paths.
  alignas(64) std::atomic<int> sleepers_{0};
  alignas(64) std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<std::uint64_t> idle_wakeups_{0};  // timed-out parks (cold path)
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

// Cooperative pause/resume gate for runtimes that must occasionally
// quiesce every running task (hierarchy-aware internal-heap collection;
// the same protocol StwRuntime inlines for its stop-the-world cycles):
//
//   - Tasks enter/leave the running set with activate()/deactivate(),
//     one seq_cst RMW on their own worker's cache line plus a flag
//     check, Dekker-paired with the stopper's flag-store/count-read.
//     Entering blocks while a stop is pending.
//   - Running tasks poll pending() at their safepoints (allocation slow
//     paths, fork/join boundaries) and park() through a pending stop.
//   - A stopper calls begin_stop(); once it returns true, every other
//     member of the running set is parked at a safepoint and stays
//     parked until end_stop(). A false return means another stop was
//     already pending and the caller was parked through it instead.
//
// Progress is cooperative: an activated task that neither reaches a
// safepoint nor deactivates stalls a pending stop (the same contract as
// the STW runtime's pause).
class SafepointGate;

// Process-global table of live SafepointGates so the test watchdog's
// SIGALRM handler can locate and dump them without locks or allocation
// (both forbidden in a signal handler). Lock-free CAS slots; a process
// with more than kSlots live gates just leaves the excess unreported.
class GateRegistry {
 public:
  static constexpr unsigned kSlots = 16;

  static void add(SafepointGate* g) {
    for (unsigned i = 0; i < kSlots; ++i) {
      SafepointGate* expect = nullptr;
      if (slots()[i].compare_exchange_strong(expect, g,
                                             std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  static void remove(SafepointGate* g) {
    for (unsigned i = 0; i < kSlots; ++i) {
      SafepointGate* expect = g;
      slots()[i].compare_exchange_strong(expect, nullptr,
                                         std::memory_order_acq_rel);
    }
  }

  template <class Fn>
  static void for_each(Fn&& fn) {
    for (unsigned i = 0; i < kSlots; ++i) {
      if (SafepointGate* g = slots()[i].load(std::memory_order_acquire)) {
        fn(g);
      }
    }
  }

 private:
  static std::atomic<SafepointGate*>* slots() {
    static std::atomic<SafepointGate*> table[kSlots] = {};
    return table;
  }
};

class SafepointGate {
 public:
  explicit SafepointGate(unsigned workers) : slots_(workers) {
    GateRegistry::add(this);
  }
  ~SafepointGate() { GateRegistry::remove(this); }
  SafepointGate(const SafepointGate&) = delete;
  SafepointGate& operator=(const SafepointGate&) = delete;

  void activate(unsigned worker) {
    std::atomic<int>& cnt = slots_[worker].active;
    for (;;) {
      cnt.fetch_add(1, std::memory_order_seq_cst);
      if (__builtin_expect(!stop_flag_.load(std::memory_order_seq_cst), 1)) {
        return;
      }
      // A stop is pending: back out (waking its driver, which may be
      // waiting on the running count) and sit it out.
      phase::PhaseScope stall_scope(phase::Phase::kGateStall);
      const std::uint64_t t0 = trace::now_ns();
      std::unique_lock<std::mutex> lk(mu_);
      cnt.fetch_sub(1, std::memory_order_seq_cst);
      pause_cv_.notify_all();
      done_cv_.wait(lk, [&] { return !stop_pending_; });
      trace::record_gate_stall(t0, trace::now_ns() - t0);
    }
  }

  void deactivate(unsigned worker) {
    slots_[worker].active.fetch_sub(1, std::memory_order_seq_cst);
    if (__builtin_expect(stop_flag_.load(std::memory_order_seq_cst), 0)) {
      std::lock_guard<std::mutex> g(mu_);
      pause_cv_.notify_all();  // a stopper may be waiting on the count
    }
  }

  // Cheap safepoint poll.
  bool pending() const {
    return stop_flag_.load(std::memory_order_acquire);
  }

  // Park at a safepoint until the pending stop (if any) finishes. The
  // caller stays a member of the running set while parked.
  void park() {
    std::unique_lock<std::mutex> lk(mu_);
    wait_out(lk);
  }

  bool begin_stop() {
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_pending_) {
      wait_out(lk);
      return false;
    }
    stop_pending_ = true;
    stop_flag_.store(true, std::memory_order_seq_cst);
    pause_cv_.wait(lk, [&] { return paused_ == running() - 1; });
    return true;
  }

  void end_stop() {
    std::lock_guard<std::mutex> g(mu_);
    stop_pending_ = false;
    stop_flag_.store(false, std::memory_order_seq_cst);
    done_cv_.notify_all();
  }

  // ---- parked-mutator recruitment ----------------------------------
  //
  // While a stop is in progress the parked tasks are idle CPU: the
  // stop driver can hand them evacuation work instead. offer_team
  // installs a type-erased callback plus a slot range [next, limit);
  // each parked task claims successive slot indices and runs
  // fn(arg, slot) outside the gate lock, looping back for more until
  // the range is exhausted -- so one awake recruit claims any slots
  // late sleepers never get to, and every offered slot is guaranteed
  // to run. The driver runs its own slot, waits for the whole team
  // itself (ParallelCollector::finish spins until every slot exits),
  // and only then calls retract_team(), before end_stop().
  //
  // The callback is a plain function pointer because this header
  // cannot see gc_parallel.hpp (which includes it); the driver passes
  // a trampoline that downcasts `arg`.
  void offer_team(void (*fn)(void*, unsigned), void* arg, unsigned next,
                  unsigned limit) {
    std::lock_guard<std::mutex> g(mu_);
    team_fn_ = fn;
    team_arg_ = arg;
    team_next_ = next;
    team_limit_ = limit;
    done_cv_.notify_all();
  }

  void retract_team() {
    std::lock_guard<std::mutex> g(mu_);
    team_fn_ = nullptr;
  }

  // Parked tasks available for recruitment. Stable between a
  // successful begin_stop() and end_stop(): late activators back out
  // in activate() without ever incrementing paused_.
  unsigned parked() {
    std::lock_guard<std::mutex> g(mu_);
    return paused_;
  }

  // Watchdog dump: async-signal-safe (atomics and write(2) only; does
  // NOT take mu_, so paused_ is read racily -- acceptable when
  // diagnosing an already-hung process). Shows whether a stop is
  // pending, how many tasks have parked, and each worker slot's
  // running-set count -- enough to tell a stalled stop (some slot
  // active but never parking) from a lost wakeup (all parked, stop
  // never ending).
  void dump(int fd) const {
    detail::sig_write(fd, "  gate stop_flag=");
    detail::sig_write_i64(fd, stop_flag_.load(std::memory_order_relaxed));
    detail::sig_write(fd, " paused=");
    detail::sig_write_i64(fd, static_cast<long long>(paused_));
    detail::sig_write(fd, " active=[");
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (i != 0) {
        detail::sig_write(fd, " ");
      }
      detail::sig_write_i64(fd,
                            slots_[i].active.load(std::memory_order_relaxed));
    }
    detail::sig_write(fd, "]\n");
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int> active{0};
  };

  unsigned running() const {
    long n = 0;
    for (const Slot& s : slots_) {
      n += s.active.load(std::memory_order_seq_cst);
    }
    return static_cast<unsigned>(n);
  }

  // Park until the pending stop finishes, claiming offered team slots
  // along the way (see offer_team). A recruit stays counted in paused_
  // while it runs its slot: the driver already holds the stop, and the
  // count matters only to begin_stop's quorum wait.
  void wait_out(std::unique_lock<std::mutex>& lk) {
    phase::PhaseScope stall_scope(phase::Phase::kGateStall);
    const std::uint64_t t0 = trace::now_ns();
    ++paused_;
    pause_cv_.notify_all();
    while (stop_pending_) {
      if (team_fn_ != nullptr && team_next_ < team_limit_) {
        const unsigned slot = team_next_++;
        void (*fn)(void*, unsigned) = team_fn_;
        void* arg = team_arg_;
        lk.unlock();
        fn(arg, slot);
        lk.lock();
        continue;
      }
      done_cv_.wait(lk);
    }
    --paused_;
    trace::record_gate_stall(t0, trace::now_ns() - t0);
  }

  std::vector<Slot> slots_;           // per-worker running-set counts
  std::mutex mu_;                     // stop paths only
  std::condition_variable pause_cv_;  // parked / left the running set
  std::condition_variable done_cv_;   // stop finished
  unsigned paused_ = 0;               // guarded by mu_
  bool stop_pending_ = false;         // guarded by mu_
  std::atomic<bool> stop_flag_{false};  // lock-free mirror of stop_pending_
  // Recruitment handoff (offer_team / retract_team), guarded by mu_.
  void (*team_fn_)(void*, unsigned) = nullptr;
  void* team_arg_ = nullptr;
  unsigned team_next_ = 0;
  unsigned team_limit_ = 0;
};

}  // namespace parmem
