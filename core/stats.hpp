// Runtime-wide counters and tuning knobs shared by every runtime
// flavour (hier today; seq/stw/localheap in later PRs). Counters are
// updated only on slow paths (promotion, GC, chunk traffic) so they
// never tax the nanosecond fast paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace parmem {

// How entangling pointer writes promote the source closure.
enum class PromotionMode {
  kCoarseLocking,  // lock the heap path from target down to leaf (paper Sec 3)
  kFineGrained,    // CAS-claim per object + spinlocked remote bump (Sec 5)
};

// Snapshot of runtime counters. Monotonic over the life of a runtime;
// bench_common::measure() diffs two snapshots around a run.
struct Stats {
  std::uint64_t promotions = 0;        // entangling writes that promoted
  std::uint64_t promoted_objects = 0;  // objects copied up by promotion
  std::uint64_t promoted_bytes = 0;    // bytes copied up by promotion
  std::uint64_t promo_claim_conflicts = 0;  // lost fine-grained CAS claims
  std::uint64_t gc_count = 0;          // collections (leaf or stop-the-world)
  std::uint64_t gc_bytes_copied = 0;   // live bytes evacuated by GC
  std::uint64_t gc_ns = 0;             // GC time; STW adds stopped workers
  std::uint64_t forks = 0;             // fork2 calls
  // Hierarchy-aware internal-heap collections (core/gc_internal.hpp).
  // These are billed to the runtime that owns the collected heap and are
  // ALSO counted in gc_count / gc_bytes_copied / gc_ns above (an internal
  // collection is a collection); the internal_* pair isolates them.
  std::uint64_t internal_gc_count = 0;
  std::uint64_t internal_gc_bytes = 0;  // live bytes evacuated internally
  // Global-heap collections (the localheap runtime's stopped-world
  // depth-0 collection). Also counted in gc_count / gc_bytes_copied /
  // gc_ns; the global_* pair isolates them.
  std::uint64_t global_gc_count = 0;
  std::uint64_t global_gc_bytes = 0;  // live bytes evacuated from global
  // Emergency collections: cascades run because an allocation hit the
  // hard heap budget (or an injected chunk_alloc fault) and the runtime
  // collected everything it could before retrying. Also counted in
  // gc_count; a nonzero value means the computation ran degraded.
  std::uint64_t emergency_gcs = 0;

  Stats& operator+=(const Stats& o) {
    promotions += o.promotions;
    promoted_objects += o.promoted_objects;
    promoted_bytes += o.promoted_bytes;
    promo_claim_conflicts += o.promo_claim_conflicts;
    gc_count += o.gc_count;
    gc_bytes_copied += o.gc_bytes_copied;
    gc_ns += o.gc_ns;
    forks += o.forks;
    internal_gc_count += o.internal_gc_count;
    internal_gc_bytes += o.internal_gc_bytes;
    global_gc_count += o.global_gc_count;
    global_gc_bytes += o.global_gc_bytes;
    emergency_gcs += o.emergency_gcs;
    return *this;
  }

  Stats operator-(const Stats& o) const {
    Stats d;
    d.promotions = promotions - o.promotions;
    d.promoted_objects = promoted_objects - o.promoted_objects;
    d.promoted_bytes = promoted_bytes - o.promoted_bytes;
    d.promo_claim_conflicts = promo_claim_conflicts - o.promo_claim_conflicts;
    d.gc_count = gc_count - o.gc_count;
    d.gc_bytes_copied = gc_bytes_copied - o.gc_bytes_copied;
    d.gc_ns = gc_ns - o.gc_ns;
    d.forks = forks - o.forks;
    d.internal_gc_count = internal_gc_count - o.internal_gc_count;
    d.internal_gc_bytes = internal_gc_bytes - o.internal_gc_bytes;
    d.global_gc_count = global_gc_count - o.global_gc_count;
    d.global_gc_bytes = global_gc_bytes - o.global_gc_bytes;
    d.emergency_gcs = emergency_gcs - o.emergency_gcs;
    return d;
  }
};

// Point-in-time view of a runtime's counters plus its memory
// occupancy, cheap enough to take from a sampler thread while the
// world keeps running: every source is a relaxed atomic (sharded
// counters, the chunk pool's live/peak gauges), so no collection, no
// lock, and no safepoint is involved. Steady-state consumers (the
// serve harness's RSS/fragmentation sampling, the soak tests) diff two
// of these around an interval; live_bytes is the denominator of the
// fragmentation ratio RSS / live.
struct StatsSnapshot {
  Stats stats;                 // monotonic counters (diff two snapshots)
  std::size_t live_bytes = 0;  // chunk bytes currently checked out
  std::size_t peak_bytes = 0;  // lifetime high-water chunk footprint

  // Counter delta over [earlier, this]. Memory gauges are levels, not
  // counters, so the caller reads them off each endpoint directly.
  Stats interval_since(const StatsSnapshot& earlier) const {
    return stats - earlier.stats;
  }
};

// Shared mutable counter block; one per runtime instance.
struct StatsCell {
  std::atomic<std::uint64_t> promotions{0};
  std::atomic<std::uint64_t> promoted_objects{0};
  std::atomic<std::uint64_t> promoted_bytes{0};
  std::atomic<std::uint64_t> promo_claim_conflicts{0};
  std::atomic<std::uint64_t> gc_count{0};
  std::atomic<std::uint64_t> gc_bytes_copied{0};
  std::atomic<std::uint64_t> gc_ns{0};
  std::atomic<std::uint64_t> forks{0};
  std::atomic<std::uint64_t> internal_gc_count{0};
  std::atomic<std::uint64_t> internal_gc_bytes{0};
  std::atomic<std::uint64_t> global_gc_count{0};
  std::atomic<std::uint64_t> global_gc_bytes{0};
  std::atomic<std::uint64_t> emergency_gcs{0};

  Stats snapshot() const {
    Stats s;
    s.promotions = promotions.load(std::memory_order_relaxed);
    s.promoted_objects = promoted_objects.load(std::memory_order_relaxed);
    s.promoted_bytes = promoted_bytes.load(std::memory_order_relaxed);
    s.promo_claim_conflicts =
        promo_claim_conflicts.load(std::memory_order_relaxed);
    s.gc_count = gc_count.load(std::memory_order_relaxed);
    s.gc_bytes_copied = gc_bytes_copied.load(std::memory_order_relaxed);
    s.gc_ns = gc_ns.load(std::memory_order_relaxed);
    s.forks = forks.load(std::memory_order_relaxed);
    s.internal_gc_count = internal_gc_count.load(std::memory_order_relaxed);
    s.internal_gc_bytes = internal_gc_bytes.load(std::memory_order_relaxed);
    s.global_gc_count = global_gc_count.load(std::memory_order_relaxed);
    s.global_gc_bytes = global_gc_bytes.load(std::memory_order_relaxed);
    s.emergency_gcs = emergency_gcs.load(std::memory_order_relaxed);
    return s;
  }
};

// Stable small integer id for the calling thread, assigned on first
// use and fixed for the thread's lifetime. Shard pickers (stats,
// chunk caches) reduce it modulo their own power-of-two shard count;
// ids are never recycled, so two live threads never share an id (they
// may share a shard, which is a contention question, not correctness).
inline unsigned thread_shard_id() {
  static std::atomic<unsigned> next{0};
  static thread_local unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-worker sharded counter block: each shard is a full StatsCell on
// its own cache line(s), so workers bumping counters on hot slow paths
// (forks, promotions, chunk traffic) never bounce a shared line.
// Aggregated on read -- snapshot() sums every shard, which is exact
// because each counter is monotonic and relaxed adds commute. Code
// that hands a counter block to a collector still passes a plain
// StatsCell* (`&stats.local()`), so the collector interfaces are
// unchanged.
class ShardedStats {
 public:
  // `shards` is rounded up to a power of two; pass the resolved worker
  // count (threads beyond it fold onto existing shards by modulo).
  explicit ShardedStats(unsigned shards) {
    unsigned n = 1;
    while (n < shards) {
      n <<= 1;
    }
    mask_ = n - 1;
    cells_ = std::make_unique<Cell[]>(n);
  }

  StatsCell& local() { return cells_[thread_shard_id() & mask_].c; }
  unsigned shard_count() const { return mask_ + 1; }

  Stats snapshot() const {
    Stats total;
    for (unsigned i = 0; i <= mask_; ++i) {
      total += cells_[i].c.snapshot();
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    StatsCell c;
  };

  std::unique_ptr<Cell[]> cells_;
  unsigned mask_;
};

}  // namespace parmem
