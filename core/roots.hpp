// Precise root registration. A RootFrame is a stack-discipline batch
// of root slots owned by one task context; Local is a handle to one
// slot. Handles load through the slot on every get(), so both the leaf
// collector and join-time collection may relocate objects and simply
// rewrite the slot -- captured Locals (including ones captured by value
// into fork2 branches) stay valid as long as the frame is alive.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

#include "core/object.hpp"

namespace parmem {

class RootFrame;

class Local {
 public:
  Local() = default;
  // Slot accesses are relaxed atomics: under the local-heap runtime a
  // branch on one worker publishes into a parent slot while the
  // parent's worker may concurrently scan the same frame chain for its
  // leaf GC. Ordering comes from the fork2 join (done-flag acquire),
  // not from the slot itself.
  Object* get() const {
    return std::atomic_ref<Object*>(*slot_).load(std::memory_order_relaxed);
  }
  void set(Object* p) const {
    std::atomic_ref<Object*>(*slot_).store(p, std::memory_order_relaxed);
  }
  Object** slot() const { return slot_; }

 private:
  friend class RootFrame;
  explicit Local(Object** slot) : slot_(slot) {}
  Object** slot_ = nullptr;
};

class RootFrame {
 public:
  // Works for any context type exposing root_head_ref() -- keeps this
  // header independent of the runtime that owns the frame chain.
  template <class C>
  explicit RootFrame(C& ctx) : head_(ctx.root_head_ref()) {
    prev_ = *head_;
    *head_ = this;
  }
  RootFrame(const RootFrame&) = delete;
  RootFrame& operator=(const RootFrame&) = delete;

  ~RootFrame() {
    assert(*head_ == this && "root frames must nest stack-like");
    *head_ = prev_;
  }

  Local local(Object* p) {
    Object** slot = fresh_slot();
    *slot = p;
    return Local(slot);
  }

  RootFrame* prev() const { return prev_; }

  template <class Fn>
  void for_each_slot(Fn&& fn) {
    std::size_t n = count_;
    for (std::size_t i = 0; i < n && i < kInline; ++i) {
      fn(&inline_[i]);
    }
    if (n > kInline) {
      std::size_t left = n - kInline;
      for (auto& block : spill_) {
        std::size_t take = left < kSpillBlock ? left : kSpillBlock;
        for (std::size_t i = 0; i < take; ++i) {
          fn(&(*block)[i]);
        }
        left -= take;
        if (left == 0) {
          break;
        }
      }
    }
  }

 private:
  static constexpr std::size_t kInline = 16;
  static constexpr std::size_t kSpillBlock = 64;

  Object** fresh_slot() {
    std::size_t i = count_++;
    if (i < kInline) {
      return &inline_[i];
    }
    std::size_t si = i - kInline;
    std::size_t block = si / kSpillBlock;
    if (block == spill_.size()) {
      // Blocks are heap-stable so previously handed-out slots never move.
      spill_.push_back(
          std::make_unique<std::array<Object*, kSpillBlock>>());
    }
    return &(*spill_[block])[si % kSpillBlock];
  }

  RootFrame** head_;
  RootFrame* prev_ = nullptr;
  std::size_t count_ = 0;
  Object* inline_[kInline];
  std::vector<std::unique_ptr<std::array<Object*, kSpillBlock>>> spill_;
};

}  // namespace parmem
