// Per-thread runtime-phase tags: every thread that touches a runtime
// slow path carries a current Phase (mutator by default), maintained
// by RAII PhaseScopes at the phase transitions -- GC entry points,
// promotion, the scheduler's steal/park loops, safepoint-gate stalls.
//
// Consumers:
//   * the sampling profiler (core/profiler.hpp) tags every stack
//     sample with the sampled thread's current phase, so collapsed
//     stacks fold into per-phase flame graphs;
//   * the trace layer (core/trace.hpp) derives GC-pause kinds from the
//     ambient phase (a leaf collection run under a join-GC scope is a
//     join pause);
//   * the test watchdog dumps every worker's current phase on a hang,
//     so the dump says WHAT each stuck thread was doing.
//
// Cost model: scopes sit only on slow paths (a collection, a
// promotion, an idle steal loop), and a scope is one thread-local
// lookup plus two relaxed stores -- nothing on the nanosecond
// alloc/read/write fast paths, which never see a PhaseScope at all.
//
// The registry is a fixed array of cache-line-sized slots indexed by
// thread_shard_id() (mod kSlots); phases are relaxed atomics so the
// profiler's SIGPROF handler and the watchdog's SIGALRM handler can
// read them async-signal-safely. Two threads folding onto one slot
// (more than kSlots live threads) can interleave their phase stores --
// an observability smudge, never a correctness issue, because each
// scope restores the value it saved on its own stack.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/sig_io.hpp"
#include "core/stats.hpp"

namespace parmem::phase {

enum class Phase : std::uint8_t {
  kMutator = 0,
  kLeafGc,
  kJoinGc,
  kInternalGc,
  kGlobalGc,
  kParallelEvac,
  kPromotion,
  kSteal,
  kPark,
  kGateStall,
  kCount,
};

inline const char* name(Phase p) {
  switch (p) {
    case Phase::kMutator:      return "mutator";
    case Phase::kLeafGc:       return "leaf-GC";
    case Phase::kJoinGc:       return "join-GC";
    case Phase::kInternalGc:   return "internal-GC";
    case Phase::kGlobalGc:     return "global-GC";
    case Phase::kParallelEvac: return "parallel-evac";
    case Phase::kPromotion:    return "promotion";
    case Phase::kSteal:        return "steal";
    case Phase::kPark:         return "park";
    case Phase::kGateStall:    return "gate-stall";
    default:                   return "?";
  }
}

// Is `p` one of the collection phases? Used by the leaf collector to
// decide whether it is the top-level pause (record it) or a step of an
// enclosing join/internal/emergency pause (the encloser records).
inline bool is_gc(Phase p) {
  return p == Phase::kLeafGc || p == Phase::kJoinGc ||
         p == Phase::kInternalGc || p == Phase::kGlobalGc ||
         p == Phase::kParallelEvac;
}

inline constexpr unsigned kSlots = 64;  // power of two (slot = id & mask)

namespace detail {

struct alignas(64) Slot {
  std::atomic<std::uint8_t> phase{0};  // Phase, relaxed; 0 = kMutator
  std::atomic<std::uint8_t> touched{0};
};

inline Slot* slots() {
  static Slot table[kSlots];
  return table;
}

inline Slot& my_slot() {
  return slots()[thread_shard_id() & (kSlots - 1)];
}

}  // namespace detail

// The calling thread's slot index (for the trace/profiler layers,
// which key their per-worker rings the same way).
inline unsigned my_slot_index() { return thread_shard_id() & (kSlots - 1); }

inline Phase current() {
  return static_cast<Phase>(
      detail::my_slot().phase.load(std::memory_order_relaxed));
}

class PhaseScope {
 public:
  explicit PhaseScope(Phase p) : slot_(&detail::my_slot()) {
    saved_ = slot_->phase.load(std::memory_order_relaxed);
    slot_->phase.store(static_cast<std::uint8_t>(p),
                       std::memory_order_relaxed);
    slot_->touched.store(1, std::memory_order_relaxed);
  }
  ~PhaseScope() { slot_->phase.store(saved_, std::memory_order_relaxed); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  detail::Slot* slot_;
  std::uint8_t saved_;
};

// Watchdog dump: async-signal-safe (relaxed atomic loads + write(2)).
// Prints the current phase of every slot a thread has ever scoped.
inline void dump(int fd) {
  parmem::detail::sig_write(fd, "worker phases:");
  bool any = false;
  for (unsigned i = 0; i < kSlots; ++i) {
    detail::Slot& s = detail::slots()[i];
    if (s.touched.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    any = true;
    parmem::detail::sig_write(fd, " [");
    parmem::detail::sig_write_i64(fd, i);
    parmem::detail::sig_write(fd, "]=");
    parmem::detail::sig_write(
        fd, name(static_cast<Phase>(
                s.phase.load(std::memory_order_relaxed))));
  }
  if (!any) {
    parmem::detail::sig_write(fd, " (none scoped yet)");
  }
  parmem::detail::sig_write(fd, "\n");
}

}  // namespace parmem::phase
