// Heap object layout, engineered so the paper's cheap rows really are
// cheap:
//
//   [ fwd : 8B ][ meta : 8B ][ scalars... ][ pointers... ]
//
// Scalars come FIRST so an immutable i64 read is a single load at a
// statically known offset -- no meta decode, no barrier. Pointer-field
// access needs nscalar from meta, but every pointer op already pays a
// barrier so the extra load is noise.
//
// `fwd` doubles as (a) the promotion forwarding pointer ("the master
// copy now lives up there"), (b) the Cheney forwarding pointer during
// leaf GC, and (c) the claim word for fine-grained promotion (value
// kBusy while a claimer is copying).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace parmem {

class Object {
 public:
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::size_t kAlign = 16;

  // Fine-grained promotion claim sentinel; never a valid object address.
  static Object* busy_sentinel() { return reinterpret_cast<Object*>(1); }

  static constexpr std::size_t size_bytes(std::uint32_t nptr,
                                          std::uint32_t nscalar) {
    std::size_t raw = kHeaderBytes + 8u * (std::size_t{nptr} + nscalar);
    return (raw + (kAlign - 1)) & ~(kAlign - 1);
  }

  void init_header(std::uint32_t nptr, std::uint32_t nscalar) {
    fwd_.store(nullptr, std::memory_order_relaxed);
    meta_ = (std::uint64_t{nscalar} << 32) | nptr;
  }

  std::uint32_t nptr() const { return static_cast<std::uint32_t>(meta_); }
  std::uint32_t nscalar() const {
    return static_cast<std::uint32_t>(meta_ >> 32);
  }
  std::uint64_t meta_word() const { return meta_; }
  std::size_t size() const { return size_bytes(nptr(), nscalar()); }

  std::int64_t* scalars() {
    return reinterpret_cast<std::int64_t*>(reinterpret_cast<char*>(this) +
                                           kHeaderBytes);
  }
  const std::int64_t* scalars() const {
    return const_cast<Object*>(this)->scalars();
  }
  Object** ptrs() { return reinterpret_cast<Object**>(scalars() + nscalar()); }

  std::int64_t scalar(std::uint32_t i) const { return scalars()[i]; }
  void set_scalar(std::uint32_t i, std::int64_t v) { scalars()[i] = v; }

  Object* ptr(std::uint32_t i) {
    return std::atomic_ref<Object*>(ptrs()[i]).load(std::memory_order_acquire);
  }
  void set_ptr(std::uint32_t i, Object* v) {
    std::atomic_ref<Object*>(ptrs()[i]).store(v, std::memory_order_release);
  }
  void set_ptr_relaxed(std::uint32_t i, Object* v) { ptrs()[i] = v; }

  // Plain (barrier-free) stores for single-task graph construction
  // outside any runtime Ctx -- standalone-heap builders in benches and
  // tests. Not safe once the object is visible to another task.
  void store_i64_plain(std::uint32_t i, std::int64_t v) { set_scalar(i, v); }
  void store_ptr_plain(std::uint32_t i, Object* v) { set_ptr_relaxed(i, v); }

  // The forwarding word aliased as a plain pointer slot, so collectors
  // can treat stale promotion-forwarding edges as roots (a stale copy
  // whose master lives in a heap under collection keeps that master
  // alive, and the slot must be rewritten when the master moves).
  // std::atomic<Object*> has the representation of Object* on every
  // supported ABI (asserted below); the slot is only handed out while
  // the mutators that could touch this word are stopped.
  Object** fwd_slot() { return reinterpret_cast<Object**>(&fwd_); }

  Object* fwd_acquire() const { return fwd_.load(std::memory_order_acquire); }
  Object* fwd_relaxed() const { return fwd_.load(std::memory_order_relaxed); }
  void set_fwd(Object* f, std::memory_order mo = std::memory_order_release) {
    fwd_.store(f, mo);
  }
  bool claim_fwd() {  // fine-grained promotion: null -> kBusy
    Object* expect = nullptr;
    return fwd_.compare_exchange_strong(expect, busy_sentinel(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }

  // Follow the forwarding chain to the master copy. One predictable
  // not-taken branch for unpromoted objects; spins past in-flight
  // fine-grained claims. Force-inlined: this IS the mutable-barrier
  // fast path, and once the runtime translation unit grew past the
  // inliner's unit-growth budget gcc started outlining it, tripling
  // the fig08 barrier rows.
  [[gnu::always_inline]] static inline Object* chase(Object* o) {
    Object* f = o->fwd_.load(std::memory_order_acquire);
    while (f != nullptr) {
      if (f == busy_sentinel()) {
        // A concurrent fine-grained promotion is mid-copy; the claimer
        // installs the real pointer shortly.
        f = o->fwd_.load(std::memory_order_acquire);
        continue;
      }
      o = f;
      f = o->fwd_.load(std::memory_order_acquire);
    }
    return o;
  }

  void zero_fields() {
    std::uint64_t* p = reinterpret_cast<std::uint64_t*>(scalars());
    std::size_t n = std::size_t{nptr()} + nscalar();
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = 0;
    }
  }

 private:
  std::atomic<Object*> fwd_;
  std::uint64_t meta_;
};

static_assert(sizeof(Object) == Object::kHeaderBytes,
              "object header must be exactly two words");
static_assert(sizeof(std::atomic<Object*>) == sizeof(Object*) &&
                  alignof(std::atomic<Object*>) == alignof(Object*),
              "fwd_slot() aliases the atomic forwarding word as Object*");

// Footprint of an object with `nptr` pointer and `nscalar` i64 fields
// -- what raw allocators (HeapRecord::allocate_raw) must reserve.
inline constexpr std::size_t object_bytes(std::uint32_t nptr,
                                          std::uint32_t nscalar) {
  return Object::size_bytes(nptr, nscalar);
}

// Place an object header over raw heap memory (allocate_raw result)
// and zero its fields.
inline Object* init_object(void* mem, std::uint32_t nptr,
                           std::uint32_t nscalar) {
  Object* o = reinterpret_cast<Object*>(mem);
  o->init_header(nptr, nscalar);
  o->zero_fields();
  return o;
}

}  // namespace parmem
