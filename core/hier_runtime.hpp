// Hierarchical-heap runtime (Guatto et al., PPoPP 2018): a tree of
// task-local heaps mirroring the fork-join tree, with object promotion
// on entangling pointer writes. The fast paths are engineered to stay
// at a handful of instructions:
//
//   ctx.alloc(np, ns)      pointer bump + overflow check, no locks
//   Ctx::read_i64_imm      one load (scalars sit at a fixed offset)
//   Ctx::read_i64_mut      one forwarding-word check, then the load
//   Ctx::write_i64         one forwarding-word check, then the store
//   ctx.write_ptr          two heap lookups (mask+load) on the
//                          leaf-local path; locking/promotion only on
//                          entangling stores into ancestor heaps
//
// fork2 splits the current leaf into two child leaves on a
// work-stealing pool and merges them back at the join -- child objects
// keep their addresses, so results flow to the parent without copying
// and balanced programs promote nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>

#include "core/gc_leaf.hpp"
#include "core/gc_parallel.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/promote.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class HierRuntime {
 public:
  static constexpr const char* kName = "hier";

  struct Options {
    unsigned workers = 0;  // 0 = one per hardware thread
    PromotionMode promotion = PromotionMode::kCoarseLocking;
    std::size_t gc_min_budget = std::size_t{4} << 20;  // leaf bytes before GC
    std::size_t gc_join_threshold = 0;  // 0 = no collection at joins
    double gc_growth_factor = 8.0;      // budget = max(min, factor * live)
    // Team size for join-time subtree collections (core/gc_parallel.hpp);
    // 0 or 1 keeps them sequential. Only the quiesced just-merged
    // subtree is evacuated, so the team runs concurrently with every
    // other task: no task outside the subtree can hold a reference into
    // it (the hierarchy invariant plus fork-join reachability), and
    // foreign objects are only ever chased, never claimed. The team is
    // spawned as fresh threads per collection (~0.1 ms of spawn/join),
    // so pair it with a gc_join_threshold large enough -- several MB of
    // merged subtree -- for the parallel copy to amortize that.
    unsigned gc_parallel_team = 0;
  };

  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    // Allocate an object with `nptr` pointer fields and `nscalar` i64
    // fields, all zeroed. 16-byte aligned. May run a leaf collection
    // on chunk overflow, so unrooted raw Object* must not be held
    // across calls.
    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = heap_->try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    // Initialising store: the object is fresh and unpublished.
    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // Immutable read: a single load. Correct even through a stale
    // promoted copy, because promotion copies field-for-field and
    // immutable data never changes afterwards.
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }

    // Mutable accessors: one forwarding-word check finds the master
    // copy (a promoted object's writes all land there).
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return Object::chase(o)->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      Object::chase(o)->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return Object::chase(o)->ptr(i);
    }

    // Pointer write barrier. Leaf-local targets store directly; stores
    // into an ancestor heap take that heap's lock (coarse mode); and a
    // store that would point DOWN the tree promotes the value's
    // closure into the target heap first.
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o = Object::chase(o);
      if (v != nullptr) {
        v = Object::chase(v);
      }
      if (__builtin_expect(heap_of(o) == heap_, 1)) {
        o->set_ptr_relaxed(idx, v);
        return;
      }
      distant_write_ptr(o, idx, v);
    }

    // Runtime-API publication point: under hierarchical heaps a child's
    // objects flow to the parent by the join-time heap merge, so this
    // is the identity (the zero-promotion story of the paper).
    Object* publish(Object* v) {
      return v != nullptr ? Object::chase(v) : nullptr;
    }

    // Force a leaf collection now (also used at joins when
    // gc_join_threshold is set).
    void collect_now() {
      std::size_t live = leaf_gc_collect(heap_, &rt_->stats_,
                                         [this](auto&& fn) {
                                           for (RootFrame* f = frames_;
                                                f != nullptr; f = f->prev()) {
                                             f->for_each_slot(fn);
                                           }
                                         });
      rescale_budget(live);
    }

    // Team evacuation of this task's (quiesced) heap -- the join-time
    // path when Options::gc_parallel_team > 1. Same roots and same
    // survivors as collect_now(), just copied by `team` workers.
    void parallel_collect_now(unsigned team) {
      core::ParallelCollector pc(rt_->chunks_, std::vector<Heap*>{heap_},
                                 core::ParallelGcOptions{team, 128});
      core::ParallelGcOutcome out = pc.collect([this](auto&& fn) {
        for (RootFrame* f = frames_; f != nullptr; f = f->prev()) {
          f->for_each_slot(fn);
        }
      });
      rt_->stats_.gc_count.fetch_add(1, std::memory_order_relaxed);
      rt_->stats_.gc_bytes_copied.fetch_add(out.totals.bytes_copied,
                                            std::memory_order_relaxed);
      // gc_ns aggregates per-worker busy time, like concurrent leaf
      // collections do (NOT wall * team: spawn/join overhead and the
      // other workers' lifetimes are not this team's copy work).
      rt_->stats_.gc_ns.fetch_add(out.totals.busy_ns,
                                  std::memory_order_relaxed);
      rescale_budget(out.totals.bytes_copied);
    }

    HierRuntime& runtime() { return *rt_; }
    Heap* leaf_heap() { return heap_; }
    RootFrame** root_head_ref() { return &frames_; }

    // SpawnedBranch hooks: hierarchical branch contexts need no
    // per-thread setup (the child heap was created by fork2).
    void branch_enter() {}
    void branch_exit() {}

   private:
    friend class HierRuntime;

    Ctx(HierRuntime* rt, Heap* heap)
        : rt_(rt),
          heap_(heap),
          mode_(rt->opts_.promotion),
          gc_budget_(rt->opts_.gc_min_budget) {}

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      if (heap_->chunk_bytes() >= gc_budget_) {
        collect_now();
      }
      Object* o = heap_->bump_alloc(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    void rescale_budget(std::size_t live) {
      auto scaled = static_cast<std::size_t>(
          static_cast<double>(live) * rt_->opts_.gc_growth_factor);
      gc_budget_ = scaled > rt_->opts_.gc_min_budget
                       ? scaled
                       : rt_->opts_.gc_min_budget;
    }

    void distant_write_ptr(Object* o, std::uint32_t idx, Object* v) {
      for (;;) {
        Object* d = Object::chase(o);
        Heap* hd = heap_of(d);
        if (v != nullptr && heap_of(v)->depth() > hd->depth()) {
          promote_and_store(d, idx, v, heap_, mode_, &rt_->stats_);
          return;
        }
        if (mode_ == PromotionMode::kFineGrained) {
          d->set_ptr(idx, v);
          return;
        }
        {
          std::lock_guard<std::mutex> g(hd->path_lock());
          Object* d2 = Object::chase(d);
          if (heap_of(d2) == hd) {
            d2->set_ptr(idx, v);
            return;
          }
          o = d2;  // target moved up mid-flight; redo against its new heap
        }
      }
    }

    HierRuntime* rt_;
    Heap* heap_;
    PromotionMode mode_;
    std::size_t gc_budget_;
    RootFrame* frames_ = nullptr;
  };

  HierRuntime() : HierRuntime(Options{}) {}
  explicit HierRuntime(const Options& opts)
      : opts_(opts), pool_(opts.workers) {}
  HierRuntime(const HierRuntime&) = delete;
  HierRuntime& operator=(const HierRuntime&) = delete;

  const Options& options() const { return opts_; }
  unsigned workers() const { return pool_.workers(); }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }

  // Execute `f(ctx)` as the root task, on the calling thread, with a
  // fresh depth-0 heap that is torn down when f returns.
  template <class F>
  auto run(F&& f) {
    WorkStealPool::Scope scope(&pool_);
    Heap root(nullptr, 0, &chunks_);
    Ctx ctx(this, &root);
    return f(ctx);
  }

  // Fork-join: split the current leaf heap, run f and g in parallel in
  // fresh child leaves, merge both back (objects keep their
  // addresses), and return {f result, g result}. A void branch yields
  // std::monostate in its pair slot. `roots` documents the parent
  // locals both branches may touch; their slots stay valid because
  // they live in the parent's frames.
  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    (void)roots;
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;

    HierRuntime* rt = ctx.rt_;
    rt->stats_.forks.fetch_add(1, std::memory_order_relaxed);
    Heap* parent = ctx.heap_;

    Heap heap_a(parent, parent->depth() + 1, &rt->chunks_);
    Heap heap_b(parent, parent->depth() + 1, &rt->chunks_);
    Ctx ctx_a(rt, &heap_a);
    Ctx ctx_b(rt, &heap_b);

    rtapi::SpawnedBranch<Ctx, std::remove_reference_t<G>> task_b(
        &rt->pool_, g, ctx_b);

    std::optional<RA> ra;
    std::exception_ptr err_a;
    try {
      ra.emplace(rtapi::invoke_branch(f, ctx_a));
    } catch (...) {
      err_a = std::current_exception();
    }
    task_b.join(err_a != nullptr);

    parent->merge_from(heap_a);
    parent->merge_from(heap_b);
    if (rt->opts_.gc_join_threshold != 0 &&
        parent->allocated_bytes() >= rt->opts_.gc_join_threshold) {
      // Join-time subtree collection: the two-sibling subtree just
      // merged into `parent` is quiesced (both branches joined), so it
      // can be evacuated here -- by a team when gc_parallel_team asks
      // for one. Only sound when branch results carry no unrooted
      // Object* (publish via promotion instead).
      if (rt->opts_.gc_parallel_team > 1) {
        ctx.parallel_collect_now(rt->opts_.gc_parallel_team);
      } else {
        ctx.collect_now();
      }
    }

    if (err_a) {
      std::rethrow_exception(err_a);
    }
    if (task_b.error()) {
      std::rethrow_exception(task_b.error());
    }
    return std::pair<RA, RB>(std::move(*ra), task_b.take_result());
  }

 private:
  Options opts_;
  ChunkPool chunks_;
  StatsCell stats_;
  WorkStealPool pool_;
};

static_assert(RuntimeLike<HierRuntime>);

}  // namespace parmem
