// Hierarchical-heap runtime (Guatto et al., PPoPP 2018): a tree of
// task-local heaps mirroring the fork-join tree, with object promotion
// on entangling pointer writes. The fast paths are engineered to stay
// at a handful of instructions:
//
//   ctx.alloc(np, ns)      pointer bump + overflow check, no locks
//   Ctx::read_i64_imm      one load (scalars sit at a fixed offset)
//   Ctx::read_i64_mut      one forwarding-word check, then the load
//   Ctx::write_i64         one forwarding-word check, then the store
//   ctx.write_ptr          two heap lookups (mask+load) on the
//                          leaf-local path; locking/promotion only on
//                          entangling stores into ancestor heaps
//
// fork2 splits the current leaf into two child leaves on a
// work-stealing pool and merges them back at the join -- child objects
// keep their addresses, so results flow to the parent without copying
// and balanced programs promote nothing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "core/failpoint.hpp"
#include "core/gc_internal.hpp"
#include "core/gc_leaf.hpp"
#include "core/gc_parallel.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"
#include "core/profiler.hpp"
#include "core/promote.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"
#include "core/stats_json.hpp"
#include "core/trace.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class HierRuntime {
 public:
  static constexpr const char* kName = "hier";

  struct Options {
    unsigned workers = 0;  // 0 = one per hardware thread
    PromotionMode promotion = PromotionMode::kCoarseLocking;
    std::size_t gc_min_budget = std::size_t{4} << 20;  // leaf bytes before GC
    std::size_t gc_join_threshold = 0;  // 0 = no collection at joins
    double gc_growth_factor = 8.0;      // budget = max(min, factor * live)
    // Team size for join-time subtree collections (core/gc_parallel.hpp);
    // 0 or 1 keeps them sequential. Only the quiesced just-merged
    // subtree is evacuated, so the team runs concurrently with every
    // other task: no task outside the subtree can hold a reference into
    // it (the hierarchy invariant plus fork-join reachability), and
    // foreign objects are only ever chased, never claimed. The team is
    // spawned as fresh threads per collection (~0.1 ms of spawn/join),
    // so pair it with a gc_join_threshold large enough -- several MB of
    // merged subtree -- for the parallel copy to amortize that.
    unsigned gc_parallel_team = 0;
    // Hierarchy-aware internal-heap collection (core/gc_internal.hpp):
    // when a promotion pushes a heap's promoted-into bytes past this
    // threshold, the next task to reach a safepoint (allocation slow
    // path or fork2 boundary) pauses the running set and collects every
    // such heap in place -- so promotion chains into a BUSY internal
    // heap no longer accumulate until its owner rejoins. 0 disables.
    // gc_parallel_team > 1 applies the same team to these collections.
    std::size_t gc_internal_threshold = 0;
    // GC-stress differential-testing mode: force a leaf collection and
    // a join collection at every safepoint and ring the internal-
    // collection doorbell with a 1-byte threshold, so every collector
    // runs constantly. Checksums must be unchanged under it. Also
    // forced on for every HierRuntime when the PARMEM_GC_STRESS
    // environment variable is set (and not "0").
    bool gc_stress = false;
    // Hard cap on pool bytes; 0 = PARMEM_HEAP_BUDGET, else unlimited.
    // A nonzero budget enables the safepoint machinery (like
    // gc_internal_threshold does), because the emergency cascade's
    // last rung is a stopped-world collection of every live heap:
    // leaf, then all heaps deepest-first, then one allocation retry
    // before parmem::OutOfMemory reaches the program.
    std::size_t heap_budget_bytes = 0;
    // Deterministic allocation-fault injection, e.g.
    // "chunk_alloc=fail@3;promote_copy=every(100)". Installed into the
    // process-wide registry (core/failpoint.hpp); "" = none.
    std::string failpoints;
    // Append one JSON line of counters + pause-histogram summaries to
    // this file when the runtime is destroyed (core/stats_json.hpp).
    // "" = use PARMEM_STATS_JSON, or no export if that is unset too.
    std::string stats_json_path;
  };

  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    // Allocate an object with `nptr` pointer fields and `nscalar` i64
    // fields, all zeroed. 16-byte aligned. May run a leaf collection
    // on chunk overflow, so unrooted raw Object* must not be held
    // across calls.
    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = heap_->try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    // Initialising store: the object is fresh and unpublished.
    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // Immutable read: a single load. Correct even through a stale
    // promoted copy, because promotion copies field-for-field and
    // immutable data never changes afterwards.
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }

    // Mutable accessors: one forwarding-word check finds the master
    // copy (a promoted object's writes all land there).
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return Object::chase(o)->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      Object::chase(o)->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return Object::chase(o)->ptr(i);
    }

    // Pointer write barrier. Leaf-local targets store directly; stores
    // into an ancestor heap take that heap's lock (coarse mode); and a
    // store that would point DOWN the tree promotes the value's
    // closure into the target heap first.
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o = Object::chase(o);
      if (v != nullptr) {
        v = Object::chase(v);
      }
      if (__builtin_expect(heap_of(o) == heap_, 1)) {
        o->set_ptr_relaxed(idx, v);
        return;
      }
      distant_write_ptr(o, idx, v);
    }

    // Runtime-API publication point: under hierarchical heaps a child's
    // objects flow to the parent by the join-time heap merge, so this
    // is the identity (the zero-promotion story of the paper).
    Object* publish(Object* v) {
      return v != nullptr ? Object::chase(v) : nullptr;
    }

    // Force a leaf collection now (also used at joins when
    // gc_join_threshold is set). A no-op on an empty heap: no stats
    // churn, no budget rescale, and the chunk-doubling schedule keeps
    // whatever step it had reached.
    //
    // Roots are this task's own frames PLUS every ancestor's: an
    // ancestor Local CAN be the only reference into this heap (a
    // branch publishes its result into an ancestor's Local, and the
    // object merges up into this heap at an intermediate join).
    // Walking the ancestor chain from a RUNNING task is sound because
    // each ancestor sits blocked in fork2 between spawn and join, and
    // a frame chain's STRUCTURE is only ever mutated by its owner
    // task's thread -- so ancestor chains are frozen for this task's
    // whole lifetime. Slot VALUES can be written concurrently by
    // sibling subtrees publishing into the same ancestor's other
    // Locals (slot accesses are atomic, core/roots.hpp), but a slot
    // holding a pointer into THIS heap was necessarily installed by
    // this task's own subtree, and a running sibling never writes
    // those under the runtime-api publish contract -- so the
    // collector's conditional rewrite (only slots pointing into this
    // heap's from-space) never races a concurrent store.
    void collect_now() {
      if (heap_->chunks() == nullptr) {
        return;
      }
      std::size_t live = leaf_gc_collect(heap_, &rt_->stats_.local(),
                                         [this](auto&& fn) {
                                           for (Ctx* c = this; c != nullptr;
                                                c = c->parent_) {
                                             for (RootFrame* f = c->frames_;
                                                  f != nullptr;
                                                  f = f->prev()) {
                                               f->for_each_slot(fn);
                                             }
                                           }
                                         });
      rescale_budget(live);
    }

    // Force a hierarchy-aware internal collection cycle from this
    // task's safepoint (the caller must hold no raw Object* -- same
    // contract as alloc): pauses the running set and collects every
    // heap holding promoted-into bytes, however busy its owner. A
    // no-op unless internal collection or GC-stress is enabled.
    void collect_internal_now() {
      if (!rt_->sp_enabled_) {
        return;
      }
      if (rt_->gate_.pending()) {
        rt_->gate_.park();
        return;
      }
      rt_->drive_internal_gc(/*forced=*/true);
    }

    // Team evacuation of this task's (quiesced) heap -- the join-time
    // path when Options::gc_parallel_team > 1. Same roots and same
    // survivors as collect_now(), just copied by `team` workers.
    void parallel_collect_now(unsigned team) {
      const std::uint64_t trace_t0 = trace::now_ns();
      core::ParallelCollector pc(rt_->chunks_, std::vector<Heap*>{heap_},
                                 core::ParallelGcOptions{team, 128});
      core::ParallelGcOutcome out = pc.collect([this](auto&& fn) {
        for (RootFrame* f = frames_; f != nullptr; f = f->prev()) {
          f->for_each_slot(fn);
        }
      });
      // Bills gc_count directly (no leaf_gc_collect underneath), so it
      // records its own pause event; dur is the pause wall time, not
      // the team's summed busy time.
      trace::record_gc_pause(trace::Ev::kGcLeaf, trace_t0, out.wall_ns,
                             out.totals.bytes_copied);
      rt_->stats_.local().gc_count.fetch_add(1, std::memory_order_relaxed);
      rt_->stats_.local().gc_bytes_copied.fetch_add(out.totals.bytes_copied,
                                            std::memory_order_relaxed);
      // gc_ns aggregates per-worker busy time, like concurrent leaf
      // collections do (NOT wall * team: spawn/join overhead and the
      // other workers' lifetimes are not this team's copy work).
      rt_->stats_.local().gc_ns.fetch_add(out.totals.busy_ns,
                                  std::memory_order_relaxed);
      rescale_budget(out.totals.bytes_copied);
    }

    HierRuntime& runtime() { return *rt_; }
    Heap* leaf_heap() { return heap_; }
    RootFrame** root_head_ref() { return &frames_; }

    // SpawnedBranch hooks: when internal collection is enabled a branch
    // joins the running set for exactly the span of its execution
    // (entry blocks while a stop is pending; exit wakes a driver
    // waiting on the running count). Otherwise no per-thread setup.
    void branch_enter() {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->gate_.activate(rt_->pool_.current_index());
      }
    }
    void branch_exit() {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->gate_.deactivate(rt_->pool_.current_index());
      }
    }

   private:
    friend class HierRuntime;

    Ctx(HierRuntime* rt, Heap* heap, Ctx* parent = nullptr)
        : rt_(rt),
          heap_(heap),
          parent_(parent),
          mode_(rt->opts_.promotion),
          gc_budget_(rt->opts_.gc_min_budget) {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->register_ctx(this);
      }
    }

    ~Ctx() {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->deregister_ctx(this);
      }
    }

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        // The allocation slow path is a safepoint: no raw Object* may
        // be held across alloc, so a pending internal collection can
        // relocate while we park (or while we drive it ourselves).
        rt_->safepoint();
        if (rt_->opts_.gc_stress) {
          collect_now();  // stress: leaf collection at every safepoint
        }
      }
      if (heap_->chunk_bytes() >= gc_budget_) {
        collect_now();
      }
      Object* o;
      try {
        o = heap_->bump_alloc(nptr, nscalar);
      } catch (const OutOfMemory&) {
        emergency_collect();
        o = heap_->bump_alloc(nptr, nscalar);  // retry exactly once
      }
      o->zero_fields();
      return o;
    }

    // The budget (or an injected chunk fault) refused an allocation:
    // climb the collection cascade, cheapest rung first.
    //   1. this task's own leaf (no coordination needed);
    //   2. with the safepoint machinery on, a stopped-world sweep of
    //      EVERY live heap, deepest first -- join heaps and promoted-
    //      into internal heaps included.
    // The caller then retries the allocation once; a second failure is
    // the program's real OOM.
    void emergency_collect() {
      const std::uint64_t trace_t0 = trace::now_ns();
      const std::uint64_t live_before = rt_->chunks_.live_bytes();
      rt_->stats_.local().emergency_gcs.fetch_add(1, std::memory_order_relaxed);
      collect_now();
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->drive_emergency_gc();
      }
      // One event spanning the whole cascade; its constituent
      // collections also recorded individually above.
      trace::record_emergency(trace_t0, trace::now_ns() - trace_t0,
                              live_before);
    }

    void rescale_budget(std::size_t live) {
      auto scaled = static_cast<std::size_t>(
          static_cast<double>(live) * rt_->opts_.gc_growth_factor);
      gc_budget_ = scaled > rt_->opts_.gc_min_budget
                       ? scaled
                       : rt_->opts_.gc_min_budget;
    }

    void distant_write_ptr(Object* o, std::uint32_t idx, Object* v) {
      for (;;) {
        Object* d = Object::chase(o);
        Heap* hd = heap_of(d);
        if (v != nullptr && heap_of(v)->depth() > hd->depth()) {
          promote_and_store(d, idx, v, heap_, mode_, &rt_->stats_.local());
          if (__builtin_expect(rt_->sp_enabled_, 0)) {
            // Only a doorbell: the caller may legally hold raw
            // pointers across write_ptr, so the collection itself
            // waits for everyone's next allocation/fork safepoint.
            rt_->note_internal_pressure(heap_of(Object::chase(d)));
          }
          return;
        }
        if (mode_ == PromotionMode::kFineGrained) {
          d->set_ptr(idx, v);
          return;
        }
        {
          std::lock_guard<std::mutex> g(hd->path_lock());
          Object* d2 = Object::chase(d);
          if (heap_of(d2) == hd) {
            d2->set_ptr(idx, v);
            return;
          }
          o = d2;  // target moved up mid-flight; redo against its new heap
        }
      }
    }

    HierRuntime* rt_;
    Heap* heap_;
    // Forking context, or nullptr for the root task. Ancestors are
    // blocked in fork2 for this context's whole lifetime, so the chain
    // is stable; collect_now roots from every frame chain along it.
    Ctx* parent_ = nullptr;
    PromotionMode mode_;
    std::size_t gc_budget_;
    RootFrame* frames_ = nullptr;
    // Intrusive per-worker registry links, guarded by the home slot's
    // ctx_lock. Deliberately NOT default-initialised: they are written
    // by register_ctx and only read while registered, and fork2 makes
    // two Ctxs per call -- dead stores here show up in the fork row.
    Ctx* reg_prev_;
    Ctx* reg_next_;
    unsigned home_slot_;
  };

  HierRuntime() : HierRuntime(Options{}) {}
  explicit HierRuntime(const Options& opts)
      : opts_(opts),
        pool_(opts.workers),
        gate_(pool_.workers()),
        slots_(pool_.workers()) {
    if (!opts_.gc_stress && gc_stress_env()) {
      opts_.gc_stress = true;
    }
    if (opts_.gc_internal_threshold == 0) {
      opts_.gc_internal_threshold = internal_gc_threshold_env();
    }
    env::install_failpoints_env();
    trace::init_from_env();
    profiler::init_from_env();
    profiler::note_stack_hi();
    chunks_.set_budget(effective_heap_budget(opts_.heap_budget_bytes));
    if (!opts_.failpoints.empty()) {
      failpoint::install(opts_.failpoints);
    }
    // A nonzero join threshold enables the safepoint machinery too
    // (same escalation the budget uses): join collections must root
    // from EVERY task's frames, because a branch may publish its
    // result into an arbitrary ancestor Local -- the single-frame
    // collect_now path would drop such a result during the merge.
    sp_enabled_ = opts_.gc_stress || opts_.gc_internal_threshold != 0 ||
                  opts_.gc_join_threshold != 0 || chunks_.budget() != 0;
  }
  HierRuntime(const HierRuntime&) = delete;
  HierRuntime& operator=(const HierRuntime&) = delete;

  ~HierRuntime() {
    StatsSnapshot snap;
    snap.stats = stats_.snapshot();
    snap.live_bytes = chunks_.live_bytes();
    snap.peak_bytes = chunks_.peak_bytes();
    stats_json::write(stats_json::resolve_path(opts_.stats_json_path), kName,
                      snap);
  }

  const Options& options() const { return opts_; }
  unsigned workers() const { return pool_.workers(); }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }
  // Scheduler idle churn (timed-out parks); see WorkStealPool. The
  // serve-harness quiescence test asserts this stays near zero while
  // the runtime sits idle between request bursts.
  std::uint64_t scheduler_idle_wakeups() const {
    return pool_.idle_wakeups();
  }

  // Execute `f(ctx)` as the root task, on the calling thread, with a
  // fresh depth-0 heap that is torn down when f returns.
  template <class F>
  auto run(F&& f) {
    WorkStealPool::Scope scope(&pool_);
    Heap root(nullptr, 0, &chunks_);
    Ctx ctx(this, &root);
    // With internal collection enabled the root task is a member of
    // the running set for the whole run (leaving it only inside fork2
    // joins, like every other task).
    struct ActiveScope {
      HierRuntime* rt;
      explicit ActiveScope(HierRuntime* r) : rt(r) {
        if (rt->sp_enabled_) {
          rt->gate_.activate(rt->pool_.current_index());
        }
      }
      ~ActiveScope() {
        if (rt->sp_enabled_) {
          rt->gate_.deactivate(rt->pool_.current_index());
        }
      }
      ActiveScope(const ActiveScope&) = delete;
      ActiveScope& operator=(const ActiveScope&) = delete;
    } act(this);
    return f(ctx);
  }

  // Fork-join: split the current leaf heap, run f and g in parallel in
  // fresh child leaves, merge both back (objects keep their
  // addresses), and return {f result, g result}. A void branch yields
  // std::monostate in its pair slot. `roots` documents the parent
  // locals both branches may touch; their slots stay valid because
  // they live in the parent's frames.
  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    (void)roots;
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;

    HierRuntime* rt = ctx.rt_;
    rt->stats_.local().forks.fetch_add(1, std::memory_order_relaxed);
    Heap* parent = ctx.heap_;

    Heap heap_a(parent, parent->depth() + 1, &rt->chunks_);
    Heap heap_b(parent, parent->depth() + 1, &rt->chunks_);
    Ctx ctx_a(rt, &heap_a, &ctx);
    Ctx ctx_b(rt, &heap_b, &ctx);

    // Both result channels push a Local onto the PARENT's frame chain
    // (a plain-pointer list stopped-world collections scan), so they
    // are constructed BEFORE the parent leaves the running set below
    // -- a push after deactivation could race a collector already
    // walking the chain. Spawning before deactivating is fine: the
    // parent never blocks until the join.
    rtapi::ResultChannel<Ctx, RA> ch_a(ctx);
    rtapi::SpawnedBranch<Ctx, std::remove_reference_t<G>> task_b(
        &rt->pool_, g, ctx_b, ctx);

    const bool sp = rt->sp_enabled_;
    if (__builtin_expect(sp, 0)) {
      rt->fork_enter_safepoint();
    }

    std::exception_ptr err_a;
    ctx_a.branch_enter();
    try {
      ch_a.store(ctx_a, rtapi::invoke_branch(f, ctx_a));
    } catch (...) {
      err_a = std::current_exception();
    }
    ctx_a.branch_exit();
    task_b.join(err_a != nullptr);

    if (__builtin_expect(sp, 0)) {
      rt->fork_exit_reactivate();
    }

    parent->merge_from(heap_a);
    parent->merge_from(heap_b);
    if ((rt->opts_.gc_join_threshold != 0 &&
         parent->allocated_bytes() >= rt->opts_.gc_join_threshold) ||
        __builtin_expect(rt->opts_.gc_stress, 0)) {
      // Join-time subtree collection: the two-sibling subtree just
      // merged into `parent` is quiesced (both branches joined), so it
      // can be evacuated here -- by a team when gc_parallel_team asks
      // for one (stopped_collect_heap applies it). GC-stress forces it
      // at every join. Both trigger conditions imply sp_enabled_ (see
      // the constructor), so the collection always stops the world and
      // roots from EVERY task's frames: results published into
      // arbitrary ancestor Locals survive the merge, which the
      // single-frame collect_now path used to drop.
      assert(sp && "join collection without the safepoint machinery");
      rt->stopped_join_collect(&ctx);
    }

    if (err_a) {
      std::rethrow_exception(err_a);
    }
    if (task_b.error()) {
      std::rethrow_exception(task_b.error());
    }
    return std::pair<RA, RB>(ch_a.take(), task_b.take_result());
  }

  // Test/debug hook: snapshot every live heap (one per task context;
  // populated only while internal collection or GC-stress is enabled).
  std::vector<Heap*> snapshot_heaps() {
    std::vector<Heap*> heaps;
    for (WorkerSlot& s : slots_) {
      std::lock_guard<SpinLock> g(s.ctx_lock);
      for (Ctx* c = s.ctx_head; c != nullptr; c = c->reg_next_) {
        heaps.push_back(c->heap_);
      }
    }
    return heaps;
  }

 private:
  static bool gc_stress_env() {
    static const bool on = [] {
      const char* v = std::getenv("PARMEM_GC_STRESS");
      return v != nullptr && v[0] != '\0' &&
             !(v[0] == '0' && v[1] == '\0');
    }();
    return on;
  }

  // PARMEM_INTERNAL_GC_THRESHOLD=bytes: force internal-heap collection
  // on for runtimes whose Options leave it off -- lets the profiling /
  // flame-diff workflow (scripts/flamediff.py) perturb the policy on an
  // unmodified driver binary.
  static std::size_t internal_gc_threshold_env() {
    static const std::size_t bytes = [] {
      const char* v = std::getenv("PARMEM_INTERNAL_GC_THRESHOLD");
      if (v == nullptr || v[0] == '\0') {
        return std::size_t{0};
      }
      return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    }();
    return bytes;
  }

  // One cache line per pool worker: the context registry for that
  // worker's thread (mutated only from it, so the spinlock is
  // uncontended except against a stopped-world driver scanning the
  // lists). The running-set counts live in gate_.
  struct alignas(64) WorkerSlot {
    SpinLock ctx_lock;
    Ctx* ctx_head = nullptr;
  };

  void register_ctx(Ctx* c) {
    unsigned idx = pool_.current_index();
    WorkerSlot& s = slots_[idx];
    c->home_slot_ = idx;
    std::lock_guard<SpinLock> g(s.ctx_lock);
    c->reg_prev_ = nullptr;
    c->reg_next_ = s.ctx_head;
    if (s.ctx_head != nullptr) {
      s.ctx_head->reg_prev_ = c;
    }
    s.ctx_head = c;
  }
  void deregister_ctx(Ctx* c) {
    WorkerSlot& s = slots_[c->home_slot_];
    std::lock_guard<SpinLock> g(s.ctx_lock);
    if (c->reg_prev_ != nullptr) {
      c->reg_prev_->reg_next_ = c->reg_next_;
    } else {
      s.ctx_head = c->reg_next_;
    }
    if (c->reg_next_ != nullptr) {
      c->reg_next_->reg_prev_ = c->reg_prev_;
    }
  }

  std::size_t effective_internal_threshold() const {
    return opts_.gc_stress ? 1 : opts_.gc_internal_threshold;
  }

  // fork2's gated slow paths, kept out of line so the disabled-default
  // fork2 stays compact (the fork row is a measured baseline).
  //
  // Entry -- fork2 is a safepoint of the forking task (no raw Object*
  // is held across it by contract), and the parent then leaves the
  // running set FIRST: a pending internal collection must never wait
  // on a task that is blocked in fork2 rather than parked. Its heap --
  // now internal -- and frames stay registered (and scanned) through
  // its Ctx for the whole join.
  __attribute__((noinline)) void fork_enter_safepoint() {
    safepoint();
    gate_.deactivate(pool_.current_index());
  }
  // Exit -- reactivating blocks while a stop is pending, so the
  // join-time merges can never race an internal collection: a new stop
  // cannot reach its copying phase until this task parks or
  // deactivates.
  __attribute__((noinline)) void fork_exit_reactivate() {
    gate_.activate(pool_.current_index());
  }

  // Promotion-path doorbell (the promoter may hold raw pointers, so
  // never collect here): remember that some heap crossed the
  // threshold; the next safepoint anyone reaches drives the cycle.
  void note_internal_pressure(Heap* h) {
    std::size_t thr = effective_internal_threshold();
    if (thr != 0 && h->remote_bytes() >= thr) {
      internal_doorbell_.store(true, std::memory_order_relaxed);
    }
  }

  // Safepoint poll (allocation slow paths, fork2 boundaries): park
  // through someone else's pending stop, or drive a requested internal
  // collection ourselves.
  void safepoint() {
    if (opts_.gc_stress) {
      internal_doorbell_.store(true, std::memory_order_relaxed);
    }
    if (gate_.pending()) {
      gate_.park();
      return;
    }
    if (internal_doorbell_.load(std::memory_order_relaxed)) {
      drive_internal_gc(/*forced=*/false);
    }
  }

  // Pre-stop peek, racing running mutators: may only read atomics (the
  // authoritative victim scan reruns on the stopped world).
  bool any_internal_victims(std::size_t thr) {
    for (WorkerSlot& s : slots_) {
      std::lock_guard<SpinLock> g(s.ctx_lock);
      for (Ctx* c = s.ctx_head; c != nullptr; c = c->reg_next_) {
        if (c->heap_->remote_bytes() >= thr) {
          return true;
        }
      }
    }
    return false;
  }

  void drive_internal_gc(bool forced) {
    std::size_t thr = forced ? 1 : effective_internal_threshold();
    if (thr == 0) {
      internal_doorbell_.store(false, std::memory_order_relaxed);
      return;
    }
    if (!forced && !any_internal_victims(thr)) {
      // Under stress still run a full (victimless) stop periodically so
      // the pause protocol itself is exercised on pure programs.
      bool force_stop =
          opts_.gc_stress &&
          stress_tick_.fetch_add(1, std::memory_order_relaxed) % 32 == 0;
      if (!force_stop) {
        internal_doorbell_.store(false, std::memory_order_relaxed);
        return;
      }
    }
    if (!gate_.begin_stop()) {
      return;  // parked through another driver's stop instead
    }
    // The internal-GC phase tag makes the leaf collections run below
    // record as gc_internal pauses (trace::pause_kind_from_phase).
    phase::PhaseScope gc_scope(phase::Phase::kInternalGc);
    internal_doorbell_.store(false, std::memory_order_relaxed);
    try {
      collect_internal_victims(thr);
    } catch (...) {
      gate_.end_stop();  // never leave the world stopped (OS OOM in GC)
      throw;
    }
    gate_.end_stop();
  }

  // Emergency rung of the budget cascade (Ctx::emergency_collect): stop
  // the world and collect EVERY live heap, deepest first. Unlike an
  // internal cycle there is no threshold -- the allocation already
  // failed, so all reclaimable garbage is wanted. If another driver's
  // stop is pending, park through it instead: its collections free
  // memory just the same, and our caller retries afterwards.
  void drive_emergency_gc() {
    if (gate_.pending()) {
      gate_.park();
      return;
    }
    if (!gate_.begin_stop()) {
      return;
    }
    internal_doorbell_.store(false, std::memory_order_relaxed);
    try {
      std::vector<Ctx*> ctxs;
      std::vector<Heap*> heaps;
      snapshot_registry(&ctxs, &heaps);
      std::vector<Heap*> victims;
      for (Heap* h : heaps) {
        if (h->chunks() != nullptr) {
          victims.push_back(h);
        }
      }
      std::sort(victims.begin(), victims.end(),
                [](Heap* a, Heap* b) { return a->depth() > b->depth(); });
      for (Heap* h : victims) {
        stopped_collect_heap(h, ctxs, heaps, /*bill_internal=*/false);
      }
    } catch (...) {
      gate_.end_stop();  // never leave the world stopped (OS OOM in GC)
      throw;
    }
    gate_.end_stop();
  }

  void snapshot_registry(std::vector<Ctx*>* ctxs, std::vector<Heap*>* heaps) {
    for (WorkerSlot& s : slots_) {
      std::lock_guard<SpinLock> g(s.ctx_lock);
      for (Ctx* c = s.ctx_head; c != nullptr; c = c->reg_next_) {
        ctxs->push_back(c);
        heaps->push_back(c->heap_);
      }
    }
  }

  // Collect one heap on the already-stopped world, rooting from EVERY
  // task's frames plus descendant fields/forwarding words, with the
  // sequential or team evacuator per gc_parallel_team. `bill_internal`
  // adds the internal_gc_* pair on top of the ordinary gc_* counters.
  // Returns live bytes evacuated.
  std::size_t stopped_collect_heap(Heap* h, const std::vector<Ctx*>& ctxs,
                                   const std::vector<Heap*>& heaps,
                                   bool bill_internal) {
    auto frame_roots = [&ctxs](auto&& fn) {
      for (Ctx* c : ctxs) {
        for (RootFrame* f = c->frames_; f != nullptr; f = f->prev()) {
          f->for_each_slot(fn);
        }
      }
    };
    std::size_t live;
    if (opts_.gc_parallel_team > 1) {
      const std::uint64_t trace_t0 = trace::now_ns();
      core::ParallelGcOutcome out = internal_gc_collect_parallel(
          chunks_, h, heaps, opts_.gc_parallel_team, frame_roots);
      live = out.totals.bytes_copied;
      // This branch bills gc_count directly, so it records its own
      // pause; the kind follows the driver's phase (join / internal /
      // emergency-as-leaf), like leaf_gc_collect does.
      trace::record_gc_pause(trace::pause_kind_from_phase(phase::current()),
                             trace_t0, out.wall_ns, live);
      stats_.local().gc_count.fetch_add(1, std::memory_order_relaxed);
      stats_.local().gc_bytes_copied.fetch_add(live, std::memory_order_relaxed);
      stats_.local().gc_ns.fetch_add(out.totals.busy_ns, std::memory_order_relaxed);
      if (bill_internal) {
        stats_.local().internal_gc_count.fetch_add(1, std::memory_order_relaxed);
        stats_.local().internal_gc_bytes.fetch_add(live, std::memory_order_relaxed);
      }
    } else if (bill_internal) {
      live = internal_gc_collect(h, heaps, &stats_.local(), frame_roots);
    } else {
      live = leaf_gc_collect(h, &stats_.local(), [&](auto&& fn) {
        detail::internal_gc_emit_roots(h, heaps, frame_roots, fn);
      });
    }
    return live;
  }

  // Join-time collection of `me`'s just-merged heap on a stopped
  // world: the same pause an internal cycle uses, but the victim is
  // fixed and the all-frames roots make results published into
  // arbitrary ancestor Locals survive. Billed as an ordinary
  // collection, not an internal one.
  void stopped_join_collect(Ctx* me) {
    if (me->heap_->chunks() == nullptr) {
      return;
    }
    if (!gate_.begin_stop()) {
      return;  // parked through a concurrent stop; the next join retries
    }
    // Tags the collection below as a join-GC pause (gc_join kind).
    phase::PhaseScope gc_scope(phase::Phase::kJoinGc);
    std::vector<Ctx*> ctxs;
    std::vector<Heap*> heaps;
    snapshot_registry(&ctxs, &heaps);
    try {
      me->rescale_budget(stopped_collect_heap(me->heap_, ctxs, heaps,
                                              /*bill_internal=*/false));
    } catch (...) {
      gate_.end_stop();  // never leave the world stopped (OS OOM in GC)
      throw;
    }
    gate_.end_stop();
  }

  // The world is stopped: every other member of the running set is
  // parked at a safepoint (holding no raw pointers, by the alloc/fork2
  // contract) and tasks blocked in fork2 are deactivated, so heaps,
  // frames and the registry are all frozen and safe to walk.
  void collect_internal_victims(std::size_t thr) {
    std::vector<Ctx*> ctxs;
    std::vector<Heap*> heaps;
    snapshot_registry(&ctxs, &heaps);
    std::vector<Heap*> victims;
    for (Heap* h : heaps) {
      if (h->remote_bytes() >= thr && h->chunks() != nullptr) {
        victims.push_back(h);
      }
    }
    // Deepest first, so a shallower victim's descendant scan sees the
    // deeper victims' graphs already settled.
    std::sort(victims.begin(), victims.end(),
              [](Heap* a, Heap* b) { return a->depth() > b->depth(); });
    for (Heap* h : victims) {
      stopped_collect_heap(h, ctxs, heaps, /*bill_internal=*/true);
    }
  }

  Options opts_;
  bool sp_enabled_ = false;  // internal collection or GC-stress on
  ChunkPool chunks_;
  ShardedStats stats_{WorkStealPool::resolved_workers(opts_.workers)};
  WorkStealPool pool_;
  SafepointGate gate_;             // pause/resume of the running set
  std::vector<WorkerSlot> slots_;  // per-worker ctx registries
  std::atomic<bool> internal_doorbell_{false};
  std::atomic<std::uint64_t> stress_tick_{0};
};

static_assert(RuntimeLike<HierRuntime>);

}  // namespace parmem
