// Chase-Lev lock-free work-stealing deque (Chase & Lev, "Dynamic
// Circular Work-Stealing Deque", SPAA 2005), with the C11 memory
// orders of Lê, Pop, Cohen & Zappa Nardelli ("Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP 2013) -- except that
// the two fence-synchronised races are expressed as seq_cst
// OPERATIONS rather than relaxed-op + seq_cst-fence pairs, so the
// happens-before edges live on the atomics themselves and TSan (which
// does not model standalone fences) sees the algorithm as the data-
// race-free program it is.
//
// Single owner, many thieves:
//
//   push(x)   owner only   bottom end (LIFO for the owner)
//   pop()     owner only   bottom end; null when empty or when a thief
//                          won the race for the last element
//   steal()   any thread   top end (FIFO: the oldest, biggest task);
//                          null when empty OR on a lost CAS -- callers
//                          treat both as "try elsewhere and come back"
//
// Memory-ordering contract (the correctness crux, kept in one place):
//
//   * push publishes the element with a RELEASE store of bottom_.
//     Every later store of bottom_ (including pop's) is also at least
//     release, and bottom_ is only ever stored by the owner, so its
//     modification order equals the owner's program order: a thief
//     that ACQUIRE-reads bottom_ == b synchronises with that store and
//     therefore sees every slot write for indices < b (and the task's
//     own non-atomic payload, written before push).
//   * pop decrements bottom_ with a SEQ_CST store and then SEQ_CST-
//     loads top_; steal SEQ_CST-loads top_ then bottom_ and claims
//     with a SEQ_CST CAS on top_. This is the classic Dekker pair on
//     the last element: in the single total order of seq_cst
//     operations, either the thief's CAS precedes the owner's top_
//     load (owner sees top advanced -> t > b, or loses the t == b
//     CAS), or the owner's bottom_ store precedes the thief's bottom_
//     load (thief sees the shrunken deque and returns null). Both
//     taking the same element would require each to miss the other's
//     write, which seq_cst forbids. Weakening pop's bottom_ store or
//     top_ load below seq_cst re-opens the lost-element/double-take
//     window on x86 (store-load reordering) and is the one ordering
//     this file must never relax.
//   * Slots are std::atomic<T*> accessed relaxed: a stale thief may
//     read a slot the owner is about to reuse, but the top_ CAS
//     decides ownership, and the growth proof below guarantees an
//     UNCONSUMED index is never overwritten (push grows whenever
//     b - t_observed > capacity - 1 with t_observed <= t, so reaching
//     an overwrite of live index t would require b - t >= capacity,
//     which forces growth first).
//
// The ring grows by doubling; old rings are kept on a retired chain
// until the deque dies, because a thief that loaded ring_ before a
// growth may still read its (still-correct, copied-from) slots.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace parmem {

template <class T>
class ChaseLevDeque {
 public:
  // initial_capacity is rounded up to a power of two; keep it small in
  // torture tests to exercise wraparound and growth.
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 2;
    while (cap < initial_capacity) {
      cap <<= 1;
    }
    ring_.store(Ring::make(cap, nullptr), std::memory_order_relaxed);
  }

  ~ChaseLevDeque() {
    Ring* r = ring_.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Ring* prev = r->retired;
      std::free(r);
      r = prev;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  // Owner only. May allocate (ring growth); strong exception safety --
  // a failed growth leaves the deque unchanged.
  void push(T* item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->slot(b).store(item, std::memory_order_relaxed);
    // Release: a thief acquiring bottom_ >= b+1 sees the slot write
    // and the item's payload (see the contract above).
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. Takes the NEWEST element; null when empty or when a
  // thief won the last element.
  T* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = ring_.load(std::memory_order_relaxed);
    // seq_cst store + seq_cst top_ load: the owner's half of the
    // pop-vs-steal Dekker pair (see the file comment). Nothing weaker
    // is sound here.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty; undo the reservation.
      bottom_.store(b + 1, std::memory_order_release);
      return nullptr;
    }
    T* x = a->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race any thief for it via the top_ CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        x = nullptr;  // a thief took it
      }
      bottom_.store(b + 1, std::memory_order_release);
    }
    return x;
  }

  // Any thread. Takes the OLDEST element; null when the deque looks
  // empty or the claiming CAS was lost (another thief or the owner's
  // pop got there first) -- callers retry or move to another victim.
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return nullptr;
    }
    Ring* a = ring_.load(std::memory_order_acquire);
    T* x = a->slot(t).load(std::memory_order_relaxed);
    // The slot must be read BEFORE the CAS: once top_ advances, the
    // owner may recycle the index.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the claim
    }
    return x;
  }

  // Racy size hint for idle/wake-up checks. A false "empty" is only
  // possible for elements pushed concurrently with the check; the
  // scheduler's wake-up protocol (core/sched.hpp) closes that window
  // with its own Dekker pair on the sleeper count.
  bool empty() const {
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    std::int64_t t = top_.load(std::memory_order_acquire);
    return t >= b;
  }

  std::size_t capacity() const {
    return ring_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct Ring {
    std::size_t capacity;  // power of two
    Ring* retired;         // previous (smaller) ring, freed at teardown
    std::atomic<T*>& slot(std::int64_t i) {
      return slots()[static_cast<std::size_t>(i) & (capacity - 1)];
    }
    std::atomic<T*>* slots() {
      return reinterpret_cast<std::atomic<T*>*>(this + 1);
    }
    static Ring* make(std::size_t cap, Ring* prev) {
      void* mem = std::malloc(sizeof(Ring) + cap * sizeof(std::atomic<T*>));
      if (mem == nullptr) {
        throw std::bad_alloc();
      }
      Ring* r = new (mem) Ring();
      r->capacity = cap;
      r->retired = prev;
      return r;
    }
  };

  // Owner only. Copies the live window [t, b) into a ring twice the
  // size and publishes it. The old ring stays readable (retired chain)
  // for thieves that loaded ring_ before the switch; indices in [t, b)
  // hold identical values in both rings, so a stale read is correct.
  Ring* grow(Ring* a, std::int64_t t, std::int64_t b) {
    Ring* n = Ring::make(a->capacity * 2, a);
    for (std::int64_t i = t; i < b; ++i) {
      n->slot(i).store(a->slot(i).load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    ring_.store(n, std::memory_order_release);
    return n;
  }

  // top_ and bottom_ on separate cache lines: thieves hammer top_,
  // the owner hammers bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_{nullptr};
};

}  // namespace parmem
