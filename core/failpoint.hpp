// Bounded-memory support: the typed allocation-failure exception, the
// deterministic allocation-fault-injection registry, and validated
// parsing of the PARMEM_HEAP_BUDGET / PARMEM_FAILPOINTS environment
// variables.
//
// Failpoints are named allocation sites (chunk_alloc, packet_alloc,
// promote_copy) that can be armed with a trigger spec:
//
//   site=fail@N      fail exactly the Nth hit (1-based), once
//   site=every(N)    fail every Nth hit (every(1) = hard exhaustion)
//   site=prob(p,s)   fail each hit with probability p, xorshift seed s
//
// Specs are installed from RT::Options::failpoints (malformed ->
// std::invalid_argument) or the PARMEM_FAILPOINTS environment variable
// (malformed -> one-line stderr diagnosis + exit, never a silent
// fallback). The registry is process-wide; when nothing is armed the
// per-site check is one relaxed atomic load on a shared flag.
//
// Collector-context exemption: allocations made INSIDE a collection
// (to-space copies, evacuation-team buffers) run under a GcAllocScope
// and are exempt from both the heap budget and injected faults. A
// copying collector cannot unwind mid-evacuation -- from-space is
// already detached and roots partially rewritten -- and its transient
// to-space is bounded by live data, so the exemption is what makes
// "collect, retry, then fail the one request cleanly" sound. Faults
// and budget checks therefore fire only at mutator allocation
// boundaries, where unwinding is well-defined.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace parmem {

// Typed allocation failure: which site failed and the pool accounting
// at the moment of failure, so an OOM is attributable (and assertable
// in tests) even with the budget off.
class OutOfMemory : public std::bad_alloc {
 public:
  OutOfMemory(const char* site, std::size_t requested, std::size_t live,
              std::size_t budget, std::size_t peak) noexcept
      : requested_(requested), live_(live), budget_(budget), peak_(peak) {
    std::snprintf(site_, sizeof(site_), "%s", site);
    std::snprintf(msg_, sizeof(msg_),
                  "parmem::OutOfMemory at %s: requested=%zu live=%zu "
                  "budget=%zu peak=%zu",
                  site_, requested, live, budget, peak);
  }

  const char* what() const noexcept override { return msg_; }
  const char* site() const noexcept { return site_; }
  std::size_t requested_bytes() const noexcept { return requested_; }
  std::size_t live_bytes() const noexcept { return live_; }
  std::size_t budget_bytes() const noexcept { return budget_; }  // 0 = off
  std::size_t peak_bytes() const noexcept { return peak_; }

 private:
  char site_[24];
  char msg_[160];
  std::size_t requested_;
  std::size_t live_;
  std::size_t budget_;
  std::size_t peak_;
};

namespace failpoint {

enum class Site : unsigned {
  kChunkAlloc = 0,  // ChunkPool::fresh (chunk memory from the OS)
  kPacketAlloc,     // ParallelCollector::take_packet (grey-packet malloc)
  kPromoteCopy,     // promote_and_store entry (promotion closure copy)
  kCount,
};

inline constexpr const char* kSiteNames[] = {"chunk_alloc", "packet_alloc",
                                             "promote_copy"};

inline const char* site_name(Site s) {
  return kSiteNames[static_cast<unsigned>(s)];
}

struct Spec {
  enum class Kind : unsigned { kOff, kFailAt, kEvery, kProb };
  Kind kind = Kind::kOff;
  std::uint64_t n = 0;     // fail@N / every(N)
  double p = 0.0;          // prob(p, seed)
  std::uint64_t seed = 1;  // prob(p, seed); never 0 (xorshift fixpoint)
};

// Per-process registry. should_fail() is only reached when armed; the
// fast path is triggered()'s one relaxed load.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Arm one site. Resets that site's hit counter so installation order
  // is deterministic regardless of earlier runs.
  void arm(Site s, const Spec& spec) {
    State& st = sites_[static_cast<unsigned>(s)];
    st.hits.store(0, std::memory_order_relaxed);
    st.rng.store(spec.seed != 0 ? spec.seed : 1, std::memory_order_relaxed);
    st.spec = spec;
    rearm_flag();
  }

  // Disarm everything and zero the counters (test isolation).
  void reset() {
    for (State& st : sites_) {
      st.spec = Spec{};
      st.hits.store(0, std::memory_order_relaxed);
      st.rng.store(1, std::memory_order_relaxed);
    }
    armed_.store(false, std::memory_order_relaxed);
  }

  // Count one hit of `s` and decide whether it fails. Thread-safe and
  // deterministic per-site: the hit index comes from one fetch_add.
  bool should_fail(Site s) {
    State& st = sites_[static_cast<unsigned>(s)];
    const Spec& spec = st.spec;
    if (spec.kind == Spec::Kind::kOff) {
      return false;
    }
    std::uint64_t hit =
        st.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
    switch (spec.kind) {
      case Spec::Kind::kFailAt:
        return hit == spec.n;
      case Spec::Kind::kEvery:
        return spec.n != 0 && hit % spec.n == 0;
      case Spec::Kind::kProb: {
        // xorshift64*: deterministic for a given seed and hit order.
        std::uint64_t x = st.rng.load(std::memory_order_relaxed);
        std::uint64_t nx;
        do {
          nx = x;
          nx ^= nx >> 12;
          nx ^= nx << 25;
          nx ^= nx >> 27;
        } while (!st.rng.compare_exchange_weak(x, nx,
                                               std::memory_order_relaxed));
        double u = static_cast<double>((nx * 0x2545F4914F6CDD1DULL) >> 11) *
                   (1.0 / 9007199254740992.0);  // [0, 1)
        return u < spec.p;
      }
      case Spec::Kind::kOff:
        break;
    }
    return false;
  }

  std::uint64_t hits(Site s) const {
    return sites_[static_cast<unsigned>(s)].hits.load(
        std::memory_order_relaxed);
  }

 private:
  struct State {
    Spec spec;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> rng{1};
  };

  void rearm_flag() {
    bool any = false;
    for (const State& st : sites_) {
      any = any || st.spec.kind != Spec::Kind::kOff;
    }
    armed_.store(any, std::memory_order_relaxed);
  }

  std::atomic<bool> armed_{false};
  State sites_[static_cast<unsigned>(Site::kCount)];
};

// Near-zero cost when nothing is armed: one relaxed load, branch
// predicted not-taken.
inline bool triggered(Site s) {
  Registry& r = Registry::instance();
  if (__builtin_expect(!r.armed(), 1)) {
    return false;
  }
  return r.should_fail(s);
}

// ---- collector-context exemption (see header comment) ----------------------

inline int& gc_exempt_depth() {
  thread_local int depth = 0;
  return depth;
}

inline bool gc_exempt() { return gc_exempt_depth() != 0; }

struct GcAllocScope {
  GcAllocScope() { ++gc_exempt_depth(); }
  ~GcAllocScope() { --gc_exempt_depth(); }
  GcAllocScope(const GcAllocScope&) = delete;
  GcAllocScope& operator=(const GcAllocScope&) = delete;
};

// ---- spec parsing -----------------------------------------------------------

// Parse one "site=trigger" clause. Returns false and fills *err (a
// one-line, human-actionable message) on malformed input.
inline bool parse_clause(const std::string& clause, Site* site, Spec* spec,
                         std::string* err) {
  std::size_t eq = clause.find('=');
  if (eq == std::string::npos) {
    *err = "failpoint clause '" + clause + "' has no '=' (want site=trigger)";
    return false;
  }
  std::string name = clause.substr(0, eq);
  std::string trig = clause.substr(eq + 1);
  int found = -1;
  for (unsigned i = 0; i < static_cast<unsigned>(Site::kCount); ++i) {
    if (name == kSiteNames[i]) {
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    *err = "unknown failpoint site '" + name +
           "' (known: chunk_alloc, packet_alloc, promote_copy)";
    return false;
  }
  *site = static_cast<Site>(found);
  char* end = nullptr;
  if (trig.rfind("fail@", 0) == 0) {
    const char* num = trig.c_str() + 5;
    unsigned long long n = std::strtoull(num, &end, 10);
    if (end == num || *end != '\0' || n == 0) {
      *err = "bad trigger '" + trig + "' (want fail@N with N >= 1)";
      return false;
    }
    spec->kind = Spec::Kind::kFailAt;
    spec->n = n;
    return true;
  }
  if (trig.rfind("every(", 0) == 0 && trig.back() == ')') {
    std::string num = trig.substr(6, trig.size() - 7);
    unsigned long long n = std::strtoull(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0' || n == 0) {
      *err = "bad trigger '" + trig + "' (want every(N) with N >= 1)";
      return false;
    }
    spec->kind = Spec::Kind::kEvery;
    spec->n = n;
    return true;
  }
  if (trig.rfind("prob(", 0) == 0 && trig.back() == ')') {
    std::string body = trig.substr(5, trig.size() - 6);
    std::size_t comma = body.find(',');
    if (comma == std::string::npos) {
      *err = "bad trigger '" + trig + "' (want prob(p,seed))";
      return false;
    }
    std::string ps = body.substr(0, comma);
    std::string ss = body.substr(comma + 1);
    double p = std::strtod(ps.c_str(), &end);
    if (end == ps.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      *err = "bad trigger '" + trig + "' (p must be in [0, 1])";
      return false;
    }
    unsigned long long seed = std::strtoull(ss.c_str(), &end, 10);
    if (end == ss.c_str() || *end != '\0') {
      *err = "bad trigger '" + trig + "' (seed must be an integer)";
      return false;
    }
    spec->kind = Spec::Kind::kProb;
    spec->p = p;
    spec->seed = seed;
    return true;
  }
  *err = "unknown trigger '" + trig +
         "' (want fail@N, every(N), or prob(p,seed))";
  return false;
}

// Parse a full spec string: clauses separated by ';' (or ',' outside
// parentheses). Returns false + *err without arming anything on the
// first malformed clause.
inline bool parse_spec(const std::string& s, Registry* reg,
                       std::string* err) {
  struct Parsed {
    Site site;
    Spec spec;
  };
  std::string buf;
  int depth = 0;
  std::vector<Parsed> out;
  auto flush = [&]() -> bool {
    // Trim surrounding whitespace.
    std::size_t b = buf.find_first_not_of(" \t");
    std::size_t e = buf.find_last_not_of(" \t");
    std::string c =
        b == std::string::npos ? std::string() : buf.substr(b, e - b + 1);
    buf.clear();
    if (c.empty()) {
      return true;
    }
    Parsed p;
    if (!parse_clause(c, &p.site, &p.spec, err)) {
      return false;
    }
    out.push_back(p);
    return true;
  };
  for (char ch : s) {
    if (ch == '(') {
      ++depth;
    } else if (ch == ')') {
      --depth;
    }
    if ((ch == ';' || ch == ',') && depth == 0) {
      if (!flush()) {
        return false;
      }
      continue;
    }
    buf.push_back(ch);
  }
  if (!flush()) {
    return false;
  }
  for (const Parsed& p : out) {
    reg->arm(p.site, p.spec);
  }
  return true;
}

// Options-sourced installation: misconfiguration is a programming
// error at the call site, so it throws.
inline void install(const std::string& spec) {
  std::string err;
  if (!parse_spec(spec, &Registry::instance(), &err)) {
    throw std::invalid_argument("PARMEM failpoints: " + err);
  }
}

// RAII install/reset for tests: arms `spec` for the scope and disarms
// the whole registry (including counters) on exit.
struct ScopedFailpoints {
  explicit ScopedFailpoints(const std::string& spec) { install(spec); }
  ~ScopedFailpoints() { Registry::instance().reset(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

}  // namespace failpoint

namespace env {

// Parse a byte-size spec: a non-negative integer with an optional
// K/M/G suffix (binary multiples), e.g. "768M". Returns false on
// malformed input; *out is untouched then.
inline bool parse_size_spec(const char* s, std::size_t* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) {
    return false;
  }
  std::size_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k':
      case 'K':
        mult = std::size_t{1} << 10;
        break;
      case 'm':
      case 'M':
        mult = std::size_t{1} << 20;
        break;
      case 'g':
      case 'G':
        mult = std::size_t{1} << 30;
        break;
      default:
        return false;
    }
    if (end[1] != '\0') {
      return false;
    }
  }
  *out = static_cast<std::size_t>(v) * mult;
  return true;
}

// PARMEM_HEAP_BUDGET, validated once per process: 0/unset = unlimited;
// malformed = one-line diagnosis + exit (never a silent fallback).
inline std::size_t heap_budget_env() {
  static const std::size_t budget = [] {
    const char* v = std::getenv("PARMEM_HEAP_BUDGET");
    if (v == nullptr || *v == '\0') {
      return std::size_t{0};
    }
    std::size_t b = 0;
    if (!parse_size_spec(v, &b)) {
      std::fprintf(stderr,
                   "parmem: malformed PARMEM_HEAP_BUDGET='%s' (want bytes "
                   "with optional K/M/G suffix, e.g. 768M)\n",
                   v);
      std::exit(2);
    }
    return b;
  }();
  return budget;
}

// PARMEM_FAILPOINTS, installed once per process at first runtime
// construction: malformed = one-line diagnosis + exit.
inline void install_failpoints_env() {
  static const bool done = [] {
    const char* v = std::getenv("PARMEM_FAILPOINTS");
    if (v != nullptr && *v != '\0') {
      std::string err;
      if (!failpoint::parse_spec(v, &failpoint::Registry::instance(), &err)) {
        std::fprintf(stderr, "parmem: malformed PARMEM_FAILPOINTS='%s': %s\n",
                     v, err.c_str());
        std::exit(2);
      }
    }
    return true;
  }();
  (void)done;
}

}  // namespace env

// A runtime's effective budget: its explicit option wins; otherwise
// the validated process-wide PARMEM_HEAP_BUDGET (0 = unlimited).
inline std::size_t effective_heap_budget(std::size_t option_bytes) {
  return option_bytes != 0 ? option_bytes : env::heap_budget_env();
}

}  // namespace parmem
