// Async-signal-safe output helpers shared by every dump path that can
// run inside a signal handler (the test watchdog's SIGALRM dump, the
// phase/trace last-event dumps): no malloc, no stdio, just write(2).
// Hoisted from core/sched.hpp so the observability headers can use
// them without pulling in the scheduler.
#pragma once

#include <unistd.h>

#include <cstddef>

namespace parmem::detail {

inline void sig_write(int fd, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') {
    ++n;
  }
  ssize_t r = ::write(fd, s, n);
  (void)r;
}

inline void sig_write_i64(int fd, long long v) {
  char b[24];
  unsigned i = sizeof b;
  bool neg = v < 0;
  unsigned long long u =
      neg ? ~static_cast<unsigned long long>(v) + 1ull
          : static_cast<unsigned long long>(v);
  do {
    b[--i] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0);
  if (neg) {
    b[--i] = '-';
  }
  ssize_t r = ::write(fd, b + i, sizeof b - i);
  (void)r;
}

}  // namespace parmem::detail
