// Machine-readable per-run stats export: each runtime instance whose
// Options::stats_json_path (or the PARMEM_STATS_JSON env var) names a
// file appends ONE JSON object line when the runtime is destroyed --
// counters, memory gauges, and per-kind pause-histogram summaries.
// JSON-lines, so a process that builds several runtimes (the serve
// driver runs all four) yields one parseable record per run;
// scripts/perf_diff.py consumes two such files and gates on
// regressions.
//
// The first runtime to export to a given path in a process truncates
// it; later exports append. Pause histograms come from core/trace.hpp,
// whose slots are process-global and cumulative -- in a multi-runtime
// process each record's "pauses" section covers the process SO FAR,
// not just that runtime (counters and gauges are per-instance).
#pragma once

#include <cstdio>
#include <set>
#include <string>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace parmem::stats_json {

namespace detail {

// Paths already opened (truncated) by this process.
inline std::set<std::string>& opened() {
  static std::set<std::string> s;
  return s;
}

inline void write_hist(std::FILE* f, const char* key, const Histogram& h) {
  std::fprintf(
      f,
      "\"%s\":{\"count\":%llu,\"sum_ns\":%llu,\"p50_ns\":%llu,"
      "\"p95_ns\":%llu,\"p99_ns\":%llu,\"max_ns\":%llu}",
      key, static_cast<unsigned long long>(h.count()),
      static_cast<unsigned long long>(h.sum_ns()),
      static_cast<unsigned long long>(h.percentile_ns(0.50)),
      static_cast<unsigned long long>(h.percentile_ns(0.95)),
      static_cast<unsigned long long>(h.percentile_ns(0.99)),
      static_cast<unsigned long long>(h.max_ns()));
}

}  // namespace detail

// Resolve the export path for a runtime: explicit option wins, else
// PARMEM_STATS_JSON, else empty (no export).
inline std::string resolve_path(const std::string& option_path) {
  if (!option_path.empty()) {
    return option_path;
  }
  const char* v = std::getenv("PARMEM_STATS_JSON");
  return (v != nullptr) ? std::string(v) : std::string();
}

// Append one JSON object line for a finished runtime. Returns false if
// the file could not be opened (reported on stderr, never fatal -- a
// broken export path must not take down the computation's exit).
inline bool write(const std::string& path, const char* runtime,
                  const StatsSnapshot& snap) {
  if (path.empty()) {
    return true;
  }
  const bool fresh = detail::opened().insert(path).second;
  std::FILE* f = std::fopen(path.c_str(), fresh ? "w" : "a");
  if (f == nullptr) {
    std::fprintf(stderr, "parmem: cannot write stats JSON file %s\n",
                 path.c_str());
    return false;
  }
  const Stats& s = snap.stats;
  std::fprintf(
      f,
      "{\"runtime\":\"%s\","
      "\"counters\":{"
      "\"promotions\":%llu,\"promoted_objects\":%llu,"
      "\"promoted_bytes\":%llu,\"promo_claim_conflicts\":%llu,"
      "\"gc_count\":%llu,\"gc_bytes_copied\":%llu,\"gc_ns\":%llu,"
      "\"forks\":%llu,\"internal_gc_count\":%llu,"
      "\"internal_gc_bytes\":%llu,\"global_gc_count\":%llu,"
      "\"global_gc_bytes\":%llu,\"emergency_gcs\":%llu},"
      "\"memory\":{\"live_bytes\":%llu,\"peak_bytes\":%llu},",
      runtime, static_cast<unsigned long long>(s.promotions),
      static_cast<unsigned long long>(s.promoted_objects),
      static_cast<unsigned long long>(s.promoted_bytes),
      static_cast<unsigned long long>(s.promo_claim_conflicts),
      static_cast<unsigned long long>(s.gc_count),
      static_cast<unsigned long long>(s.gc_bytes_copied),
      static_cast<unsigned long long>(s.gc_ns),
      static_cast<unsigned long long>(s.forks),
      static_cast<unsigned long long>(s.internal_gc_count),
      static_cast<unsigned long long>(s.internal_gc_bytes),
      static_cast<unsigned long long>(s.global_gc_count),
      static_cast<unsigned long long>(s.global_gc_bytes),
      static_cast<unsigned long long>(s.emergency_gcs),
      static_cast<unsigned long long>(snap.live_bytes),
      static_cast<unsigned long long>(snap.peak_bytes));
  const trace::Snapshot tr = trace::snapshot();
  std::fprintf(f, "\"pauses\":{");
  for (unsigned k = 0; k < trace::kKinds; ++k) {
    if (k != 0) {
      std::fprintf(f, ",");
    }
    detail::write_hist(f, trace::kind_name(static_cast<trace::Ev>(k)),
                       tr.by_kind[k]);
  }
  std::fprintf(f,
               "},\"trace\":{\"ring_events\":%llu,\"ring_dropped\":%llu}}\n",
               static_cast<unsigned long long>(tr.ring_events),
               static_cast<unsigned long long>(tr.ring_dropped));
  std::fclose(f);
  return true;
}

}  // namespace parmem::stats_json
