// Leaf-heap collection: a Cheney-style copying collector for the one
// heap only its owning task can allocate into. Roots are the task's
// RootFrame slots; tracing stops at any object owned by an ancestor
// heap (the hierarchy invariant guarantees ancestors never point down
// into a leaf, so the leaf can be collected without looking at anyone
// else and without stopping any other task).
//
// The object forwarding word is reused for GC forwarding; stale
// promotion copies sitting in the leaf simply chase to their master
// and die with the from-space chunks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstring>

#include "core/failpoint.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace parmem {

// `root_iter(fn)` must invoke fn(Object** slot) for every live root
// slot of the owning task. Returns live bytes evacuated.
template <class RootIter>
std::size_t leaf_gc_collect(Heap* heap, StatsCell* stats,
                            RootIter&& root_iter) {
  if (heap->chunks() == nullptr) {
    // Empty heap (fresh, or all chunks already reclaimed): a true
    // no-op. In particular this must not count as a collection or
    // perturb the chunk-doubling schedule -- GC-stress mode collects
    // at every safepoint, which hits this case constantly.
    return 0;
  }
  auto t0 = std::chrono::steady_clock::now();
  // This call bills gc_count exactly once below, so it records exactly
  // one pause event; the KIND comes from the ambient phase -- a leaf
  // scan driven by a join/internal collection IS that pause's copy
  // step. The scope only retags to leaf-GC when not already inside a
  // collection phase (keeps profiler samples attributed to the
  // enclosing pause).
  const phase::Phase ambient = phase::current();
  const trace::Ev pause_kind = trace::pause_kind_from_phase(ambient);
  phase::PhaseScope phase_scope(phase::is_gc(ambient)
                                    ? ambient
                                    : phase::Phase::kLeafGc);
  const std::uint64_t trace_t0 = trace::now_ns();

  // To-space copies are collector-context allocations: exempt from the
  // heap budget and injected faults (a Cheney scan cannot unwind once
  // from-space is detached), and bounded by live data anyway.
  failpoint::GcAllocScope gc_scope;

  Chunk* from = heap->detach_chunks();
  for (Chunk* c = from; c != nullptr; c = c->next) {
    c->from_space = true;
  }

  std::size_t copied = 0;
  auto forward = [&](Object* p) -> Object* {
    if (p == nullptr) {
      return nullptr;
    }
    p = Object::chase(p);  // promoted -> master; already-copied -> to-space
    Chunk* c = chunk_of(p);
    if (!c->from_space || c->heap.load(std::memory_order_relaxed) != heap) {
      return p;  // ancestor-owned (or already evacuated): not ours to move
    }
    Object* n = heap->bump_alloc(p->nptr(), p->nscalar());
    std::size_t payload = 8u * (std::size_t{p->nptr()} + p->nscalar());
    std::memcpy(n->scalars(), p->scalars(), payload);
    p->set_fwd(n, std::memory_order_relaxed);  // single-task heap: no release
    copied += n->size();
    return n;
  };

  // Write a slot back only when forwarding moved it. A slot needs
  // rewriting only if it held one of THIS heap's objects, and such
  // slots are accessed by this task alone; slots holding null or
  // foreign (e.g. global) pointers may be concurrently published into
  // by a sibling branch under the local-heap runtime, and skipping the
  // dead store keeps this scan read-only on them (no lost updates).
  root_iter([&](Object** slot) {
    Object* cur =
        std::atomic_ref<Object*>(*slot).load(std::memory_order_relaxed);
    Object* fwd = forward(cur);
    if (fwd != cur) {
      std::atomic_ref<Object*>(*slot).store(fwd, std::memory_order_relaxed);
    }
  });

  // Cheney scan: walk to-space objects in allocation order; the list
  // grows at the tail while we scan.
  Chunk* c = heap->chunks();
  char* p = (c != nullptr) ? c->data() : nullptr;
  while (c != nullptr) {
    for (;;) {
      char* limit = (c == heap->tail()) ? heap->top() : c->obj_end;
      if (p >= limit) {
        break;
      }
      Object* o = reinterpret_cast<Object*>(p);
      std::uint32_t np = o->nptr();
      for (std::uint32_t j = 0; j < np; ++j) {
        o->ptrs()[j] = forward(o->ptrs()[j]);
      }
      p += o->size();
    }
    if (c->next == nullptr &&
        (c == heap->tail() ? p >= heap->top() : p >= c->obj_end)) {
      break;
    }
    if (c->next != nullptr) {
      c = c->next;
      p = c->data();
    }
  }

  while (from != nullptr) {
    Chunk* n = from->next;
    heap->pool()->release(from);
    from = n;
  }
  // A full collection settles all promoted-into growth: survivors were
  // re-copied, the rest died with from-space.
  heap->reset_remote_bytes();

  auto t1 = std::chrono::steady_clock::now();
  stats->gc_count.fetch_add(1, std::memory_order_relaxed);
  stats->gc_bytes_copied.fetch_add(copied, std::memory_order_relaxed);
  stats->gc_ns.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
      std::memory_order_relaxed);
  trace::record_gc_pause(pause_kind, trace_t0, trace::now_ns() - trace_t0,
                         copied);
  return copied;
}

}  // namespace parmem
