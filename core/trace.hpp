// GC pause / runtime-event trace layer: per-worker event rings
// recording every GC pause, safepoint-gate stall, emergency cascade,
// and promotion burst with nanosecond timestamps, plus log-bucketed
// per-kind histograms (core/histogram.hpp) that are always on.
//
// Two tiers, different costs:
//
//   * HISTOGRAMS + last-event summary: recorded on every call to a
//     record_* function. The call sites are collection pauses, gate
//     stalls, and (ring-gated) promotions -- microsecond-scale slow
//     paths where two clock reads and a bucket increment vanish. This
//     is what lets pause-percentile columns ride along in the stats
//     JSON export with no env var set.
//   * EVENT RINGS: pushed only while tracing is enabled
//     (PARMEM_TRACE=out.json or trace::enable()). Disabled cost is one
//     relaxed load, the core/failpoint.hpp pattern. Rings are
//     per-worker, fixed-capacity, and overwrite their OLDEST entry on
//     overflow (the tail of a long run is what a hang/tail-latency
//     investigation wants), counting what they dropped.
//
// Output is Chrome trace-event JSON ("X" complete events), loadable in
// Perfetto / chrome://tracing: one row (tid) per worker slot, event
// name = kind, args carry bytes. write_json() is called automatically
// at process exit when PARMEM_TRACE is set.
//
// GC-pause accounting invariant (pinned by a unit test): every
// Stats::gc_count increment pairs with exactly ONE pause event among
// {gc_leaf, gc_join, gc_internal, gc_stw, gc_global} -- the leaf
// collector records under the ambient phase's kind, and the paths that
// bill gc_count directly (team evacuations) record their own -- so
// summing those five histograms' counts reproduces gc_count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/histogram.hpp"
#include "core/phase.hpp"
#include "core/sig_io.hpp"

namespace parmem::trace {

enum class Ev : std::uint8_t {
  kGcLeaf = 0,   // leaf/STW-sequential collection pause
  kGcJoin,       // join-time stopped-world collection pause
  kGcInternal,   // internal-heap stopped-world collection pause
  kGcStw,        // STW runtime's recruited-team collection pause
  kGcGlobal,     // local-heap runtime's global-heap collection pause
  kEmergency,    // whole emergency cascade (its collections also
                 // record individually under the kinds above)
  kGateStall,    // time a mutator sat parked at a safepoint gate
  kPromotion,    // one promotion (closure copy up the hierarchy)
  kCount,
};

inline const char* kind_name(Ev e) {
  switch (e) {
    case Ev::kGcLeaf:    return "gc_leaf";
    case Ev::kGcJoin:    return "gc_join";
    case Ev::kGcInternal: return "gc_internal";
    case Ev::kGcStw:     return "gc_stw";
    case Ev::kGcGlobal:  return "gc_global";
    case Ev::kEmergency: return "emergency_cascade";
    case Ev::kGateStall: return "gate_stall";
    case Ev::kPromotion: return "promotion";
    default:             return "?";
  }
}

constexpr unsigned kKinds = static_cast<unsigned>(Ev::kCount);
constexpr unsigned kPauseKinds = 5;  // the first five Ev values

// The pause kind a collection records under, derived from the ambient
// phase: a leaf collection driven inside a join-GC (or internal-GC)
// scope IS that pause's copy step, so it records under that kind.
inline Ev pause_kind_from_phase(phase::Phase p) {
  switch (p) {
    case phase::Phase::kJoinGc:     return Ev::kGcJoin;
    case phase::Phase::kInternalGc: return Ev::kGcInternal;
    case phase::Phase::kGlobalGc:   return Ev::kGcGlobal;
    default:                        return Ev::kGcLeaf;
  }
}

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Event {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;  // bytes copied / promoted; 0 where N/A
  Ev kind = Ev::kGcLeaf;
};

// Fixed-capacity ring that keeps the NEWEST `cap` events: push
// overwrites the oldest entry and the drop counter is total - cap.
// Single-writer (the owning worker); readers take the owning slot's
// lock (below) or run after the writer quiesced. Standalone so the
// overflow policy is unit-testable without a runtime.
class TraceRing {
 public:
  explicit TraceRing(std::size_t cap) : buf_(cap) {}

  void push(const Event& e) {
    buf_[static_cast<std::size_t>(n_ % buf_.size())] = e;
    ++n_;
  }

  std::uint64_t total() const { return n_; }
  std::uint64_t dropped() const {
    return n_ > buf_.size() ? n_ - buf_.size() : 0;
  }
  std::size_t size() const {
    return n_ < buf_.size() ? static_cast<std::size_t>(n_) : buf_.size();
  }
  std::size_t capacity() const { return buf_.size(); }

  template <class Fn>
  void for_each_oldest_first(Fn&& fn) const {
    const std::uint64_t lo = n_ - size();
    for (std::uint64_t i = lo; i < n_; ++i) {
      fn(buf_[static_cast<std::size_t>(i % buf_.size())]);
    }
  }

  void clear() { n_ = 0; }

 private:
  std::vector<Event> buf_;
  std::uint64_t n_ = 0;
};

namespace detail {

// Tiny test-and-set lock so this header does not pull in core/heap.hpp
// (which owns the allocator SpinLock). Taken only on record paths that
// are already microsecond-scale, and by quiescent-time readers.
class TinyLock {
 public:
  void lock() {
    while (f_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() { f_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> f_{false};
};

struct LockGuard {
  explicit LockGuard(TinyLock& l) : l_(l) { l_.lock(); }
  ~LockGuard() { l_.unlock(); }
  TinyLock& l_;
};

constexpr std::size_t kRingCap = 4096;

// One per worker slot (same slot space as core/phase.hpp), allocated
// lazily on the slot's first recorded event. The last-event summary is
// lock-free atomics so the watchdog's signal handler can read it.
struct Slot {
  TinyLock mu;
  TraceRing ring{kRingCap};
  Histogram hist[kKinds];
  std::atomic<std::uint8_t> last_kind{0xff};  // 0xff = none yet
  std::atomic<std::uint64_t> last_start_ns{0};
  std::atomic<std::uint64_t> last_dur_ns{0};
};

inline std::atomic<Slot*>* slot_table() {
  static std::atomic<Slot*> table[phase::kSlots] = {};
  return table;
}

inline Slot* slot_at(unsigned i) {
  return slot_table()[i].load(std::memory_order_acquire);
}

inline Slot& my_slot() {
  std::atomic<Slot*>& cell = slot_table()[phase::my_slot_index()];
  Slot* s = cell.load(std::memory_order_acquire);
  if (__builtin_expect(s == nullptr, 0)) {
    Slot* fresh = new Slot;
    if (cell.compare_exchange_strong(s, fresh, std::memory_order_acq_rel)) {
      return *fresh;
    }
    delete fresh;  // lost the race; s is the winner
  }
  return *s;
}

inline std::atomic<bool>& ring_flag() {
  static std::atomic<bool> f{false};
  return f;
}

inline std::string& out_path() {
  static std::string p;
  return p;
}

}  // namespace detail

// Disabled-path check for the OPTIONAL tiers (ring pushes, promotion
// timing): one relaxed load, per the failpoint pattern.
inline bool ring_enabled() {
  return __builtin_expect(
      detail::ring_flag().load(std::memory_order_relaxed), 0);
}

inline void enable() {
  detail::ring_flag().store(true, std::memory_order_relaxed);
}
inline void disable() {
  detail::ring_flag().store(false, std::memory_order_relaxed);
}

inline void record(Ev kind, std::uint64_t start_ns, std::uint64_t dur_ns,
                   std::uint64_t arg) {
  detail::Slot& s = detail::my_slot();
  s.last_kind.store(static_cast<std::uint8_t>(kind),
                    std::memory_order_relaxed);
  s.last_start_ns.store(start_ns, std::memory_order_relaxed);
  s.last_dur_ns.store(dur_ns, std::memory_order_relaxed);
  detail::LockGuard g(s.mu);
  s.hist[static_cast<unsigned>(kind)].record(dur_ns);
  if (ring_enabled()) {
    s.ring.push(Event{start_ns, dur_ns, arg, kind});
  }
}

// One GC pause. Every Stats::gc_count increment must route through
// exactly one of these (see the header comment's invariant).
inline void record_gc_pause(Ev kind, std::uint64_t start_ns,
                            std::uint64_t dur_ns, std::uint64_t bytes) {
  record(kind, start_ns, dur_ns, bytes);
}

inline void record_gate_stall(std::uint64_t start_ns, std::uint64_t dur_ns) {
  record(Ev::kGateStall, start_ns, dur_ns, 0);
}

inline void record_emergency(std::uint64_t start_ns, std::uint64_t dur_ns,
                             std::uint64_t live_before) {
  record(Ev::kEmergency, start_ns, dur_ns, live_before);
}

// Promotions are ring-gated at the CALL SITE (the caller skips even
// the clock reads when tracing is off -- promotions can be hot under
// the fine-grained benches); this is just the sink.
inline void record_promotion(std::uint64_t start_ns, std::uint64_t dur_ns,
                             std::uint64_t bytes) {
  record(Ev::kPromotion, start_ns, dur_ns, bytes);
}

// ---- aggregation ----------------------------------------------------------

struct Snapshot {
  Histogram by_kind[kKinds];
  std::uint64_t ring_events = 0;   // events currently held in rings
  std::uint64_t ring_dropped = 0;  // oldest events overwritten

  std::uint64_t pause_count() const {
    std::uint64_t n = 0;
    for (unsigned k = 0; k < kPauseKinds; ++k) {
      n += by_kind[k].count();
    }
    return n;
  }
};

inline Snapshot snapshot() {
  Snapshot out;
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot* s = detail::slot_at(i);
    if (s == nullptr) {
      continue;
    }
    detail::LockGuard g(s->mu);
    for (unsigned k = 0; k < kKinds; ++k) {
      out.by_kind[k].merge(s->hist[k]);
    }
    out.ring_events += s->ring.size();
    out.ring_dropped += s->ring.dropped();
  }
  return out;
}

// Test isolation: zero every slot's histograms and ring. Callers must
// quiesce their runtimes first (slots are per-thread, but a thread
// mid-record would be merged half-reset).
inline void reset() {
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot* s = detail::slot_at(i);
    if (s == nullptr) {
      continue;
    }
    detail::LockGuard g(s->mu);
    for (unsigned k = 0; k < kKinds; ++k) {
      s->hist[k].reset();
    }
    s->ring.clear();
    s->last_kind.store(0xff, std::memory_order_relaxed);
  }
}

// Watchdog dump: async-signal-safe (atomics + write(2) only; does NOT
// take slot locks -- racy reads are fine when diagnosing a hang).
inline void dump_last_events(int fd) {
  parmem::detail::sig_write(fd, "last trace events:");
  bool any = false;
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot* s = detail::slot_at(i);
    if (s == nullptr) {
      continue;
    }
    std::uint8_t k = s->last_kind.load(std::memory_order_relaxed);
    if (k == 0xff) {
      continue;
    }
    any = true;
    parmem::detail::sig_write(fd, " [");
    parmem::detail::sig_write_i64(fd, i);
    parmem::detail::sig_write(fd, "]=");
    parmem::detail::sig_write(fd, kind_name(static_cast<Ev>(k)));
    parmem::detail::sig_write(fd, "+");
    parmem::detail::sig_write_i64(
        fd, static_cast<long long>(
                s->last_dur_ns.load(std::memory_order_relaxed)));
    parmem::detail::sig_write(fd, "ns");
  }
  if (!any) {
    parmem::detail::sig_write(fd, " (none recorded)");
  }
  parmem::detail::sig_write(fd, "\n");
}

// ---- Chrome trace-event JSON output ---------------------------------------

// Writes every ring's retained events as Chrome trace-event JSON
// ("X" complete events, ts/dur in microseconds), one tid per worker
// slot. Loadable in Perfetto / chrome://tracing. Returns false if the
// file could not be opened.
inline bool write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  std::uint64_t dropped = 0;
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot* s = detail::slot_at(i);
    if (s == nullptr) {
      continue;
    }
    detail::LockGuard g(s->mu);
    dropped += s->ring.dropped();
    s->ring.for_each_oldest_first([&](const Event& e) {
      std::fprintf(
          f,
          "%s\n{\"name\":\"%s\",\"cat\":\"parmem\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
          "\"args\":{\"bytes\":%llu}}",
          first ? "" : ",", kind_name(e.kind),
          static_cast<double>(e.start_ns) / 1e3,
          static_cast<double>(e.dur_ns) / 1e3, i,
          static_cast<unsigned long long>(e.arg));
      first = false;
    });
  }
  std::fprintf(f,
               "\n],\"otherData\":{\"dropped_events\":%llu}}\n",
               static_cast<unsigned long long>(dropped));
  std::fclose(f);
  return true;
}

// PARMEM_TRACE=out.json: enable ring recording now, write the Chrome
// trace at process exit. Idempotent; called from every runtime's
// constructor (like env::install_failpoints_env).
inline void init_from_env() {
  static const bool once = [] {
    const char* v = std::getenv("PARMEM_TRACE");
    if (v == nullptr || v[0] == '\0') {
      return false;
    }
    detail::out_path() = v;
    enable();
    std::atexit([] {
      if (!write_json(detail::out_path().c_str())) {
        std::fprintf(stderr, "parmem: cannot write PARMEM_TRACE file %s\n",
                     detail::out_path().c_str());
      }
    });
    return true;
  }();
  (void)once;
}

}  // namespace parmem::trace
