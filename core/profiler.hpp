// SIGPROF-driven sampling profiler: an ITIMER_PROF timer delivers
// SIGPROF to whichever thread is burning CPU; the handler walks the
// frame-pointer chain async-signal-safely and appends the stack --
// tagged with the thread's current phase (core/phase.hpp) -- to a
// per-worker-slot lock-free ring. stop() folds identical stacks and
// writes collapsed-stack output for scripts/flamegraph.py /
// scripts/flamediff.py.
//
// Async-signal-safety rules the handler obeys:
//   * no allocation ever: every slot's sample buffer is preallocated
//     by start(), the handler only loads preexisting pointers;
//   * errno is saved/restored;
//   * the frame walk only dereferences addresses inside the sampled
//     thread's own stack, bounded by [sp, stack watermark]. The
//     watermark is noted by note_stack_hi() at thread entry points
//     (scheduler worker_main, runtime construction); a thread that
//     never noted one -- or a slot-collided thread, detected by tid
//     mismatch -- gets PC-only samples instead of a walk;
//   * the walk and handler are no_sanitize("address","thread"):
//     reading saved frame pointers trips ASan/TSan instrumentation by
//     design, and the races on phase tags are benign relaxed atomics.
//
// Sample record layout in the ring (uint64 words):
//   [ (depth << 8) | phase , pc0 (leaf), pc1, ... pc{depth-1} ]
// Frames are raw addresses; the collapsed output carries the
// executable's path and load base in a '#' header so flamegraph.py can
// symbolize offline with addr2line (works for static / non-exported
// functions, which dladdr cannot see in a PIE executable).
//
// Requires -fno-omit-frame-pointer for useful stacks (CMake option
// PARMEM_FRAME_POINTERS, default ON); without it samples degrade to
// PC-only, they do not crash.
#pragma once

#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/phase.hpp"

namespace parmem::profiler {

namespace detail {

constexpr unsigned kMaxDepth = 64;
constexpr std::size_t kRingWords = 1u << 16;  // 512 KiB per slot

inline long sys_tid() { return static_cast<long>(::syscall(SYS_gettid)); }

// One per worker slot (same slot space as core/phase.hpp). The signal
// handler is the only writer (and only ever on the slot's own thread);
// head_ is published with release so the post-stop reader sees whole
// records.
struct Slot {
  std::vector<std::uint64_t> buf;  // sized once by start(), never grown
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> stack_hi{0};
  std::atomic<long> tid{0};
};

inline Slot* slots() {
  static Slot table[phase::kSlots];
  return table;
}

inline std::atomic<bool>& armed() {
  static std::atomic<bool> f{false};
  return f;
}

struct State {
  std::string out_path;
  std::string exe_path;
  std::uint64_t exe_base = 0;
  unsigned hz = 0;
  struct sigaction old_sa = {};
  bool have_old_sa = false;
};

inline State& state() {
  static State s;
  return s;
}

// Load base of the main executable (PIE): lowest start address of a
// /proc/self/maps line whose path is /proc/self/exe's target.
// Called from start(), never from the handler.
inline std::uint64_t find_exe_base(std::string& exe_out) {
  char exe[4096];
  ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (n <= 0) {
    return 0;
  }
  exe[n] = '\0';
  exe_out = exe;
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) {
    return 0;
  }
  std::uint64_t base = 0;
  char line[4096];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strstr(line, exe) == nullptr) {
      continue;
    }
    std::uint64_t lo = std::strtoull(line, nullptr, 16);
    if (base == 0 || lo < base) {
      base = lo;
    }
  }
  std::fclose(f);
  return base;
}

#if defined(__x86_64__)

// Walk the saved-rbp chain. Each hop must move strictly up the stack,
// stay inside [sp, stack_hi - 16], and be 8-byte aligned -- the chain
// from code compiled with frame pointers satisfies this until it
// reaches the thread's entry frame (glibc zeroes rbp there), and
// garbage rbp values from frame-pointer-less libc leaves fail the
// bounds check instead of faulting.
__attribute__((no_sanitize("address"), no_sanitize("thread")))
inline unsigned walk(std::uint64_t pc, std::uint64_t bp, std::uint64_t sp,
                     std::uint64_t hi, std::uint64_t* out,
                     unsigned max_depth) {
  unsigned d = 0;
  out[d++] = pc;
  std::uint64_t fp = bp;
  while (d < max_depth && fp >= sp && fp + 16 <= hi && (fp & 7) == 0) {
    const std::uint64_t* frame = reinterpret_cast<const std::uint64_t*>(fp);
    std::uint64_t ret = frame[1];
    std::uint64_t next = frame[0];
    if (ret == 0) {
      break;
    }
    out[d++] = ret;
    if (next <= fp) {
      break;
    }
    fp = next;
  }
  return d;
}

__attribute__((no_sanitize("address"), no_sanitize("thread")))
inline void handler(int, siginfo_t*, void* ucv) {
  if (!armed().load(std::memory_order_relaxed)) {
    return;
  }
  const int saved_errno = errno;
  ucontext_t* uc = static_cast<ucontext_t*>(ucv);
  const std::uint64_t pc =
      static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_RIP]);
  const std::uint64_t bp =
      static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_RBP]);
  const std::uint64_t sp =
      static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_RSP]);

  Slot& s = slots()[phase::my_slot_index()];
  std::uint64_t frames[kMaxDepth];
  unsigned depth = 1;
  frames[0] = pc;
  const std::uint64_t hi = s.stack_hi.load(std::memory_order_relaxed);
  if (hi != 0 && s.tid.load(std::memory_order_relaxed) == sys_tid() &&
      sp < hi) {
    depth = walk(pc, bp, sp, hi, frames, kMaxDepth);
  }

  const std::uint64_t need = 1 + depth;
  const std::uint64_t head = s.head.load(std::memory_order_relaxed);
  if (head + need > s.buf.size() || s.buf.empty()) {
    s.drops.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  s.buf[head] =
      (static_cast<std::uint64_t>(depth) << 8) |
      static_cast<std::uint64_t>(phase::current());
  for (unsigned i = 0; i < depth; ++i) {
    s.buf[head + 1 + i] = frames[i];
  }
  s.head.store(head + need, std::memory_order_release);
  errno = saved_errno;
}

#else  // !__x86_64__

inline void handler(int, siginfo_t*, void*) {}

#endif

}  // namespace detail

// Note the calling thread's stack watermark for the frame walk: the
// address of a local in (or above) the outermost frame worth
// unwinding. Called at thread entry points; monotone per registration
// (a fresh thread reusing the slot re-registers via the tid change).
inline void note_stack_hi() {
  std::uint64_t here = reinterpret_cast<std::uint64_t>(&here);
  detail::Slot& s = detail::slots()[phase::my_slot_index()];
  const long me = detail::sys_tid();
  if (s.tid.load(std::memory_order_relaxed) != me) {
    s.tid.store(me, std::memory_order_relaxed);
    s.stack_hi.store(here, std::memory_order_relaxed);
    return;
  }
  if (here > s.stack_hi.load(std::memory_order_relaxed)) {
    s.stack_hi.store(here, std::memory_order_relaxed);
  }
}

inline bool running() {
  return detail::armed().load(std::memory_order_relaxed);
}

// Arm SIGPROF sampling at `hz`. Allocates every slot's ring up front
// so the handler never allocates. Idempotent while running.
inline bool start(unsigned hz = 499) {
  if (running()) {
    return true;
  }
  detail::State& st = detail::state();
  st.hz = hz == 0 ? 499 : hz;
  if (st.exe_base == 0) {
    st.exe_base = detail::find_exe_base(st.exe_path);
  }
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot& s = detail::slots()[i];
    if (s.buf.empty()) {
      s.buf.assign(detail::kRingWords, 0);
    }
    s.head.store(0, std::memory_order_relaxed);
    s.drops.store(0, std::memory_order_relaxed);
  }
  note_stack_hi();

  struct sigaction sa = {};
  sa.sa_sigaction = &detail::handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &st.old_sa) != 0) {
    return false;
  }
  st.have_old_sa = true;
  detail::armed().store(true, std::memory_order_relaxed);

  const long usec = 1000000L / static_cast<long>(st.hz);
  struct itimerval it = {};
  it.it_interval.tv_usec = usec;
  it.it_value.tv_usec = usec;
  if (setitimer(ITIMER_PROF, &it, nullptr) != 0) {
    detail::armed().store(false, std::memory_order_relaxed);
    return false;
  }
  return true;
}

// Disarm the timer and handler. Samples stay buffered for
// write_collapsed(); start() may be called again afterwards.
inline void stop() {
  if (!running()) {
    return;
  }
  struct itimerval off = {};
  setitimer(ITIMER_PROF, &off, nullptr);
  detail::armed().store(false, std::memory_order_relaxed);
  detail::State& st = detail::state();
  if (st.have_old_sa) {
    sigaction(SIGPROF, &st.old_sa, nullptr);
    st.have_old_sa = false;
  }
}

inline std::uint64_t sample_count() {
  std::uint64_t n = 0;
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot& s = detail::slots()[i];
    const std::uint64_t head = s.head.load(std::memory_order_acquire);
    std::uint64_t off = 0;
    while (off < head) {
      ++n;
      off += 1 + (s.buf[off] >> 8);
    }
  }
  return n;
}

inline std::uint64_t drop_count() {
  std::uint64_t n = 0;
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    n += detail::slots()[i].drops.load(std::memory_order_relaxed);
  }
  return n;
}

// Write folded collapsed-stack output:
//   # parmem-profile binary=<exe> base=0x<load base> samples=N drops=D
//   <phase>;0x<root pc>;...;0x<leaf pc> <count>
// Root-first order (flame-graph convention); addresses raw (subtract
// `base` before addr2line). Call after stop(), or accept losing the
// samples that land mid-write.
inline bool write_collapsed(const char* path) {
  std::map<std::string, std::uint64_t> folded;
  char tok[32];
  for (unsigned i = 0; i < phase::kSlots; ++i) {
    detail::Slot& s = detail::slots()[i];
    const std::uint64_t head = s.head.load(std::memory_order_acquire);
    std::uint64_t off = 0;
    while (off < head) {
      const std::uint64_t hdr = s.buf[off];
      const unsigned depth = static_cast<unsigned>(hdr >> 8);
      const auto ph = static_cast<phase::Phase>(hdr & 0xff);
      std::string key = phase::name(ph);
      for (unsigned d = depth; d-- > 0;) {  // leaf is stored first
        std::snprintf(tok, sizeof tok, ";0x%llx",
                      static_cast<unsigned long long>(s.buf[off + 1 + d]));
        key += tok;
      }
      ++folded[key];
      off += 1 + depth;
    }
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return false;
  }
  const detail::State& st = detail::state();
  std::uint64_t total = 0;
  for (const auto& kv : folded) {
    total += kv.second;
  }
  std::fprintf(f, "# parmem-profile binary=%s base=0x%llx samples=%llu "
               "drops=%llu\n",
               st.exe_path.empty() ? "?" : st.exe_path.c_str(),
               static_cast<unsigned long long>(st.exe_base),
               static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(drop_count()));
  for (const auto& kv : folded) {
    std::fprintf(f, "%s %llu\n", kv.first.c_str(),
                 static_cast<unsigned long long>(kv.second));
  }
  std::fclose(f);
  return true;
}

// PARMEM_PROFILE=out.folded [PARMEM_PROFILE_HZ=n]: start sampling now,
// stop + write collapsed output at process exit. Idempotent; called
// from every runtime's constructor.
inline void init_from_env() {
  static const bool once = [] {
    const char* v = std::getenv("PARMEM_PROFILE");
    if (v == nullptr || v[0] == '\0') {
      return false;
    }
    detail::state().out_path = v;
    unsigned hz = 499;
    if (const char* h = std::getenv("PARMEM_PROFILE_HZ")) {
      const long parsed = std::strtol(h, nullptr, 10);
      if (parsed > 0 && parsed <= 10000) {
        hz = static_cast<unsigned>(parsed);
      }
    }
    start(hz);
    std::atexit([] {
      stop();
      const std::string& p = detail::state().out_path;
      if (!write_collapsed(p.c_str())) {
        std::fprintf(stderr,
                     "parmem: cannot write PARMEM_PROFILE file %s\n",
                     p.c_str());
      }
    });
    return true;
  }();
  (void)once;
}

}  // namespace parmem::profiler
