// Workload kernels for the figure/ablation drivers, templated over the
// runtime (seq / stw / localheap / hier -- anything RuntimeLike). Each
// kernel returns a KernelOut whose checksum is deterministic across
// runtimes and worker counts; the parity tests assert exactly that.
//
// All kernels follow the portability contract of runtimes/runtime_api.hpp:
//
//   * anything live across an alloc or a fork2 sits in a RootFrame Local;
//   * branches hand heap results to the parent by publish()-ing them into
//     a parent Local as their last heap action, and return only scalars;
//   * structures shared across a fork are listed in fork2's roots.
//
// Pure kernels represent sequences as weight-balanced ROPES (leaf chunks
// of <= kLeafCap boxed i64s under binary nodes) built bottom-up by the
// fork tree: under hierarchical heaps the pieces flow to the parent by
// the join-time merge (zero promotion); under local heaps every publish
// is a promotion -- which is precisely the contrast fig10 and
// tab_promotion_volume measure. Imperative kernels mutate flat scalar
// arrays in place through the write barriers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_common/harness.hpp"
#include "core/object.hpp"
#include "core/roots.hpp"

namespace parmem::bench {

struct KernelOut {
  std::int64_t checksum = 0;
};

namespace wl {

inline constexpr std::int64_t kLeafCap = 1024;  // elements per rope leaf

inline std::uint64_t mix64(std::uint64_t x) {  // splitmix64 finalizer
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Rope layout: leaf = {nptr 0, scalars [len, v0..v(len-1)]},
//              node = {nptr 2 (left,right), scalars [element count]}.
template <class Ctx>
std::int64_t rope_count(Object* r) {
  return Ctx::read_i64_imm(r, 0);
}

template <class Ctx>
Object* rope_leaf(Ctx& c, const std::int64_t* vals, std::int64_t len) {
  Object* o = c.alloc(0, static_cast<std::uint32_t>(1 + len));
  Ctx::init_i64(o, 0, len);
  for (std::int64_t i = 0; i < len; ++i) {
    Ctx::init_i64(o, static_cast<std::uint32_t>(1 + i), vals[i]);
  }
  return o;
}

template <class Ctx>
Object* rope_node(Ctx& c, const Local& l, const Local& r) {
  Object* o = c.alloc(2, 1);
  Object* lp = l.get();  // re-read after the alloc: it may have collected
  Object* rp = r.get();
  Ctx::init_i64(o, 0, rope_count<Ctx>(lp) + rope_count<Ctx>(rp));
  Ctx::init_ptr(o, 0, lp);
  Ctx::init_ptr(o, 1, rp);
  return o;
}

// In-order element walk. Traversal allocates nothing, so raw pointers
// are safe for its duration.
template <class Ctx, class Fn>
void rope_for_each(Object* r, const Fn& fn) {
  std::vector<Object*> stack;
  stack.push_back(r);
  while (!stack.empty()) {
    Object* o = stack.back();
    stack.pop_back();
    if (o == nullptr) {
      continue;
    }
    if (o->nptr() == 2) {
      stack.push_back(Ctx::read_ptr(o, 1));
      stack.push_back(Ctx::read_ptr(o, 0));
    } else {
      std::int64_t len = Ctx::read_i64_imm(o, 0);
      for (std::int64_t i = 0; i < len; ++i) {
        fn(Ctx::read_i64_imm(o, static_cast<std::uint32_t>(1 + i)));
      }
    }
  }
}

template <class Ctx>
std::uint64_t rope_sum_seq(Object* r) {
  std::uint64_t sum = 0;
  rope_for_each<Ctx>(r, [&](std::int64_t v) {
    sum += static_cast<std::uint64_t>(v);
  });
  return sum;
}

template <class Ctx>
void rope_extract(Object* r, std::vector<std::int64_t>* out) {
  rope_for_each<Ctx>(r, [&](std::int64_t v) { out->push_back(v); });
}

template <class RT>
Object* rope_from_vec(typename RT::Ctx& c, const std::vector<std::int64_t>& v,
                      std::size_t lo, std::size_t hi) {
  using Ctx = typename RT::Ctx;
  std::size_t n = hi - lo;
  if (n <= static_cast<std::size_t>(kLeafCap)) {
    return rope_leaf(c, v.data() + lo, static_cast<std::int64_t>(n));
  }
  RootFrame fr(c);
  std::size_t mid = lo + n / 2;
  Local l = fr.local(rope_from_vec<RT>(c, v, lo, mid));
  Local r = fr.local(rope_from_vec<RT>(c, v, mid, hi));
  return rope_node<Ctx>(c, l, r);
}

template <class RT, class Gen>
Object* rope_build_seq(typename RT::Ctx& c, std::int64_t lo, std::int64_t hi,
                       const Gen& gen) {
  using Ctx = typename RT::Ctx;
  std::int64_t n = hi - lo;
  if (n <= kLeafCap) {
    Object* o = c.alloc(0, static_cast<std::uint32_t>(1 + n));
    Ctx::init_i64(o, 0, n);
    for (std::int64_t i = 0; i < n; ++i) {
      Ctx::init_i64(o, static_cast<std::uint32_t>(1 + i), gen(lo + i));
    }
    return o;
  }
  RootFrame fr(c);
  std::int64_t mid = lo + n / 2;
  Local l = fr.local(rope_build_seq<RT>(c, lo, mid, gen));
  Local r = fr.local(rope_build_seq<RT>(c, mid, hi, gen));
  return rope_node<Ctx>(c, l, r);
}

template <class RT, class Gen>
Object* rope_build(typename RT::Ctx& c, std::int64_t lo, std::int64_t hi,
                   std::int64_t grain, const Gen& gen) {
  using Ctx = typename RT::Ctx;
  if (hi - lo <= grain) {
    return rope_build_seq<RT>(c, lo, hi, gen);
  }
  RootFrame fr(c);
  Local la = fr.local(nullptr);
  Local lb = fr.local(nullptr);
  std::int64_t mid = lo + (hi - lo) / 2;
  RT::fork2(
      c, {la, lb},
      [&](Ctx& cc) {
        Object* s = rope_build<RT>(cc, lo, mid, grain, gen);
        la.set(cc.publish(s));
      },
      [&](Ctx& cc) {
        Object* s = rope_build<RT>(cc, mid, hi, grain, gen);
        lb.set(cc.publish(s));
      });
  return rope_node<Ctx>(c, la, lb);
}

template <class RT>
std::uint64_t rope_sum(typename RT::Ctx& c, const Local& in,
                       std::int64_t grain) {
  using Ctx = typename RT::Ctx;
  Object* r = in.get();
  if (r->nptr() != 2 || rope_count<Ctx>(r) <= grain) {
    return rope_sum_seq<Ctx>(r);
  }
  RootFrame fr(c);
  Local lin = fr.local(Ctx::read_ptr(r, 0));
  Local rin = fr.local(Ctx::read_ptr(r, 1));
  auto [a, b] = RT::fork2(
      c, {lin, rin},
      [&](Ctx& cc) { return rope_sum<RT>(cc, lin, grain); },
      [&](Ctx& cc) { return rope_sum<RT>(cc, rin, grain); });
  return a + b;
}

// Structural map/filter: leaves are transformed through a std::vector
// staging buffer (extract first, allocate after) so no raw input
// pointer is ever held across an allocation.
template <class RT, class F>
Object* rope_map(typename RT::Ctx& c, const Local& in, std::int64_t grain,
                 const F& f) {
  using Ctx = typename RT::Ctx;
  Object* r = in.get();
  if (r->nptr() != 2) {
    std::vector<std::int64_t> vals;
    vals.reserve(static_cast<std::size_t>(Ctx::read_i64_imm(r, 0)));
    rope_for_each<Ctx>(r, [&](std::int64_t v) { vals.push_back(f(v)); });
    return rope_leaf(c, vals.data(), static_cast<std::int64_t>(vals.size()));
  }
  RootFrame fr(c);
  Local lin = fr.local(Ctx::read_ptr(r, 0));
  Local rin = fr.local(Ctx::read_ptr(r, 1));
  Local la = fr.local(nullptr);
  Local lb = fr.local(nullptr);
  if (rope_count<Ctx>(r) <= grain) {
    la.set(rope_map<RT>(c, lin, grain, f));
    lb.set(rope_map<RT>(c, rin, grain, f));
  } else {
    RT::fork2(
        c, {lin, rin, la, lb},
        [&](Ctx& cc) { la.set(cc.publish(rope_map<RT>(cc, lin, grain, f))); },
        [&](Ctx& cc) { lb.set(cc.publish(rope_map<RT>(cc, rin, grain, f))); });
  }
  return rope_node<Ctx>(c, la, lb);
}

template <class RT, class Keep>
Object* rope_filter(typename RT::Ctx& c, const Local& in, std::int64_t grain,
                    const Keep& keep) {
  using Ctx = typename RT::Ctx;
  Object* r = in.get();
  if (r->nptr() != 2) {
    std::vector<std::int64_t> vals;
    rope_for_each<Ctx>(r, [&](std::int64_t v) {
      if (keep(v)) {
        vals.push_back(v);
      }
    });
    return rope_leaf(c, vals.data(), static_cast<std::int64_t>(vals.size()));
  }
  RootFrame fr(c);
  Local lin = fr.local(Ctx::read_ptr(r, 0));
  Local rin = fr.local(Ctx::read_ptr(r, 1));
  Local la = fr.local(nullptr);
  Local lb = fr.local(nullptr);
  if (rope_count<Ctx>(r) <= grain) {
    la.set(rope_filter<RT>(c, lin, grain, keep));
    lb.set(rope_filter<RT>(c, rin, grain, keep));
  } else {
    RT::fork2(
        c, {lin, rin, la, lb},
        [&](Ctx& cc) {
          la.set(cc.publish(rope_filter<RT>(cc, lin, grain, keep)));
        },
        [&](Ctx& cc) {
          lb.set(cc.publish(rope_filter<RT>(cc, rin, grain, keep)));
        });
  }
  return rope_node<Ctx>(c, la, lb);
}

// Purely functional mergesort over ropes: sorted subsequences are fresh
// ropes; the merge stages both inputs through vectors (allocation-free
// extraction) before building the output.
template <class RT>
Object* msort_pure_rec(typename RT::Ctx& c, const Local& in,
                       std::int64_t grain) {
  using Ctx = typename RT::Ctx;
  Object* r = in.get();
  if (r->nptr() != 2 || rope_count<Ctx>(r) <= grain) {
    std::vector<std::int64_t> vals;
    vals.reserve(static_cast<std::size_t>(rope_count<Ctx>(r)));
    rope_extract<Ctx>(r, &vals);
    std::sort(vals.begin(), vals.end());
    return rope_from_vec<RT>(c, vals, 0, vals.size());
  }
  RootFrame fr(c);
  Local lin = fr.local(Ctx::read_ptr(r, 0));
  Local rin = fr.local(Ctx::read_ptr(r, 1));
  Local la = fr.local(nullptr);
  Local lb = fr.local(nullptr);
  RT::fork2(
      c, {lin, rin, la, lb},
      [&](Ctx& cc) {
        la.set(cc.publish(msort_pure_rec<RT>(cc, lin, grain)));
      },
      [&](Ctx& cc) {
        lb.set(cc.publish(msort_pure_rec<RT>(cc, rin, grain)));
      });
  std::vector<std::int64_t> a;
  std::vector<std::int64_t> b;
  rope_extract<Ctx>(la.get(), &a);
  rope_extract<Ctx>(lb.get(), &b);
  std::vector<std::int64_t> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return rope_from_vec<RT>(c, out, 0, out.size());
}

template <class RT>
std::int64_t fib_rec(typename RT::Ctx& c, std::int64_t n) {
  using Ctx = typename RT::Ctx;
  if (n < 2) {
    // Box the base case so fib exercises the allocator like the ML
    // original (boxed arithmetic), not just the scheduler.
    Object* b = c.alloc(0, 1);
    Ctx::init_i64(b, 0, n);
    return Ctx::read_i64_imm(b, 0);
  }
  if (n < 16) {
    return fib_rec<RT>(c, n - 1) + fib_rec<RT>(c, n - 2);
  }
  auto [a, b] = RT::fork2(
      c, {}, [&](Ctx& cc) { return fib_rec<RT>(cc, n - 1); },
      [&](Ctx& cc) { return fib_rec<RT>(cc, n - 2); });
  return a + b;
}

// Ordered weighted sum so permutations are caught, not just multisets.
template <class Ctx>
std::uint64_t rope_ordered_checksum(Object* r) {
  std::uint64_t sum = 0;
  std::uint64_t i = 0;
  rope_for_each<Ctx>(r, [&](std::int64_t v) {
    sum += static_cast<std::uint64_t>(v) * (i % 255 + 1);
    ++i;
  });
  return sum + i;
}

// ---- dense / sparse linear algebra over flat scalar arrays ----------------

template <class RT>
void dmm_rec(typename RT::Ctx& c, const Local& A, const Local& B,
             const Local& C, std::int64_t n, std::int64_t r0, std::int64_t r1,
             std::int64_t c0, std::int64_t c1) {
  using Ctx = typename RT::Ctx;
  constexpr std::int64_t kBlock = 1024;  // cells per sequential block
  std::int64_t rows = r1 - r0;
  std::int64_t cols = c1 - c0;
  if (rows * cols <= kBlock || rows == 1 || cols == 1) {
    Object* a = A.get();  // loop allocates nothing: raw pointers are safe
    Object* b = B.get();
    Object* cm = C.get();
    for (std::int64_t i = r0; i < r1; ++i) {
      for (std::int64_t j = c0; j < c1; ++j) {
        std::int64_t sum = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          sum += Ctx::read_i64_imm(a, static_cast<std::uint32_t>(i * n + k)) *
                 Ctx::read_i64_imm(b, static_cast<std::uint32_t>(k * n + j));
        }
        Ctx::write_i64(cm, static_cast<std::uint32_t>(i * n + j), sum);
      }
    }
    return;
  }
  if (rows >= cols) {
    std::int64_t rm = r0 + rows / 2;
    RT::fork2(
        c, {A, B, C},
        [&](Ctx& cc) { dmm_rec<RT>(cc, A, B, C, n, r0, rm, c0, c1); },
        [&](Ctx& cc) { dmm_rec<RT>(cc, A, B, C, n, rm, r1, c0, c1); });
  } else {
    std::int64_t cm = c0 + cols / 2;
    RT::fork2(
        c, {A, B, C},
        [&](Ctx& cc) { dmm_rec<RT>(cc, A, B, C, n, r0, r1, c0, cm); },
        [&](Ctx& cc) { dmm_rec<RT>(cc, A, B, C, n, r0, r1, cm, c1); });
  }
}

template <class RT>
void smvm_rec(typename RT::Ctx& c, const Local& col, const Local& val,
              const Local& x, const Local& y, std::int64_t nnz_per,
              std::int64_t r0, std::int64_t r1, std::int64_t grain) {
  using Ctx = typename RT::Ctx;
  if (r1 - r0 <= grain) {
    Object* co = col.get();
    Object* vo = val.get();
    Object* xo = x.get();
    Object* yo = y.get();
    for (std::int64_t i = r0; i < r1; ++i) {
      std::int64_t sum = 0;
      for (std::int64_t k = i * nnz_per; k < (i + 1) * nnz_per; ++k) {
        std::int64_t j = Ctx::read_i64_imm(co, static_cast<std::uint32_t>(k));
        sum += Ctx::read_i64_imm(vo, static_cast<std::uint32_t>(k)) *
               Ctx::read_i64_imm(xo, static_cast<std::uint32_t>(j));
      }
      Ctx::write_i64(yo, static_cast<std::uint32_t>(i), sum);
    }
    return;
  }
  std::int64_t mid = r0 + (r1 - r0) / 2;
  RT::fork2(
      c, {col, val, x, y},
      [&](Ctx& cc) {
        smvm_rec<RT>(cc, col, val, x, y, nnz_per, r0, mid, grain);
      },
      [&](Ctx& cc) {
        smvm_rec<RT>(cc, col, val, x, y, nnz_per, mid, r1, grain);
      });
}

// ---- imperative in-place mergesort ----------------------------------------

template <class RT>
void msort_imp_rec(typename RT::Ctx& c, const Local& data, const Local& tmp,
                   std::int64_t lo, std::int64_t hi, std::int64_t grain) {
  using Ctx = typename RT::Ctx;
  if (hi - lo <= grain) {
    Object* d = data.get();
    std::vector<std::int64_t> vals(static_cast<std::size_t>(hi - lo));
    for (std::int64_t i = lo; i < hi; ++i) {
      vals[static_cast<std::size_t>(i - lo)] =
          Ctx::read_i64_mut(d, static_cast<std::uint32_t>(i));
    }
    std::sort(vals.begin(), vals.end());
    for (std::int64_t i = lo; i < hi; ++i) {
      Ctx::write_i64(d, static_cast<std::uint32_t>(i),
                     vals[static_cast<std::size_t>(i - lo)]);
    }
    return;
  }
  std::int64_t mid = lo + (hi - lo) / 2;
  RT::fork2(
      c, {data, tmp},
      [&](Ctx& cc) { msort_imp_rec<RT>(cc, data, tmp, lo, mid, grain); },
      [&](Ctx& cc) { msort_imp_rec<RT>(cc, data, tmp, mid, hi, grain); });
  // Merge the two sorted halves through the shared temp buffer. Only
  // this task touches [lo,hi) now; siblings work on disjoint ranges.
  Object* d = data.get();
  Object* t = tmp.get();
  std::int64_t i = lo;
  std::int64_t j = mid;
  for (std::int64_t k = lo; k < hi; ++k) {
    std::int64_t vi = i < mid
                          ? Ctx::read_i64_mut(d, static_cast<std::uint32_t>(i))
                          : 0;
    std::int64_t vj = j < hi
                          ? Ctx::read_i64_mut(d, static_cast<std::uint32_t>(j))
                          : 0;
    if (j >= hi || (i < mid && vi <= vj)) {
      Ctx::write_i64(t, static_cast<std::uint32_t>(k), vi);
      ++i;
    } else {
      Ctx::write_i64(t, static_cast<std::uint32_t>(k), vj);
      ++j;
    }
  }
  for (std::int64_t k = lo; k < hi; ++k) {
    Ctx::write_i64(d, static_cast<std::uint32_t>(k),
                   Ctx::read_i64_mut(t, static_cast<std::uint32_t>(k)));
  }
}

// ---- two-phase frontier machinery (USP grid BFS + graph reachability) -----
//
// Two phases per round keep it race-free AND deterministic on every
// runtime: a read-only parallel scan finds the vertices adjacent to the
// current frontier, then a parallel apply visits them and writes their
// distances (disjoint vertices, no concurrent readers). The scan is
// generic over the adjacency test so the 4-neighbour grid (usp) and an
// explicit edge list (reachability) share the machinery.

// Pull-based frontier scan: collect the unvisited vertices in [lo, hi)
// for which `adj(dd, ax, v)` sees a frontier neighbour. `aux` is
// whatever extra structure the adjacency test reads (the edge array for
// reachability; pass `dist` again when there is none) -- it rides in
// the fork roots so every runtime may treat it as shared. The scan
// allocates nothing, so the leaf hands raw pointers to `adj`.
template <class RT, class Adj>
std::vector<std::int64_t> frontier_scan(typename RT::Ctx& c,
                                        const Local& dist, const Local& aux,
                                        std::int64_t lo, std::int64_t hi,
                                        std::int64_t grain, const Adj& adj) {
  using Ctx = typename RT::Ctx;
  if (hi - lo <= grain) {
    std::vector<std::int64_t> found;
    Object* dd = dist.get();  // read-only scan: no allocations
    Object* ax = aux.get();
    for (std::int64_t v = lo; v < hi; ++v) {
      if (Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(v)) != -1) {
        continue;
      }
      if (adj(dd, ax, v)) {
        found.push_back(v);
      }
    }
    return found;
  }
  std::int64_t mid = lo + (hi - lo) / 2;
  auto [a, b] = RT::fork2(
      c, {dist, aux},
      [&](Ctx& cc) {
        return frontier_scan<RT>(cc, dist, aux, lo, mid, grain, adj);
      },
      [&](Ctx& cc) {
        return frontier_scan<RT>(cc, dist, aux, mid, hi, grain, adj);
      });
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

template <class RT, class Visit>
void usp_apply(typename RT::Ctx& c, const Local& dist, const Local& aux,
               const std::vector<std::int64_t>& found, std::size_t lo,
               std::size_t hi, std::int64_t d, std::size_t grain,
               const Visit& visit) {
  using Ctx = typename RT::Ctx;
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::int64_t v = found[i];
      visit(c, v);  // may allocate and write_ptr (usp-tree's promotion)
      Ctx::write_i64(dist.get(), static_cast<std::uint32_t>(v), d + 1);
    }
    return;
  }
  std::size_t mid = lo + (hi - lo) / 2;
  RT::fork2(
      c, {dist, aux},
      [&](Ctx& cc) {
        usp_apply<RT>(cc, dist, aux, found, lo, mid, d, grain, visit);
      },
      [&](Ctx& cc) {
        usp_apply<RT>(cc, dist, aux, found, mid, hi, d, grain, visit);
      });
}

template <class RT, class Visit>
std::uint64_t usp_bfs(typename RT::Ctx& c, const Local& dist,
                      const Local& aux, std::int64_t side,
                      const Visit& visit) {
  using Ctx = typename RT::Ctx;
  std::int64_t cells = side * side;
  std::int64_t scan_grain = side * 2 > 64 ? side * 2 : 64;
  std::size_t apply_grain = 64;
  visit(c, std::int64_t{0});
  Ctx::write_i64(dist.get(), 0, 0);
  for (std::int64_t d = 0;; ++d) {
    auto grid_adj = [side, d](Object* dd, Object*, std::int64_t v) {
      std::int64_t x = v % side;
      std::int64_t y = v / side;
      auto at = [&](std::int64_t u) {
        return Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(u));
      };
      return (x > 0 && at(v - 1) == d) || (x + 1 < side && at(v + 1) == d) ||
             (y > 0 && at(v - side) == d) ||
             (y + 1 < side && at(v + side) == d);
    };
    std::vector<std::int64_t> found =
        frontier_scan<RT>(c, dist, dist, 0, cells, scan_grain, grid_adj);
    if (found.empty()) {
      break;
    }
    // Always apply through at least one fork so visitations run in
    // CHILD tasks: that is what makes each usp-tree visit an entangling
    // (promoting) write under hierarchical heaps, whatever the frontier
    // size.
    std::size_t half = found.size() / 2;
    RT::fork2(
        c, {dist, aux},
        [&](Ctx& cc) {
          usp_apply<RT>(cc, dist, aux, found, 0, half, d, apply_grain,
                        visit);
        },
        [&](Ctx& cc) {
          usp_apply<RT>(cc, dist, aux, found, half, found.size(), d,
                        apply_grain, visit);
        });
  }
  std::uint64_t sum = 0;
  Object* dd = dist.get();
  for (std::int64_t v = 0; v < cells; ++v) {
    sum += static_cast<std::uint64_t>(
               Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(v)) + 2) *
           static_cast<std::uint64_t>(v % 1021 + 1);
  }
  return sum;
}

template <class RT>
std::uint64_t usp_tree_instance(typename RT::Ctx& c, std::int64_t side) {
  using Ctx = typename RT::Ctx;
  std::int64_t cells = side * side;
  RootFrame fr(c);
  Local dist = fr.local(c.alloc(0, static_cast<std::uint32_t>(cells)));
  // The visitation tree: a pointer slot per cell in THIS task's heap,
  // so every visit's write_ptr promotes the node up to it.
  Local nodes = fr.local(c.alloc(static_cast<std::uint32_t>(cells), 0));
  {
    Object* dd = dist.get();
    for (std::int64_t v = 0; v < cells; ++v) {
      Ctx::init_i64(dd, static_cast<std::uint32_t>(v), -1);
    }
  }
  auto visit = [&](Ctx& cc, std::int64_t v) {
    Object* nd = cc.alloc(0, 1);
    Ctx::init_i64(nd, 0, v + 1);
    cc.write_ptr(nodes.get(), static_cast<std::uint32_t>(v), nd);
  };
  std::uint64_t sum = usp_bfs<RT>(c, dist, nodes, side, visit);
  Object* no = nodes.get();
  for (std::int64_t v = 0; v < cells; ++v) {
    Object* nd = Ctx::read_ptr(no, static_cast<std::uint32_t>(v));
    if (nd != nullptr) {
      sum += static_cast<std::uint64_t>(Ctx::read_i64_imm(nd, 0)) *
             static_cast<std::uint64_t>(v % 127 + 1);
    }
  }
  return sum;
}

// ---- strassen: recursive 8-way matrix multiply ----------------------------
//
// Pure, allocation-heavy recursion: every multiply of an n x n block
// returns a FRESH compact n x n product. Above the cutoff the block is
// split into quadrants; the eight half-size products are computed by a
// depth-2 fork tree (the paper's 8-way recursion), published to the
// parent, and summed/assembled into fresh arrays with init-only stores.
// A and B are never copied: recursive calls take (row, col) offsets into
// the top-level arrays with a fixed stride.

template <class RT>
Object* strassen_mul(typename RT::Ctx& c, const Local& A, const Local& B,
                     std::int64_t stride, std::int64_t ar, std::int64_t ac,
                     std::int64_t br, std::int64_t bc, std::int64_t n,
                     std::int64_t cutoff) {
  using Ctx = typename RT::Ctx;
  if (n <= cutoff) {
    Object* cm = c.alloc(0, static_cast<std::uint32_t>(n * n));
    Object* a = A.get();  // after the alloc: no more allocations below
    Object* b = B.get();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        std::int64_t sum = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          sum += Ctx::read_i64_imm(
                     a, static_cast<std::uint32_t>((ar + i) * stride + ac + k)) *
                 Ctx::read_i64_imm(
                     b, static_cast<std::uint32_t>((br + k) * stride + bc + j));
        }
        Ctx::init_i64(cm, static_cast<std::uint32_t>(i * n + j), sum);
      }
    }
    return cm;
  }
  const std::int64_t h = n / 2;
  RootFrame fr(c);
  Local q00 = fr.local(nullptr);
  Local q01 = fr.local(nullptr);
  Local q10 = fr.local(nullptr);
  Local q11 = fr.local(nullptr);
  // C(qi,qj) = A(qi,0)*B(0,qj) + A(qi,1)*B(1,qj): two recursive products
  // (their own fork), summed into a fresh compact h x h block.
  auto quadrant = [&](Ctx& cc, std::int64_t qi, std::int64_t qj) -> Object* {
    RootFrame qf(cc);
    Local p1 = qf.local(nullptr);
    Local p2 = qf.local(nullptr);
    RT::fork2(
        cc, {A, B, p1, p2},
        [&](Ctx& c2) {
          p1.set(c2.publish(strassen_mul<RT>(c2, A, B, stride, ar + qi * h,
                                             ac, br, bc + qj * h, h, cutoff)));
        },
        [&](Ctx& c2) {
          p2.set(c2.publish(strassen_mul<RT>(c2, A, B, stride, ar + qi * h,
                                             ac + h, br + h, bc + qj * h, h,
                                             cutoff)));
        });
    Object* s = cc.alloc(0, static_cast<std::uint32_t>(h * h));
    Object* o1 = p1.get();
    Object* o2 = p2.get();
    for (std::int64_t t = 0; t < h * h; ++t) {
      auto idx = static_cast<std::uint32_t>(t);
      Ctx::init_i64(s, idx,
                    Ctx::read_i64_imm(o1, idx) + Ctx::read_i64_imm(o2, idx));
    }
    return s;
  };
  RT::fork2(
      c, {A, B, q00, q01, q10, q11},
      [&](Ctx& cc) {
        RT::fork2(
            cc, {A, B, q00, q01},
            [&](Ctx& c2) { q00.set(c2.publish(quadrant(c2, 0, 0))); },
            [&](Ctx& c2) { q01.set(c2.publish(quadrant(c2, 0, 1))); });
      },
      [&](Ctx& cc) {
        RT::fork2(
            cc, {A, B, q10, q11},
            [&](Ctx& c2) { q10.set(c2.publish(quadrant(c2, 1, 0))); },
            [&](Ctx& c2) { q11.set(c2.publish(quadrant(c2, 1, 1))); });
      });
  Object* cm = c.alloc(0, static_cast<std::uint32_t>(n * n));
  const Local* quads[2][2] = {{&q00, &q01}, {&q10, &q11}};
  for (std::int64_t qi = 0; qi < 2; ++qi) {
    for (std::int64_t qj = 0; qj < 2; ++qj) {
      Object* s = quads[qi][qj]->get();  // no allocations inside the copy
      for (std::int64_t i = 0; i < h; ++i) {
        for (std::int64_t j = 0; j < h; ++j) {
          Ctx::init_i64(
              cm,
              static_cast<std::uint32_t>((qi * h + i) * n + qj * h + j),
              Ctx::read_i64_imm(s, static_cast<std::uint32_t>(i * h + j)));
        }
      }
    }
  }
  return cm;
}

// ---- raytracer: per-pixel tabulate over a small fixed scene ---------------
//
// All-integer ray casting so the image is bit-identical on every
// runtime: a pinhole camera at the origin shoots one unnormalized ray
// per pixel at a handful of spheres; the nearest hit is picked by
// comparing numerators (one shared denominator d.d per ray) and shaded
// from the discriminant -- no floating point anywhere near the checksum.

inline std::int64_t ray_isqrt(std::int64_t v) {
  if (v <= 0) {
    return 0;
  }
  auto x = static_cast<std::int64_t>(__builtin_sqrt(static_cast<double>(v)));
  while (x > 0 && x * x > v) {
    --x;
  }
  while ((x + 1) * (x + 1) <= v) {
    ++x;
  }
  return x;
}

inline std::int64_t ray_trace_pixel(std::int64_t x, std::int64_t y,
                                    std::int64_t w, std::int64_t h) {
  struct Sphere {
    std::int64_t cx, cy, cz, r, albedo;
  };
  static constexpr Sphere kScene[] = {
      {-350, -100, 1200, 300, 3},
      {320, 80, 1500, 400, 5},
      {0, 450, 1000, 250, 7},
      {60, -380, 900, 180, 11},
  };
  const std::int64_t dx = 2 * x - w;
  const std::int64_t dy = 2 * y - h;
  const std::int64_t dz = w;  // focal length = image width
  std::int64_t best_num = -1;  // nearest hit minimizes t = (b - sqrt)/d.d
  std::int64_t shade = ((x ^ y) * 37) & 0xFF;  // background
  for (const Sphere& s : kScene) {
    const std::int64_t b = dx * s.cx + dy * s.cy + dz * s.cz;
    if (b <= 0) {
      continue;  // sphere behind the camera
    }
    const std::int64_t cc =
        s.cx * s.cx + s.cy * s.cy + s.cz * s.cz - s.r * s.r;
    const std::int64_t dd = dx * dx + dy * dy + dz * dz;
    const std::int64_t disc = b * b - dd * cc;
    if (disc < 0) {
      continue;
    }
    const std::int64_t sq = ray_isqrt(disc);
    const std::int64_t tnum = b - sq;
    if (tnum <= 0) {
      continue;  // camera inside the sphere
    }
    if (best_num < 0 || tnum < best_num) {
      best_num = tnum;
      shade = s.albedo * 4096 + (sq * 255) / (b + 1) + ((x * 13 + y * 7) & 15);
    }
  }
  return shade;
}

// ---- dedup: shared hash-set insertion with escaping writes ----------------
//
// The hash space is split into kDedupParts ranges; the fork tree hands
// each leaf task a run of ranges, and a task inserts exactly the input
// elements hashing into its ranges into ITS region of the shared
// open-addressing table -- writes from child tasks escape into the
// root-allocated table (scalar stores: zero promotion under hierarchical
// heaps, whole-table + input promotion at the first spawn under local
// heaps), stay disjoint across tasks, and land in deterministic input
// order within each region.

inline constexpr std::int64_t kDedupParts = 64;

template <class RT>
std::pair<std::uint64_t, std::uint64_t> dedup_rec(
    typename RT::Ctx& c, const Local& in, const Local& table, std::int64_t n,
    std::int64_t region, std::int64_t p0, std::int64_t p1) {
  using Ctx = typename RT::Ctx;
  if (p1 - p0 == 1) {
    const std::int64_t part = p0;
    const std::int64_t base = part * region;
    std::uint64_t uniques = 0;
    std::uint64_t sum = 0;
    Object* io = in.get();  // insertion loop allocates nothing
    Object* to = table.get();
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t v =
          Ctx::read_i64_imm(io, static_cast<std::uint32_t>(i));
      const std::uint64_t hash = mix64(static_cast<std::uint64_t>(v));
      if (static_cast<std::int64_t>(hash & (kDedupParts - 1)) != part) {
        continue;
      }
      std::int64_t j = static_cast<std::int64_t>(
          (hash >> 6) % static_cast<std::uint64_t>(region));
      for (std::int64_t probes = 0; probes < region; ++probes) {
        const std::int64_t slot = Ctx::read_i64_mut(
            to, static_cast<std::uint32_t>(base + j));
        if (slot == 0) {
          Ctx::write_i64(to, static_cast<std::uint32_t>(base + j), v + 1);
          ++uniques;
          sum += static_cast<std::uint64_t>(v);
          break;
        }
        if (slot == v + 1) {
          break;  // duplicate
        }
        j = j + 1 < region ? j + 1 : 0;
      }
    }
    return {uniques, sum};
  }
  std::int64_t mid = p0 + (p1 - p0) / 2;
  auto [a, b] = RT::fork2(
      c, {in, table},
      [&](Ctx& cc) { return dedup_rec<RT>(cc, in, table, n, region, p0, mid); },
      [&](Ctx& cc) {
        return dedup_rec<RT>(cc, in, table, n, region, mid, p1);
      });
  return {a.first + b.first, a.second + b.second};
}

// ---- tourney: tournament tree with parent slots written by children ------
//
// A complete binary tree over n leaves in one flat root-allocated
// array (node i's children are 2i and 2i+1; leaves fill [n, 2n)). Each
// internal slot is written exactly once, by the task that joined the
// two child subtasks -- a child-task write into the parent-owned array
// at every level of the fork tree (escaping scalar stores again: zero
// promotion under hierarchical heaps, O(tree) promotion under local
// heaps at the first spawn).

template <class RT>
std::int64_t tourney_seq(typename RT::Ctx& c, const Local& tree,
                         std::int64_t n, std::int64_t node) {
  using Ctx = typename RT::Ctx;
  Object* t = tree.get();
  if (node >= n) {
    return Ctx::read_i64_mut(t, static_cast<std::uint32_t>(node));
  }
  std::int64_t a = tourney_seq<RT>(c, tree, n, 2 * node);
  std::int64_t b = tourney_seq<RT>(c, tree, n, 2 * node + 1);
  std::int64_t w = a > b ? a : b;
  Ctx::write_i64(tree.get(), static_cast<std::uint32_t>(node), w);
  return w;
}

template <class RT>
std::int64_t tourney_rec(typename RT::Ctx& c, const Local& tree,
                         std::int64_t n, std::int64_t node,
                         std::int64_t leaves, std::int64_t grain) {
  using Ctx = typename RT::Ctx;
  if (node >= n || leaves <= grain) {
    return tourney_seq<RT>(c, tree, n, node);
  }
  auto [a, b] = RT::fork2(
      c, {tree},
      [&](Ctx& cc) {
        return tourney_rec<RT>(cc, tree, n, 2 * node, leaves / 2, grain);
      },
      [&](Ctx& cc) {
        return tourney_rec<RT>(cc, tree, n, 2 * node + 1, leaves / 2, grain);
      });
  std::int64_t w = a > b ? a : b;
  Ctx::write_i64(tree.get(), static_cast<std::uint32_t>(node), w);
  return w;
}

// ---- reachability: frontier-based reachability over an explicit graph -----
//
// Reuses the two-phase frontier machinery (frontier_scan + usp_apply)
// on a deterministic random digraph stored as a flat in-edge array:
// vertex v's kReachDeg in-edge sources sit at esrc[v*kReachDeg ..], -1
// meaning "no edge". A halving backbone (v/2 -> v, present for ~7/8 of
// vertices) keeps the diameter logarithmic while the dropped backbone
// edges leave a deterministic unreachable fringe; two mix64-derived
// extra edges add cross links. Each round mutates the shared visited
// array in place (escaping scalar stores from child tasks).

inline constexpr std::int64_t kReachDeg = 3;

// Deterministic in-edge construction, shared by bench_reachability's
// init and the host-side reachability replay in the tests (so the test
// provably checks the same graph the kernel runs on). -1 = no edge.
inline void reach_edge_sources(std::uint64_t seed, std::int64_t v,
                               std::int64_t n,
                               std::int64_t out[kReachDeg]) {
  const std::uint64_t r =
      mix64(seed ^ (static_cast<std::uint64_t>(v) * 0x2545F49));
  // Sparse in-edges: a halving backbone (dropped for a quarter of the
  // vertices) plus occasional mix64 cross edges. Vertices whose every
  // in-edge is dropped or lands in an unreached part of the graph form
  // a deterministic unreachable fringe.
  out[0] = (v > 0 && r % 4 != 0) ? v / 2 : -1;
  out[1] = (v > 0 && ((r >> 8) & 1) != 0)
               ? static_cast<std::int64_t>(mix64(r + 1) %
                                           static_cast<std::uint64_t>(v))
               : -1;
  out[2] = ((r >> 16) & 3) == 0
               ? static_cast<std::int64_t>(mix64(r + 2) %
                                           static_cast<std::uint64_t>(n))
               : -1;
}

template <class RT>
std::uint64_t reach_bfs(typename RT::Ctx& c, const Local& visited,
                        const Local& esrc, std::int64_t n) {
  using Ctx = typename RT::Ctx;
  std::int64_t scan_grain = 512;
  std::size_t apply_grain = 64;
  Ctx::write_i64(visited.get(), 0, 0);
  auto visit = [](Ctx&, std::int64_t) {};
  for (std::int64_t d = 0;; ++d) {
    auto edge_adj = [d](Object* dd, Object* eo, std::int64_t v) {
      for (std::int64_t j = 0; j < kReachDeg; ++j) {
        const std::int64_t u = Ctx::read_i64_imm(
            eo, static_cast<std::uint32_t>(v * kReachDeg + j));
        if (u >= 0 &&
            Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(u)) == d) {
          return true;
        }
      }
      return false;
    };
    std::vector<std::int64_t> found =
        frontier_scan<RT>(c, visited, esrc, 0, n, scan_grain, edge_adj);
    if (found.empty()) {
      break;
    }
    std::size_t half = found.size() / 2;
    RT::fork2(
        c, {visited, esrc},
        [&](Ctx& cc) {
          usp_apply<RT>(cc, visited, esrc, found, 0, half, d, apply_grain,
                        visit);
        },
        [&](Ctx& cc) {
          usp_apply<RT>(cc, visited, esrc, found, half, found.size(), d,
                        apply_grain, visit);
        });
  }
  std::uint64_t sum = 0;
  std::uint64_t reached = 0;
  Object* dd = visited.get();
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t lvl =
        Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(v));
    if (lvl >= 0) {
      ++reached;
    }
    sum += static_cast<std::uint64_t>(lvl + 2) *
           static_cast<std::uint64_t>(v % 1021 + 1);
  }
  return sum * 31 + reached;
}

}  // namespace wl

// ---- the kernels ----------------------------------------------------------

template <class RT>
KernelOut bench_fib(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    return KernelOut{wl::fib_rec<RT>(c, z.fib_n)};
  });
}

template <class RT>
KernelOut bench_tabulate(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    std::uint64_t seed = z.seed;
    auto gen = [seed](std::int64_t i) {
      return static_cast<std::int64_t>(
          wl::mix64(seed + static_cast<std::uint64_t>(i)) & 0xFFFF);
    };
    RootFrame fr(c);
    Local rope = fr.local(nullptr);
    rope.set(wl::rope_build<RT>(c, 0, z.seq_n, z.seq_grain, gen));
    return KernelOut{static_cast<std::int64_t>(
        wl::rope_sum<RT>(c, rope, z.seq_grain))};
  });
}

template <class RT>
KernelOut bench_map(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    std::uint64_t seed = z.seed;
    auto gen = [seed](std::int64_t i) {
      return static_cast<std::int64_t>(
          wl::mix64(seed ^ static_cast<std::uint64_t>(i)) & 0xFFFF);
    };
    RootFrame fr(c);
    Local in = fr.local(nullptr);
    in.set(wl::rope_build<RT>(c, 0, z.seq_n, z.seq_grain, gen));
    Local out = fr.local(nullptr);
    out.set(wl::rope_map<RT>(c, in, z.seq_grain,
                             [](std::int64_t v) { return v * 3 + 1; }));
    return KernelOut{static_cast<std::int64_t>(
        wl::rope_sum<RT>(c, out, z.seq_grain))};
  });
}

template <class RT>
KernelOut bench_reduce(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    std::uint64_t seed = z.seed * 31;
    auto gen = [seed](std::int64_t i) {
      return static_cast<std::int64_t>(
          wl::mix64(seed + static_cast<std::uint64_t>(i)) & 0xFFFFF);
    };
    RootFrame fr(c);
    Local rope = fr.local(nullptr);
    rope.set(wl::rope_build<RT>(c, 0, z.seq_n, z.seq_grain, gen));
    // The measured phase: several reduction passes over the same rope.
    std::uint64_t sum = 0;
    for (int pass = 0; pass < 4; ++pass) {
      sum += wl::rope_sum<RT>(c, rope, z.seq_grain);
    }
    return KernelOut{static_cast<std::int64_t>(sum)};
  });
}

template <class RT>
KernelOut bench_filter(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    std::uint64_t seed = z.seed ^ 0xf117e5;
    auto gen = [seed](std::int64_t i) {
      return static_cast<std::int64_t>(
          wl::mix64(seed + static_cast<std::uint64_t>(i)) & 0xFFFF);
    };
    RootFrame fr(c);
    Local in = fr.local(nullptr);
    in.set(wl::rope_build<RT>(c, 0, z.seq_n, z.seq_grain, gen));
    Local out = fr.local(nullptr);
    out.set(wl::rope_filter<RT>(c, in, z.seq_grain,
                                [](std::int64_t v) { return (v & 7) < 3; }));
    std::uint64_t kept = static_cast<std::uint64_t>(
        wl::rope_count<typename RT::Ctx>(out.get()));
    return KernelOut{static_cast<std::int64_t>(
        wl::rope_sum<RT>(c, out, z.seq_grain) * 31 + kept)};
  });
}

template <class RT>
KernelOut bench_msort_pure(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    std::uint64_t seed = z.seed ^ 0x50f7;
    auto gen = [seed](std::int64_t i) {
      return static_cast<std::int64_t>(
          wl::mix64(seed + static_cast<std::uint64_t>(i)) & 0x7FFFFFFF);
    };
    RootFrame fr(c);
    Local in = fr.local(nullptr);
    in.set(wl::rope_build<RT>(c, 0, z.msort_pure_n, z.sort_grain, gen));
    Local out = fr.local(nullptr);
    out.set(wl::msort_pure_rec<RT>(c, in, z.sort_grain));
    return KernelOut{static_cast<std::int64_t>(
        wl::rope_ordered_checksum<typename RT::Ctx>(out.get()))};
  });
}

template <class RT>
KernelOut bench_dmm(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t n = z.dmm_n;
    const auto cells = static_cast<std::uint32_t>(n * n);
    RootFrame fr(c);
    Local A = fr.local(c.alloc(0, cells));
    Local B = fr.local(c.alloc(0, cells));
    Local C = fr.local(c.alloc(0, cells));
    {
      Object* a = A.get();
      Object* b = B.get();
      for (std::int64_t i = 0; i < n * n; ++i) {
        auto idx = static_cast<std::uint32_t>(i);
        Ctx::init_i64(a, idx,
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed + static_cast<std::uint64_t>(i)) &
                          0x3F));
        Ctx::init_i64(b, idx,
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed ^ static_cast<std::uint64_t>(i)) &
                          0x3F));
      }
    }
    wl::dmm_rec<RT>(c, A, B, C, n, 0, n, 0, n);
    std::uint64_t sum = 0;
    Object* cm = C.get();
    for (std::int64_t i = 0; i < n * n; ++i) {
      sum += static_cast<std::uint64_t>(
                 Ctx::read_i64_mut(cm, static_cast<std::uint32_t>(i))) *
             static_cast<std::uint64_t>(i % 251 + 1);
    }
    return KernelOut{static_cast<std::int64_t>(sum)};
  });
}

template <class RT>
KernelOut bench_smvm(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t rows = z.smvm_rows;
    const std::int64_t nnz_per = 8;
    RootFrame fr(c);
    Local col = fr.local(
        c.alloc(0, static_cast<std::uint32_t>(rows * nnz_per)));
    Local val = fr.local(
        c.alloc(0, static_cast<std::uint32_t>(rows * nnz_per)));
    Local x = fr.local(c.alloc(0, static_cast<std::uint32_t>(rows)));
    Local y = fr.local(c.alloc(0, static_cast<std::uint32_t>(rows)));
    {
      Object* co = col.get();
      Object* vo = val.get();
      Object* xo = x.get();
      for (std::int64_t k = 0; k < rows * nnz_per; ++k) {
        auto idx = static_cast<std::uint32_t>(k);
        Ctx::init_i64(co, idx,
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed + static_cast<std::uint64_t>(k)) %
                          static_cast<std::uint64_t>(rows)));
        Ctx::init_i64(vo, idx,
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed ^ static_cast<std::uint64_t>(k)) &
                          0xFF));
      }
      for (std::int64_t i = 0; i < rows; ++i) {
        Ctx::init_i64(xo, static_cast<std::uint32_t>(i),
                      static_cast<std::int64_t>(
                          wl::mix64(0x5eed + static_cast<std::uint64_t>(i)) &
                          0xFF));
      }
    }
    wl::smvm_rec<RT>(c, col, val, x, y, nnz_per, 0, rows, z.seq_grain);
    std::uint64_t sum = 0;
    Object* yo = y.get();
    for (std::int64_t i = 0; i < rows; ++i) {
      sum += static_cast<std::uint64_t>(
          Ctx::read_i64_mut(yo, static_cast<std::uint32_t>(i)));
    }
    return KernelOut{static_cast<std::int64_t>(sum)};
  });
}

template <class RT>
KernelOut bench_msort(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t n = z.msort_n;
    RootFrame fr(c);
    Local data = fr.local(c.alloc(0, static_cast<std::uint32_t>(n)));
    Local tmp = fr.local(c.alloc(0, static_cast<std::uint32_t>(n)));
    {
      Object* d = data.get();
      for (std::int64_t i = 0; i < n; ++i) {
        Ctx::init_i64(d, static_cast<std::uint32_t>(i),
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed + static_cast<std::uint64_t>(i)) &
                          0x7FFFFFFF));
      }
    }
    wl::msort_imp_rec<RT>(c, data, tmp, 0, n, z.sort_grain);
    std::uint64_t sum = 0;
    Object* d = data.get();
    for (std::int64_t i = 0; i < n; ++i) {
      sum += static_cast<std::uint64_t>(
                 Ctx::read_i64_mut(d, static_cast<std::uint32_t>(i))) *
             static_cast<std::uint64_t>(i % 255 + 1);
    }
    return KernelOut{static_cast<std::int64_t>(sum)};
  });
}

// usp: BFS distances only -- scalar mutation, no promotion anywhere.
template <class RT>
KernelOut bench_usp(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t side = z.usp_side;
    RootFrame fr(c);
    Local dist =
        fr.local(c.alloc(0, static_cast<std::uint32_t>(side * side)));
    {
      Object* dd = dist.get();
      for (std::int64_t v = 0; v < side * side; ++v) {
        Ctx::init_i64(dd, static_cast<std::uint32_t>(v), -1);
      }
    }
    auto visit = [](Ctx&, std::int64_t) {};
    return KernelOut{static_cast<std::int64_t>(
        wl::usp_bfs<RT>(c, dist, dist, side, visit))};
  });
}

// usp-tree: every visitation links a fresh node into a tree rooted in
// the ROOT task's heap, so under hierarchical heaps each visit promotes
// to the root of the hierarchy (the Section 4.4 serialization).
template <class RT>
KernelOut bench_usp_tree(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    return KernelOut{static_cast<std::int64_t>(
        wl::usp_tree_instance<RT>(c, z.usp_side))};
  });
}

// multi-usp-tree: independent usp-tree instances forked in parallel;
// each allocates its visitation tree in ITS OWN subtree of the
// hierarchy, so promotions target disjoint heaps and can overlap.
template <class RT>
KernelOut bench_multi_usp_tree(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    std::int64_t side = z.usp_side * 5 / 8;
    if (side < 8) {
      side = 8;
    }
    auto instance = [side](Ctx& cc) {
      return wl::usp_tree_instance<RT>(cc, side);
    };
    auto [ab, cd] = RT::fork2(
        c, {},
        [&](Ctx& cc) {
          auto [a, b] = RT::fork2(cc, {}, instance, instance);
          return a + b;
        },
        [&](Ctx& cc) {
          auto [a, b] = RT::fork2(cc, {}, instance, instance);
          return a + b;
        });
    return KernelOut{static_cast<std::int64_t>(ab * 3 + cd)};
  });
}

// strassen: pure recursive 8-way matrix multiply; fresh product arrays
// flow up the join tree (zero promotion under hier, O(n^3/cutoff)
// promotion under local heaps).
template <class RT>
KernelOut bench_strassen(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t n = z.strassen_n;
    const auto cells = static_cast<std::uint32_t>(n * n);
    RootFrame fr(c);
    Local A = fr.local(c.alloc(0, cells));
    Local B = fr.local(c.alloc(0, cells));
    {
      Object* a = A.get();
      Object* b = B.get();
      for (std::int64_t i = 0; i < n * n; ++i) {
        auto idx = static_cast<std::uint32_t>(i);
        Ctx::init_i64(a, idx,
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed + static_cast<std::uint64_t>(i)) &
                          0x3F));
        Ctx::init_i64(b, idx,
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed ^ static_cast<std::uint64_t>(i)) &
                          0x3F));
      }
    }
    Local C = fr.local(nullptr);
    C.set(wl::strassen_mul<RT>(c, A, B, n, 0, 0, 0, 0, n,
                               z.strassen_cutoff));
    std::uint64_t sum = 0;
    Object* cm = C.get();
    for (std::int64_t i = 0; i < n * n; ++i) {
      sum += static_cast<std::uint64_t>(
                 Ctx::read_i64_imm(cm, static_cast<std::uint32_t>(i))) *
             static_cast<std::uint64_t>(i % 251 + 1);
    }
    return KernelOut{static_cast<std::int64_t>(sum)};
  });
}

// raytracer: embarrassingly parallel per-pixel tabulate over a small
// scene; the image is a pure rope built by the fork tree.
template <class RT>
KernelOut bench_raytracer(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    const std::int64_t w = z.ray_w;
    const std::int64_t h = z.ray_h;
    auto gen = [w, h](std::int64_t i) {
      return wl::ray_trace_pixel(i % w, i / w, w, h);
    };
    RootFrame fr(c);
    Local img = fr.local(nullptr);
    img.set(wl::rope_build<RT>(c, 0, w * h, z.seq_grain, gen));
    return KernelOut{static_cast<std::int64_t>(
        wl::rope_ordered_checksum<typename RT::Ctx>(img.get()))};
  });
}

// dedup: imperative shared hash-set insertion. Child tasks insert into
// a root-allocated open-addressing table (escaping scalar writes).
template <class RT>
KernelOut bench_dedup(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t n = z.dedup_n;
    // Values uniform in a power-of-two space of ~n/2, so roughly half
    // the draws collide with an earlier one (~57% duplicates for
    // power-of-two n: n draws from n/2 values).
    const std::int64_t vspace = Sizes::floor_pow2(n, 128) / 2;
    const std::int64_t vmask = vspace - 1;
    // The unique count is bounded by vspace; size the table 8x that
    // bound so each of the kDedupParts regions stays under ~11% load.
    std::int64_t region = 8 * vspace / wl::kDedupParts;
    if (region < 16) {
      region = 16;
    }
    const std::int64_t table_slots = region * wl::kDedupParts;
    RootFrame fr(c);
    Local in = fr.local(c.alloc(0, static_cast<std::uint32_t>(n)));
    Local table =
        fr.local(c.alloc(0, static_cast<std::uint32_t>(table_slots)));
    {
      Object* io = in.get();
      for (std::int64_t i = 0; i < n; ++i) {
        Ctx::init_i64(io, static_cast<std::uint32_t>(i),
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed + static_cast<std::uint64_t>(i))) &
                          vmask);
      }
    }
    auto [uniques, sum] =
        wl::dedup_rec<RT>(c, in, table, n, region, 0, wl::kDedupParts);
    return KernelOut{static_cast<std::int64_t>(sum * 31 + uniques)};
  });
}

// tourney: imperative tournament tree; every internal slot is written
// by a child task into the root-allocated array.
template <class RT>
KernelOut bench_tourney(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t n = z.tourney_n;  // leaves; tree occupies [1, 2n)
    RootFrame fr(c);
    Local tree = fr.local(c.alloc(0, static_cast<std::uint32_t>(2 * n)));
    {
      Object* t = tree.get();
      Ctx::init_i64(t, 0, 0);  // slot 0 unused
      for (std::int64_t i = 0; i < n; ++i) {
        Ctx::init_i64(t, static_cast<std::uint32_t>(n + i),
                      static_cast<std::int64_t>(
                          wl::mix64(z.seed + static_cast<std::uint64_t>(i)) &
                          0xFFFFFF));
      }
    }
    const std::int64_t grain = z.sort_grain > 64 ? z.sort_grain : 64;
    const std::int64_t winner = wl::tourney_rec<RT>(c, tree, n, 1, n, grain);
    std::uint64_t sum = static_cast<std::uint64_t>(winner);
    Object* t = tree.get();
    for (std::int64_t i = 1; i < n; ++i) {  // internal slots only
      sum += static_cast<std::uint64_t>(
                 Ctx::read_i64_mut(t, static_cast<std::uint32_t>(i))) *
             static_cast<std::uint64_t>(i % 255 + 1);
    }
    return KernelOut{static_cast<std::int64_t>(sum)};
  });
}

// reachability: frontier-based reachability over a deterministic random
// digraph; each round mutates the shared visited array in place.
template <class RT>
KernelOut bench_reachability(RT& rt, const Sizes& z) {
  return rt.run([&](typename RT::Ctx& c) {
    using Ctx = typename RT::Ctx;
    const std::int64_t n = z.reach_n;
    RootFrame fr(c);
    Local visited = fr.local(c.alloc(0, static_cast<std::uint32_t>(n)));
    Local esrc = fr.local(
        c.alloc(0, static_cast<std::uint32_t>(n * wl::kReachDeg)));
    {
      Object* dd = visited.get();
      Object* eo = esrc.get();
      for (std::int64_t v = 0; v < n; ++v) {
        Ctx::init_i64(dd, static_cast<std::uint32_t>(v), -1);
        std::int64_t e[wl::kReachDeg];
        wl::reach_edge_sources(z.seed, v, n, e);
        for (std::int64_t j = 0; j < wl::kReachDeg; ++j) {
          Ctx::init_i64(eo,
                        static_cast<std::uint32_t>(v * wl::kReachDeg + j),
                        e[j]);
        }
      }
    }
    return KernelOut{
        static_cast<std::int64_t>(wl::reach_bfs<RT>(c, visited, esrc, n))};
  });
}

}  // namespace parmem::bench
