// Steady-state serving harness ("parmem-serve"): a fixed-duration (or
// fixed-count) driver that fires independent requests -- each a small
// fork-join task tree over per-session mutable state -- at a runtime
// through P parallel lanes, and measures what production cares about:
// throughput, per-request latency percentiles, peak + steady RSS, and
// a fragmentation ratio (RSS / live bytes).
//
// Methodology (fixed-time microbenchmark practice):
//   - start barrier: every lane spins until all lanes are staged, then
//     one lane stamps the shared clock (warmup end + deadline) and
//     releases the group, so no lane's requests are counted against a
//     window another lane has not entered yet;
//   - per-lane op counting: each lane owns a cache-line-padded slot
//     (ops, checksum, latency histogram) and touches nothing shared on
//     the request path -- no lock, no shared counter, no false sharing;
//   - warmup excluded: requests completing before the warmup stamp are
//     tallied separately and kept out of the histogram and throughput;
//   - end barrier: the measured window closes at the shared deadline;
//     each lane records its own last-completion stamp and the wave's
//     wall time is the max across lanes.
//
// Latency is recorded in a per-lane log-bucketed (HDR-style) histogram
// whose merge is exact -- shard buckets sum to the global percentile
// inputs, mirroring the ShardedStats exactness guarantee -- so p50/
// p95/p99/max come from all requests without a global lock anywhere.
//
// Memory is sampled by a background thread reading VmRSS from
// /proc/self/status plus the runtime's lock-free live_bytes() gauge
// (rtapi::snapshot_of), giving peak and steady-state RSS and the
// fragmentation ratio without stopping the world.
//
// Request determinism: a request's result is a pure function of
// (seed, request id). Fixed-count waves dispatch ids [0, N) exactly
// once through a shared atomic counter and sum per-request checksums
// commutatively, so the wave checksum is identical across lane counts
// AND across runtimes -- the cross-runtime agreement the serve driver
// and the determinism test assert. Fixed-duration waves process a
// timing-dependent prefix, so only their metrics are comparable.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common/harness.hpp"
#include "bench_common/workloads.hpp"
#include "core/histogram.hpp"
#include "core/stats.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem::bench::serve {

// ---- log-bucketed latency histogram ---------------------------------------
//
// The log-bucketed histogram born here now lives in core/histogram.hpp
// (the GC-pause / gate-stall histograms of core/trace.hpp use the same
// class); this alias keeps the harness surface and the exact
// element-wise merge semantics unchanged.
using LatencyHistogram = ::parmem::Histogram;

// ---- process RSS + runtime live-bytes sampling ----------------------------

inline std::size_t read_vm_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[128];
  std::size_t out = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      out = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10))
            << 10;  // kB -> bytes
      break;
    }
  }
  std::fclose(f);
  return out;
}

// Background sampler pairing VmRSS with the runtime's lock-free
// live-bytes gauge at each tick. Peak = max over samples; steady =
// median of the last half of the samples (the warmed-up tail).
class MemorySampler {
 public:
  struct Sample {
    std::size_t rss = 0;
    std::size_t live = 0;
  };

  MemorySampler(std::function<std::size_t()> live_fn,
                std::chrono::milliseconds tick)
      : live_fn_(std::move(live_fn)),
        tick_(tick),
        thread_([this] { loop(); }) {}

  MemorySampler(const MemorySampler&) = delete;
  MemorySampler& operator=(const MemorySampler&) = delete;
  ~MemorySampler() { stop_and_join(); }

  void stop_and_join() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  // Only valid after stop_and_join().
  const std::vector<Sample>& samples() const { return samples_; }

  std::size_t peak_rss() const { return peak(&Sample::rss); }
  std::size_t peak_live() const { return peak(&Sample::live); }
  std::size_t steady_rss() const { return steady(&Sample::rss); }
  std::size_t steady_live() const { return steady(&Sample::live); }

 private:
  void loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      samples_.push_back(Sample{read_vm_rss_bytes(), live_fn_()});
      std::this_thread::sleep_for(tick_);
    }
    samples_.push_back(Sample{read_vm_rss_bytes(), live_fn_()});
  }

  std::size_t peak(std::size_t Sample::* field) const {
    std::size_t m = 0;
    for (const Sample& s : samples_) {
      if (s.*field > m) {
        m = s.*field;
      }
    }
    return m;
  }

  std::size_t steady(std::size_t Sample::* field) const {
    if (samples_.empty()) {
      return 0;
    }
    std::vector<std::size_t> tail;
    tail.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = samples_.size() / 2; i < samples_.size(); ++i) {
      tail.push_back(samples_[i].*field);
    }
    std::sort(tail.begin(), tail.end());
    return tail[tail.size() / 2];
  }

  std::function<std::size_t()> live_fn_;
  std::chrono::milliseconds tick_;
  std::atomic<bool> stop_{false};
  std::vector<Sample> samples_;  // sampler-thread only until joined
  std::thread thread_;
};

// ---- configuration / results ----------------------------------------------

struct ServeConfig {
  unsigned lanes = 1;  // parallel request lanes; clamped to workers()
  std::uint64_t seed = 42;
  // Per-session state sizes (per request): rope elements for the
  // map/reduce sessions, slot count of the dedup session table, vertex
  // count of the reachability session graph, and the fork grain inside
  // a request's task tree.
  std::int64_t session_elems = 1024;
  std::int64_t dedup_slots = 512;
  std::int64_t reach_verts = 256;
  std::int64_t grain = 256;
  // Exactly one of these drives the wave: fixed-duration mode measures
  // throughput/latency over `duration_s` (after `warmup_s`, which is
  // excluded); fixed-count mode dispatches ids [0, requests) exactly
  // once and yields a cross-runtime/cross-P comparable checksum.
  double duration_s = 0.0;
  double warmup_s = 0.2;
  std::uint64_t requests = 0;
  bool sample_memory = true;
  std::chrono::milliseconds sample_tick{20};
};

struct ServeResult {
  std::uint64_t requests = 0;  // completed inside the measured window
  std::uint64_t warmup_requests = 0;
  double seconds = 0.0;  // measured window (max across lanes)
  double throughput_rps = 0.0;
  std::int64_t checksum = 0;  // commutative sum over processed ids
  LatencyHistogram latency;   // exact merge of the per-lane shards
  Stats stats;                // runtime counter delta over the wave
  std::size_t peak_rss_bytes = 0;
  std::size_t steady_rss_bytes = 0;
  std::size_t peak_live_bytes = 0;
  std::size_t steady_live_bytes = 0;
  double frag_ratio = 0.0;  // steady RSS / steady live bytes
  unsigned lanes = 0;
};

// ---- request kernels -------------------------------------------------------
//
// Each request is an independent session: it allocates fresh mutable
// state in its own RootFrame, runs a small fork-join task tree over it
// (so every runtime's split/merge/promotion machinery is on the
// request path), and drops the whole session on return. Results are
// pure functions of the session seed. The three request types reuse
// the paper kernels' techniques: rope build + map/reduce queries,
// dedup-style hash-table inserts with escaping writes, and a
// reachability query over a session graph.

namespace detail {

// Rope session: build a session rope (forked), sum it, map it, sum the
// image -- map/reduce over per-session immutable-leaf state.
template <class RT>
std::int64_t request_rope(typename RT::Ctx& c, std::uint64_t s,
                          const ServeConfig& cfg) {
  using Ctx = typename RT::Ctx;
  RootFrame f(c);
  const std::int64_t n = cfg.session_elems;
  auto gen = [s](std::int64_t i) {
    return static_cast<std::int64_t>(
        wl::mix64(s + static_cast<std::uint64_t>(i)) & 0xffff);
  };
  Local rope = f.local(wl::rope_build<RT>(c, 0, n, cfg.grain, gen));
  const std::uint64_t sum1 = wl::rope_sum<RT>(c, rope, cfg.grain);
  Local mapped = f.local(wl::rope_map<RT>(
      c, rope, cfg.grain, [](std::int64_t v) { return v * 2 + 1; }));
  const std::uint64_t sum2 = wl::rope_sum<RT>(c, mapped, cfg.grain);
  return static_cast<std::int64_t>(sum1 * 31 + sum2);
}

// Dedup session: a session hash table split into two partitions; two
// forked branches insert the session's value stream, each filtering
// for its own hash partition -- escaping writes from child tasks into
// the request-frame table, disjoint across branches, deterministic
// within each (the dedup kernel's pattern at request scale).
template <class RT>
std::int64_t request_dedup(typename RT::Ctx& c, std::uint64_t s,
                           const ServeConfig& cfg) {
  using Ctx = typename RT::Ctx;
  RootFrame f(c);
  const std::int64_t region = cfg.dedup_slots / 2;
  const std::int64_t n = cfg.session_elems;
  Local table =
      f.local(c.alloc(0, static_cast<std::uint32_t>(2 * region)));  // zeroed
  auto insert_part = [&table, s, n, region](std::int64_t part) {
    Object* to = table.get();  // insertion loop allocates nothing
    const std::int64_t base = part * region;
    std::uint64_t uniques = 0;
    std::uint64_t sum = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t v =
          static_cast<std::int64_t>(
              wl::mix64(s + static_cast<std::uint64_t>(i)) %
              static_cast<std::uint64_t>(n / 2 + 1)) +
          1;
      const std::uint64_t h = wl::mix64(static_cast<std::uint64_t>(v) ^ s);
      if (static_cast<std::int64_t>(h & 1) != part) {
        continue;
      }
      std::int64_t j = static_cast<std::int64_t>(
          (h >> 1) % static_cast<std::uint64_t>(region));
      for (std::int64_t probes = 0; probes < region; ++probes) {
        const std::int64_t slot =
            Ctx::read_i64_mut(to, static_cast<std::uint32_t>(base + j));
        if (slot == 0) {
          Ctx::write_i64(to, static_cast<std::uint32_t>(base + j), v);
          ++uniques;
          sum += static_cast<std::uint64_t>(v);
          break;
        }
        if (slot == v) {
          break;  // duplicate
        }
        j = j + 1 < region ? j + 1 : 0;
      }
    }
    return std::pair<std::uint64_t, std::uint64_t>{uniques, sum};
  };
  auto [a, b] = RT::fork2(
      c, {table}, [&](typename RT::Ctx&) { return insert_part(0); },
      [&](typename RT::Ctx&) { return insert_part(1); });
  return static_cast<std::int64_t>(a.first * 1000003 + b.first * 999983 +
                                   a.second * 31 + b.second);
}

// Reachability session: build the session graph's in-edge array with
// two forked branches (escaping initialising writes into parent-frame
// arrays), then answer a level-synchronous reachability query from
// vertex 0 in place, mutating the session's visited array.
template <class RT>
std::int64_t request_reach(typename RT::Ctx& c, std::uint64_t s,
                           const ServeConfig& cfg) {
  using Ctx = typename RT::Ctx;
  RootFrame f(c);
  const std::int64_t n = cfg.reach_verts;
  Local esrc = f.local(
      c.alloc(0, static_cast<std::uint32_t>(n * wl::kReachDeg)));
  Local visited = f.local(c.alloc(0, static_cast<std::uint32_t>(n)));
  auto fill = [&esrc, &visited, s, n](std::int64_t lo, std::int64_t hi) {
    Object* eo = esrc.get();  // fill loop allocates nothing
    Object* dd = visited.get();
    std::int64_t e[wl::kReachDeg];
    for (std::int64_t v = lo; v < hi; ++v) {
      wl::reach_edge_sources(s, v, n, e);
      for (std::int64_t j = 0; j < wl::kReachDeg; ++j) {
        Ctx::write_i64(eo, static_cast<std::uint32_t>(v * wl::kReachDeg + j),
                       e[j]);
      }
      Ctx::write_i64(dd, static_cast<std::uint32_t>(v), -1);
    }
  };
  RT::fork2(
      c, {esrc, visited}, [&](typename RT::Ctx&) { fill(0, n / 2); },
      [&](typename RT::Ctx&) { fill(n / 2, n); });
  // The query: rounds settle levels breadth-first; a vertex joins
  // round d+1 iff one of its in-edge sources settled in round d, so
  // the sweep below is level-synchronous without a frontier list.
  Object* eo = esrc.get();
  Object* dd = visited.get();
  Ctx::write_i64(dd, 0, 0);
  for (std::int64_t d = 0;; ++d) {
    std::int64_t found = 0;
    for (std::int64_t v = 1; v < n; ++v) {
      if (Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(v)) != -1) {
        continue;
      }
      for (std::int64_t j = 0; j < wl::kReachDeg; ++j) {
        const std::int64_t u = Ctx::read_i64_mut(
            eo, static_cast<std::uint32_t>(v * wl::kReachDeg + j));
        if (u >= 0 &&
            Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(u)) == d) {
          Ctx::write_i64(dd, static_cast<std::uint32_t>(v), d + 1);
          ++found;
          break;
        }
      }
    }
    if (found == 0) {
      break;
    }
  }
  std::uint64_t sum = 0;
  std::uint64_t reached = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t lvl =
        Ctx::read_i64_mut(dd, static_cast<std::uint32_t>(v));
    if (lvl >= 0) {
      ++reached;
    }
    sum += static_cast<std::uint64_t>(lvl + 2) *
           static_cast<std::uint64_t>(v % 1021 + 1);
  }
  return static_cast<std::int64_t>(sum * 31 + reached);
}

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void spin_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace detail

// One request = one session; the result is a pure function of
// (cfg.seed, id), which is what makes fixed-count wave checksums
// comparable across runtimes and lane counts.
template <class RT>
std::int64_t serve_request(typename RT::Ctx& c, const ServeConfig& cfg,
                           std::uint64_t id) {
  const std::uint64_t s =
      wl::mix64(cfg.seed ^ (id * 0x9e3779b97f4a7c15ull + 1));
  switch (id % 3) {
    case 0:
      return detail::request_rope<RT>(c, s, cfg);
    case 1:
      return detail::request_dedup<RT>(c, s, cfg);
    default:
      return detail::request_reach<RT>(c, s, cfg);
  }
}

// Per-lane measurement slot: a full cache line (and then some -- the
// histogram rides along) per lane, touched by exactly one lane, so the
// request path shares nothing writable.
struct alignas(64) LaneStats {
  std::uint64_t ops = 0;         // post-warmup completions
  std::uint64_t warmup_ops = 0;  // completions inside the warmup
  std::uint64_t checksum = 0;    // commutative (wrapping) request sum
  std::int64_t end_ns = 0;       // this lane's last completion stamp
  LatencyHistogram hist;
};

namespace detail {

// Shared wave state: request dispatch counter, the start-barrier
// rendezvous, and the clock stamps one lane publishes for the group.
struct ServeShared {
  std::atomic<std::uint64_t> next_id{0};
  std::uint64_t max_requests = 0;  // 0 = unbounded (duration mode)
  unsigned lanes = 1;
  std::atomic<unsigned> staged{0};
  std::atomic<bool> go{false};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::int64_t> warmup_end_ns{0};
  std::atomic<std::int64_t> deadline_ns{0};
};

template <class RT>
void serve_lane(typename RT::Ctx& c, const ServeConfig& cfg, ServeShared& sh,
                LaneStats& lane) {
  // Start barrier: the lane that completes the rendezvous stamps the
  // clocks and releases the group. Lanes allocate nothing while
  // staged, so no collection can be waiting on a spinning lane.
  if (sh.staged.fetch_add(1, std::memory_order_acq_rel) + 1 == sh.lanes) {
    const std::int64_t now = now_ns();
    const double warmup =
        cfg.duration_s > 0.0 && cfg.warmup_s < cfg.duration_s / 4.0
            ? cfg.warmup_s
            : (cfg.duration_s > 0.0 ? cfg.duration_s / 4.0 : 0.0);
    sh.start_ns.store(now, std::memory_order_relaxed);
    sh.warmup_end_ns.store(
        cfg.duration_s > 0.0
            ? now + static_cast<std::int64_t>(warmup * 1e9)
            : now,
        std::memory_order_relaxed);
    sh.deadline_ns.store(
        cfg.duration_s > 0.0
            ? now + static_cast<std::int64_t>(cfg.duration_s * 1e9)
            : std::numeric_limits<std::int64_t>::max(),
        std::memory_order_relaxed);
    sh.go.store(true, std::memory_order_release);
  } else {
    while (!sh.go.load(std::memory_order_acquire)) {
      spin_relax();
    }
  }
  const std::int64_t warmup_end =
      sh.warmup_end_ns.load(std::memory_order_relaxed);
  const std::int64_t deadline =
      sh.deadline_ns.load(std::memory_order_relaxed);
  lane.end_ns = sh.start_ns.load(std::memory_order_relaxed);

  for (;;) {
    const std::int64_t t0 = now_ns();
    if (t0 >= deadline) {
      break;
    }
    const std::uint64_t id = sh.next_id.fetch_add(1, std::memory_order_relaxed);
    if (sh.max_requests != 0 && id >= sh.max_requests) {
      break;
    }
    const std::int64_t ck = serve_request<RT>(c, cfg, id);
    const std::int64_t t1 = now_ns();
    lane.checksum += static_cast<std::uint64_t>(ck);
    lane.end_ns = t1;
    if (t1 <= warmup_end) {
      ++lane.warmup_ops;
    } else {
      ++lane.ops;
      lane.hist.record(static_cast<std::uint64_t>(t1 - t0));
    }
  }
}

template <class RT>
void serve_lanes_rec(typename RT::Ctx& c, const ServeConfig& cfg,
                     ServeShared& sh, LaneStats* lanes, unsigned lo,
                     unsigned hi) {
  if (hi - lo == 1) {
    serve_lane<RT>(c, cfg, sh, lanes[lo]);
    return;
  }
  const unsigned mid = lo + (hi - lo) / 2;
  RT::fork2(
      c, {},
      [&](typename RT::Ctx& cc) {
        serve_lanes_rec<RT>(cc, cfg, sh, lanes, lo, mid);
      },
      [&](typename RT::Ctx& cc) {
        serve_lanes_rec<RT>(cc, cfg, sh, lanes, mid, hi);
      });
}

}  // namespace detail

// Run one serve wave inside an already-running root task. The soak
// tests use this directly to fire several waves through ONE rt.run()
// (the long-running-server shape); serve_run below wraps it with the
// memory sampler and the counter diff for standalone measurement.
// Returns the wave's commutative checksum; per-lane detail lands in
// `lanes` when non-null (must have space for the lane count used).
template <class RT>
std::int64_t serve_wave_in_ctx(typename RT::Ctx& c, unsigned lanes,
                               const ServeConfig& cfg,
                               LaneStats* lane_stats) {
  detail::ServeShared sh;
  sh.max_requests = cfg.requests;
  sh.lanes = lanes;
  detail::serve_lanes_rec<RT>(c, cfg, sh, lane_stats, 0, lanes);
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < lanes; ++i) {
    sum += lane_stats[i].checksum;
  }
  return static_cast<std::int64_t>(sum);
}

template <class RT>
ServeResult serve_run(RT& rt, const ServeConfig& cfg) {
  unsigned lanes = cfg.lanes == 0 ? rt.workers() : cfg.lanes;
  if (lanes > rt.workers()) {
    // The start barrier needs every lane running concurrently, so a
    // lane per worker is the hard cap.
    lanes = rt.workers();
  }
  std::vector<LaneStats> lane_stats(lanes);

  const StatsSnapshot before = rtapi::snapshot_of(rt);
  std::optional<MemorySampler> sampler;
  if (cfg.sample_memory) {
    sampler.emplace([&rt] { return rt.live_bytes(); }, cfg.sample_tick);
  }
  detail::ServeShared sh;
  sh.max_requests = cfg.requests;
  sh.lanes = lanes;
  rt.run([&](typename RT::Ctx& c) {
    detail::serve_lanes_rec<RT>(c, cfg, sh, lane_stats.data(), 0, lanes);
    return 0;
  });
  if (sampler) {
    sampler->stop_and_join();
  }
  const StatsSnapshot after = rtapi::snapshot_of(rt);

  ServeResult r;
  r.lanes = lanes;
  r.stats = after.interval_since(before);
  std::uint64_t checksum = 0;
  std::int64_t last_end = sh.start_ns.load(std::memory_order_relaxed);
  for (const LaneStats& l : lane_stats) {
    r.requests += l.ops;
    r.warmup_requests += l.warmup_ops;
    checksum += l.checksum;
    r.latency.merge(l.hist);
    if (l.end_ns > last_end) {
      last_end = l.end_ns;
    }
  }
  r.checksum = static_cast<std::int64_t>(checksum);
  const std::int64_t window_start =
      cfg.duration_s > 0.0 ? sh.warmup_end_ns.load(std::memory_order_relaxed)
                           : sh.start_ns.load(std::memory_order_relaxed);
  r.seconds = static_cast<double>(last_end - window_start) * 1e-9;
  if (r.seconds > 0.0) {
    r.throughput_rps = static_cast<double>(r.requests) / r.seconds;
  }
  if (sampler) {
    r.peak_rss_bytes = sampler->peak_rss();
    r.steady_rss_bytes = sampler->steady_rss();
    r.peak_live_bytes = sampler->peak_live();
    r.steady_live_bytes = sampler->steady_live();
    if (r.steady_live_bytes > 0) {
      r.frag_ratio = static_cast<double>(r.steady_rss_bytes) /
                     static_cast<double>(r.steady_live_bytes);
    }
  }
  return r;
}

}  // namespace parmem::bench::serve
