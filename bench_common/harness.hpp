// Shared measurement scaffolding for the figure/ablation drivers:
// wall-clock timing, CLI options, median-of-runs measurement with
// runtime counter deltas, and small table-printing helpers.
//
// Workload kernels (bench_common/workloads.hpp) arrive in a later PR;
// everything here is kernel-agnostic.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/stats.hpp"

namespace parmem::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Problem sizes, uniformly shrunk by --scale / --quick. The per-kernel
// fields are derived from `scale` in parse_options; tests and ablations
// override them directly.
struct Sizes {
  double scale = 1.0;
  std::int64_t seq_n = std::int64_t{1} << 24;  // element count for seq kernels
  std::uint64_t seed = 42;

  std::int64_t msort_n = std::int64_t{1} << 22;       // imperative sort input
  std::int64_t msort_pure_n = std::int64_t{1} << 21;  // pure sort input
  std::int64_t sort_grain = 8192;  // sequential cutoff for the sorts
  std::int64_t seq_grain = 8192;   // elements per task in seq kernels
  std::int64_t fib_n = 30;
  std::int64_t dmm_n = 192;           // dense matrix dimension
  std::int64_t smvm_rows = std::int64_t{1} << 19;  // sparse rows (8 nnz each)
  std::int64_t usp_side = 96;         // BFS grid is usp_side x usp_side
  std::int64_t strassen_n = 128;      // recursive matmul dim (power of two)
  std::int64_t strassen_cutoff = 32;  // strassen base-case dimension
  std::int64_t ray_w = 640;           // raytracer image width
  std::int64_t ray_h = 480;           // raytracer image height
  std::int64_t dedup_n = std::int64_t{1} << 20;   // dedup input elements
  std::int64_t tourney_n = std::int64_t{1} << 22; // tournament leaves (pow2)
  std::int64_t reach_n = std::int64_t{1} << 20;   // reachability vertices

  std::int64_t scaled(std::int64_t base) const {
    auto v = static_cast<std::int64_t>(static_cast<double>(base) * scale);
    return v > 1 ? v : 1;
  }

  // Largest power of two <= bound, never below `floor` (itself a pow2).
  static std::int64_t floor_pow2(std::int64_t bound, std::int64_t floor) {
    std::int64_t v = floor;
    while (v * 2 <= bound) {
      v *= 2;
    }
    return v;
  }

  // Re-derive every per-kernel size from `scale`, keeping each kernel's
  // asymptotic work roughly proportional to it.
  void rescale() {
    auto dim = [&](std::int64_t base, double exponent, std::int64_t floor) {
      auto v = static_cast<std::int64_t>(
          static_cast<double>(base) *
          __builtin_exp2(exponent * __builtin_log2(scale > 0 ? scale : 1e-6)));
      return v > floor ? v : floor;
    };
    seq_n = scaled(std::int64_t{1} << 24);
    msort_n = scaled(std::int64_t{1} << 22);
    msort_pure_n = scaled(std::int64_t{1} << 21);
    // fib's work is exponential in n: shift the BASE n (30) by
    // log2(scale), so repeated rescale() calls are idempotent.
    std::int64_t shift = 0;
    for (double s = scale; s < 0.75 && shift < 20; s *= 2.0) {
      ++shift;
    }
    fib_n = 30 - shift > 8 ? 30 - shift : 8;
    dmm_n = dim(192, 1.0 / 3.0, 8);     // n^3 work
    smvm_rows = scaled(std::int64_t{1} << 19);
    usp_side = dim(96, 1.0 / 3.0, 8);   // ~side^3 work (side^2 x diameter)
    // strassen's split needs a power-of-two dimension: scale by n^3 work,
    // then round down to the nearest power of two (>= 16).
    strassen_n = floor_pow2(dim(128, 1.0 / 3.0, 16), 16);
    ray_w = dim(640, 0.5, 16);          // pixel count ~ scale
    ray_h = dim(480, 0.5, 12);
    dedup_n = scaled(std::int64_t{1} << 20);
    // tourney's tree is a complete binary tree: power-of-two leaves.
    tourney_n = floor_pow2(scaled(std::int64_t{1} << 22), 64);
    reach_n = scaled(std::int64_t{1} << 20);
  }
};

struct Options {
  unsigned procs = 0;  // 0 resolved to hardware threads in parse_options
  int runs = 3;
  bool quick = false;
  Sizes sizes;
  std::string bench_filter;  // comma-separated names; empty = all
  std::string json_out;      // write per-runtime JSON sections here

  bool selected(const char* name) const {
    if (bench_filter.empty()) {
      return true;
    }
    std::string needle(name);
    std::size_t pos = 0;
    while (pos <= bench_filter.size()) {
      std::size_t comma = bench_filter.find(',', pos);
      if (comma == std::string::npos) {
        comma = bench_filter.size();
      }
      if (bench_filter.compare(pos, comma - pos, needle) == 0) {
        return true;
      }
      pos = comma + 1;
    }
    return false;
  }
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value("--procs=")) {
      opt.procs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--runs=")) {
      opt.runs = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--scale=")) {
      opt.sizes.scale = std::strtod(v, nullptr);
    } else if (const char* v = value("--seed=")) {
      opt.sizes.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--bench=")) {
      opt.bench_filter = v;
    } else if (const char* v = value("--json=")) {
      opt.json_out = v;
    } else if (std::strcmp(a, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "options: --procs=P --runs=R --scale=F --seed=S --bench=a,b "
          "--json=PATH --quick\n");
      std::exit(0);
    }
  }
  if (opt.procs == 0) {
    opt.procs = std::thread::hardware_concurrency();
    if (opt.procs == 0) {
      opt.procs = 1;
    }
  }
  if (opt.quick) {
    opt.sizes.scale *= 0.05;
    opt.runs = 1;
  }
  opt.sizes.rescale();
  if (opt.runs < 1) {
    opt.runs = 1;
  }
  return opt;
}

// One measured configuration: the median-time run's wall time, counter
// deltas and checksum; peak_bytes is the runtime's lifetime high-water
// mark (chunk pools never forget earlier runs).
struct Measurement {
  double seconds = 0.0;
  std::int64_t checksum = 0;
  Stats stats;
  std::size_t peak_bytes = 0;

  // Fraction of PROCESSOR time spent in GC. gc_ns aggregates across
  // workers (concurrent leaf GCs under hier; all stopped workers under
  // stw), so the denominator for a P-proc run is P * wall.
  double gc_fraction(unsigned procs = 1) const {
    return seconds > 0.0
               ? (static_cast<double>(stats.gc_ns) * 1e-9) /
                     (static_cast<double>(procs) * seconds)
               : 0.0;
  }
};

// Runs `fn(rt, sizes)` `runs` times; reports the median time. `fn`
// must return a value exposing `.checksum` (cross-runtime agreement is
// checked by the figure drivers).
template <class RT, class Fn>
Measurement measure(RT& rt, const Sizes& sizes, int runs, Fn&& fn) {
  struct Run {
    double seconds;
    std::int64_t checksum;
    Stats stats;
  };
  std::vector<Run> rs;
  rs.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    Stats before = rt.stats();
    Timer t;
    auto out = fn(rt, sizes);
    rs.push_back(Run{t.seconds(), out.checksum, rt.stats() - before});
  }
  std::sort(rs.begin(), rs.end(),
            [](const Run& a, const Run& b) { return a.seconds < b.seconds; });
  const Run& median = rs[rs.size() / 2];
  Measurement m;
  m.seconds = median.seconds;
  m.checksum = median.checksum;
  m.stats = median.stats;
  m.peak_bytes = rt.peak_bytes();
  return m;
}

// Streams `{"procs":P,"scale":S,"runtimes":{"seq":[{...},...],...}}`
// -- one section per runtime -- so scripts/run_bench.sh can record a
// machine-readable per-runtime baseline next to BENCH_micro.json.
class RuntimeJson {
 public:
  bool open(const std::string& path, unsigned procs, const Sizes& sizes) {
    if (path.empty()) {
      return false;
    }
    f_ = std::fopen(path.c_str(), "w");
    if (f_ == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f_, "{\n  \"procs\": %u,\n  \"scale\": %g,\n"
                     "  \"runtimes\": {",
                 procs, sizes.scale);
    return true;
  }

  void begin_runtime(const char* name) {
    if (f_ == nullptr) {
      return;
    }
    std::fprintf(f_, "%s\n    \"%s\": [", first_rt_ ? "" : ",", name);
    first_rt_ = false;
    first_row_ = true;
  }

  void add(const char* bench, unsigned procs, const Measurement& m) {
    if (f_ == nullptr) {
      return;
    }
    std::fprintf(
        f_,
        "%s\n      {\"name\": \"%s\", \"procs\": %u, \"seconds\": %.6f, "
        "\"checksum\": %lld, \"peak_bytes\": %zu, \"gc_count\": %llu, "
        "\"gc_ns\": %llu, \"promotions\": %llu, \"promoted_bytes\": %llu}",
        first_row_ ? "" : ",", bench, procs, m.seconds,
        static_cast<long long>(m.checksum), m.peak_bytes,
        static_cast<unsigned long long>(m.stats.gc_count),
        static_cast<unsigned long long>(m.stats.gc_ns),
        static_cast<unsigned long long>(m.stats.promotions),
        static_cast<unsigned long long>(m.stats.promoted_bytes));
    first_row_ = false;
  }

  void end_runtime() {
    if (f_ != nullptr) {
      std::fprintf(f_, "\n    ]");
    }
  }

  void close() {
    if (f_ != nullptr) {
      std::fprintf(f_, "\n  }\n}\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }

 private:
  std::FILE* f_ = nullptr;
  bool first_rt_ = true;
  bool first_row_ = true;
};

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline std::string fmt_mb(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return std::string(buf);
}

inline std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
  return std::string(buf);
}

}  // namespace parmem::bench
