// The runtime-abstraction surface shared by the four comparison
// runtimes (the paper's fig10-fig13 systems):
//
//   SeqRuntime   (runtimes/seq_runtime.hpp)        mlton-like sequential
//   StwRuntime   (runtimes/stw_runtime.hpp)        spoonhower-like STW
//   LhRuntime    (runtimes/localheap_runtime.hpp)  manticore-like local heaps
//   HierRuntime  (core/hier_runtime.hpp)           hierarchical heaps
//
// Every runtime RT exposes:
//
//   RT::kName                         short stable identifier ("seq", ...)
//   RT::Options{workers, ...}         default-constructible; workers = 0
//                                     means one per hardware thread
//   RT(opts) / rt.workers()           construction + resolved worker count
//   rt.stats() -> Stats               monotonic counter snapshot
//   rt.peak_bytes() -> size_t         lifetime high-water chunk footprint
//   rt.live_bytes() -> size_t         chunk bytes currently checked out
//                                     (readable concurrently; the serve
//                                     harness samples it mid-run)
//   rt.run(f) -> f(ctx)               execute f as the root task
//   RT::fork2(ctx, {roots}, f, g)     fork-join returning {f res, g res};
//                                     `roots` lists every parent Local the
//                                     branches may touch (the local-heap
//                                     runtime promotes their closures at
//                                     spawn; the others may ignore them)
//
// and a Ctx with the allocation/barrier surface:
//
//   ctx.alloc(nptr, nscalar)          zeroed bump allocation
//   Ctx::init_i64 / Ctx::init_ptr     initialising stores (fresh objects)
//   Ctx::read_i64_imm                 immutable scalar read
//   Ctx::read_i64_mut / Ctx::write_i64   mutable scalar access
//   Ctx::read_ptr / ctx.write_ptr     pointer access (the write barrier is
//                                     where the runtimes differ)
//   ctx.publish(v)                    make v's closure safe to hand to the
//                                     parent across a join: identity under
//                                     seq/stw/hier, promotion to the global
//                                     heap under local heaps
//   ctx.collect_now()                 force a collection
//   ctx.root_head_ref()               RootFrame chain head (precise roots)
//
// Portability contract for code written against this surface (the
// workload kernels in bench_common/workloads.hpp obey it):
//
//   - A raw Object* must not be held across ctx.alloc or fork2; anything
//     live across them goes in a RootFrame Local. (Collectors move
//     objects: leaf GC under seq/lh/hier, any alloc-triggered STW cycle
//     under stw.)
//   - A branch may RETURN a raw Object*: fork2 carries each branch's
//     result through a rooted channel (ResultChannel below) -- the value
//     is published on the executing worker and parked in a parent-frame
//     Local until the join consumes it, so any collection in between
//     rewrites it like every other root. Results of other types carry
//     scalars only (an Object* buried inside a struct return is NOT
//     rooted; publish it into a parent Local instead).
//   - Shared structures both branches touch are listed in fork2's roots.
//
// bench_common::measure() consumes exactly this surface (stats(),
// peak_bytes(), run()), so any RuntimeLike runtime drops into the
// figure drivers unchanged.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <optional>
#include <type_traits>
#include <variant>

#include "core/object.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"

namespace parmem {

namespace rtapi {

// void branches surface as std::monostate in fork2's result pair.
template <class Fn, class Ctx>
using BranchResult = std::conditional_t<
    std::is_void_v<std::invoke_result_t<Fn&, Ctx&>>, std::monostate,
    std::decay_t<std::invoke_result_t<Fn&, Ctx&>>>;

template <class Fn, class Ctx>
BranchResult<Fn, Ctx> invoke_branch(Fn& fn, Ctx& c) {
  if constexpr (std::is_void_v<std::invoke_result_t<Fn&, Ctx&>>) {
    fn(c);
    return std::monostate{};
  } else {
    return fn(c);
  }
}

// Rooted branch-result carrier. A branch returning a raw Object* used
// to park it in an unregistered stack slot from branch completion
// until the parent consumed it after the join -- any collection inside
// that window (a GC-stress join cycle, a helping joiner's leaf
// collection, a stopped-world pause) could relocate the object and
// leave the return value stale. The channel closes the hole:
//
//   * construction registers ONE Local in the PARENT's frame chain,
//     on the parent's thread, before the branch can possibly run;
//   * store() runs on whichever thread executes the branch: it
//     publishes the value (identity under seq/stw/hier; promotion
//     under local heaps, where a branch-local object must escape its
//     worker to survive the hand-off anyway) and writes the slot --
//     safe against a concurrent scan of the parent's frames because
//     Local slots are atomic and collectors rewrite only pointers
//     into the heap being collected (core/gc_leaf.hpp);
//   * take() re-reads the slot after the join, by which time any
//     collection has rewritten it like every other root.
//
// Non-pointer results pass through a plain buffer, so fork2 call
// sites need no special cases -- and pay no frame push for them.
template <class Ctx, class R>
class ResultChannel {
  static constexpr bool kRooted = std::is_same_v<R, Object*>;

 public:
  explicit ResultChannel(Ctx& parent) {
    if constexpr (kRooted) {
      frame_.emplace(parent);
      slot_ = frame_->local(nullptr);
    }
  }
  ResultChannel(const ResultChannel&) = delete;
  ResultChannel& operator=(const ResultChannel&) = delete;

  void store(Ctx& executing, R&& v) {
    if constexpr (kRooted) {
      slot_.set(executing.publish(v));
    } else {
      (void)executing;
      out_.emplace(std::move(v));
    }
  }

  R take() {
    if constexpr (kRooted) {
      return slot_.get();
    } else {
      return std::move(*out_);
    }
  }

 private:
  struct Nothing {};
  [[no_unique_address]] std::conditional_t<kRooted, std::optional<RootFrame>,
                                           Nothing>
      frame_;
  [[no_unique_address]] std::conditional_t<kRooted, Local, Nothing> slot_;
  [[no_unique_address]] std::conditional_t<kRooted, Nothing, std::optional<R>>
      out_;
};

// The spawn/join half of fork2, shared by every runtime: push the
// right branch at construction, then join() after the left branch ran
// -- popping it back for inline execution when unstolen (the common
// case), helping steal otherwise. Per-runtime work around a branch's
// execution (bind to a worker heap, enter/leave the STW running set)
// goes in Ctx::branch_enter()/branch_exit(), which run on the thread
// that actually executes the branch.
//
// `parent` is the forking context: it owns the rooted result slot
// (see ResultChannel) and must outlive the join. Stack-allocated by
// fork2 and joined before the frame dies, exactly like the tasks
// core/sched.hpp documents.
template <class Ctx, class G>
class SpawnedBranch final : public WorkStealPool::Task {
 public:
  using RB = BranchResult<G, Ctx>;

  SpawnedBranch(WorkStealPool* pool, G& g, Ctx& ctx, Ctx& parent)
      : pool_(pool), g_(&g), ctx_(&ctx), chan_(parent) {
    pool_->push(this);
  }
  SpawnedBranch(const SpawnedBranch&) = delete;
  SpawnedBranch& operator=(const SpawnedBranch&) = delete;

  void execute() override {
    ctx_->branch_enter();
    try {
      chan_.store(*ctx_, invoke_branch(*g_, *ctx_));
    } catch (...) {
      err_ = std::current_exception();
    }
    ctx_->branch_exit();
    done_.store(true, std::memory_order_release);
  }

  // Join after the left branch completed. `left_failed` skips inline
  // execution of a still-unstolen branch when the left branch already
  // threw (matching the sequential semantics of rethrowing the first
  // error).
  void join(bool left_failed) {
    if (pool_->cancel(this)) {
      if (!left_failed) {
        execute();
      }
    } else {
      pool_->help_until(
          [this] { return done_.load(std::memory_order_acquire); });
    }
  }

  std::exception_ptr error() const { return err_; }
  RB take_result() { return chan_.take(); }

 private:
  WorkStealPool* pool_;
  G* g_;
  Ctx* ctx_;
  ResultChannel<Ctx, RB> chan_;
  std::exception_ptr err_;
  std::atomic<bool> done_{false};
};

// Lock-free point-in-time sample of a runtime's counters + memory
// gauges (core/stats.hpp StatsSnapshot). Safe to call from a thread
// outside the runtime's pool while tasks keep running -- the
// steady-state surface the serve harness samples RSS/fragmentation
// against.
template <class RT>
StatsSnapshot snapshot_of(const RT& rt) {
  StatsSnapshot s;
  s.stats = rt.stats();
  s.live_bytes = rt.live_bytes();
  s.peak_bytes = rt.peak_bytes();
  return s;
}

}  // namespace rtapi

// Compile-time check of the non-template part of the surface (run and
// fork2 are templates and are covered by the parity tests instead).
template <class RT>
concept RuntimeLike = requires(const RT& crt, typename RT::Ctx& ctx,
                               Object* o, typename RT::Options opts) {
  requires std::default_initializable<typename RT::Options>;
  { opts.workers } -> std::convertible_to<unsigned>;
  { RT::kName } -> std::convertible_to<const char*>;
  { crt.workers() } -> std::convertible_to<unsigned>;
  { crt.stats() } -> std::same_as<Stats>;
  { crt.peak_bytes() } -> std::convertible_to<std::size_t>;
  { crt.live_bytes() } -> std::convertible_to<std::size_t>;
  { ctx.alloc(0u, 1u) } -> std::same_as<Object*>;
  { RT::Ctx::init_i64(o, 0u, std::int64_t{0}) };
  { RT::Ctx::init_ptr(o, 0u, o) };
  { RT::Ctx::read_i64_imm(o, 0u) } -> std::same_as<std::int64_t>;
  { RT::Ctx::read_i64_mut(o, 0u) } -> std::same_as<std::int64_t>;
  { RT::Ctx::write_i64(o, 0u, std::int64_t{0}) };
  { RT::Ctx::read_ptr(o, 0u) } -> std::same_as<Object*>;
  { ctx.write_ptr(o, 0u, o) };
  { ctx.publish(o) } -> std::same_as<Object*>;
  { ctx.collect_now() };
  { ctx.root_head_ref() } -> std::same_as<RootFrame**>;
  { ctx.branch_enter() };  // rtapi::SpawnedBranch hooks (internal)
  { ctx.branch_exit() };
};

}  // namespace parmem
