// Manticore-like local heaps ("manticore" in fig10 and the promotion-
// volume table): a two-level hierarchy with one GLOBAL heap (depth 0)
// and one persistent LOCAL heap per worker (depth 1).
//
// The defining discipline -- the contrast the hierarchical runtime is
// measured against -- is that data escaping a worker is PROMOTED
// (deep-copied) into the global heap at the escape point:
//
//   * fork2 promotes the closures of its documented root Locals at
//     every spawn (whether or not the branch is ever stolen);
//   * publish() promotes a branch's result before it is handed to the
//     parent, because the parent may live on another worker;
//   * the write barrier promotes any local value stored into a
//     non-local object.
//
// This keeps local heaps worker-private (they can be collected by the
// standard leaf Cheney collector without stopping anyone), at the cost
// of copying on the order of the input size even for pure programs --
// exactly the paper's Section 4.4 measurement. The global heap is an
// allocation sink: it is only reclaimed wholesale when run() returns
// (a global collection is future work, as in most local-heap systems).
//
// All promotions serialize on the global heap's lock, mirroring
// Manticore's stop-less but serialized global-heap growth.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/failpoint.hpp"
#include "core/gc_leaf.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"
#include "core/profiler.hpp"
#include "core/promote.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"
#include "core/stats_json.hpp"
#include "core/trace.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class LhRuntime {
 public:
  static constexpr const char* kName = "localheap";

  struct Options {
    unsigned workers = 0;  // 0 = one per hardware thread
    std::size_t gc_min_budget = std::size_t{4} << 20;  // per local heap
    double gc_growth_factor = 8.0;
    // Hard cap on pool bytes; 0 = PARMEM_HEAP_BUDGET, else unlimited.
    // Exceeding it emergency-collects the worker's local heap and
    // retries once before parmem::OutOfMemory reaches the program (the
    // global heap is an allocation sink here, so that is all the
    // reclaim this design has).
    std::size_t heap_budget_bytes = 0;
    std::string failpoints;  // e.g. "chunk_alloc=fail@3"; "" = none
    // Append one JSON line of counters + pause-histogram summaries to
    // this file at runtime destruction; "" = PARMEM_STATS_JSON or none.
    std::string stats_json_path;
  };

 private:
  // Per-worker persistent state. All task contexts executing on a
  // worker share its local heap and its root-frame chain (execution on
  // one worker is strictly nested, so frames keep stack discipline).
  struct WorkerState {
    Heap heap;
    RootFrame* frames = nullptr;
    std::size_t gc_budget;

    WorkerState(Heap* global, ChunkPool* pool, std::size_t budget)
        : heap(global, 1, pool), gc_budget(budget) {}
  };

 public:
  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = w_->heap.try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // Promotion leaves forwarding pointers behind, so mutable accessors
    // chase to the master copy, exactly as under hierarchical heaps.
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return Object::chase(o)->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      Object::chase(o)->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return Object::chase(o)->ptr(i);
    }

    // Pointer write barrier: stores within the worker's own local heap
    // are free; any other store first promotes a local value to the
    // global heap (a local object must never be reachable from outside
    // its worker).
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o = Object::chase(o);
      if (v != nullptr) {
        v = Object::chase(v);
      }
      if (__builtin_expect(heap_of(o) == &w_->heap, 1)) {
        o->set_ptr_relaxed(idx, v);
        return;
      }
      if (v != nullptr && heap_of(v)->depth() > 0) {
        v = rt_->promote_to_global(v);
      }
      o->set_ptr(idx, v);
    }

    // A branch result escapes its worker: promote its closure.
    Object* publish(Object* v) {
      if (v == nullptr) {
        return nullptr;
      }
      v = Object::chase(v);
      if (heap_of(v)->depth() == 0) {
        return v;
      }
      return rt_->promote_to_global(v);
    }

    void collect_now() {
      WorkerState* w = w_;
      std::size_t live = leaf_gc_collect(&w->heap, &rt_->stats_.local(),
                                         [w](auto&& fn) {
                                           for (RootFrame* f = w->frames;
                                                f != nullptr; f = f->prev()) {
                                             f->for_each_slot(fn);
                                           }
                                         });
      auto scaled = static_cast<std::size_t>(
          static_cast<double>(live) * rt_->opts_.gc_growth_factor);
      w->gc_budget = scaled > rt_->opts_.gc_min_budget
                         ? scaled
                         : rt_->opts_.gc_min_budget;
    }

    LhRuntime& runtime() { return *rt_; }
    Heap* leaf_heap() { return &w_->heap; }
    RootFrame** root_head_ref() { return &w_->frames; }

    // SpawnedBranch hooks: a branch allocates from whichever worker's
    // heap actually executes it, bound here at branch start.
    void branch_enter() { bind(); }
    void branch_exit() {}

   private:
    friend class LhRuntime;

    explicit Ctx(LhRuntime* rt) : rt_(rt) {}

    // A task context runs entirely on one worker; bind() pins it to the
    // executing worker's heap at branch start.
    void bind() {
      w_ = rt_->workers_[rt_->pool_.current_index()].get();
    }

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      if (w_->heap.chunk_bytes() >= w_->gc_budget) {
        collect_now();
      }
      Object* o;
      try {
        o = w_->heap.bump_alloc(nptr, nscalar);
      } catch (const OutOfMemory&) {
        // Budget hit (or injected chunk fault): emergency-collect this
        // worker's local heap and retry once. (Other workers' locals
        // are not safely collectable from here, and the global heap is
        // reclaimed only at run() end -- both by design.)
        collect_now();
        rt_->stats_.local().emergency_gcs.fetch_add(1, std::memory_order_relaxed);
        o = w_->heap.bump_alloc(nptr, nscalar);
      }
      o->zero_fields();
      return o;
    }

    LhRuntime* rt_;
    WorkerState* w_ = nullptr;
  };

  LhRuntime() : LhRuntime(Options{}) {}
  explicit LhRuntime(const Options& opts)
      : opts_(opts),
        global_(nullptr, 0, &chunks_),
        pool_(opts.workers) {
    env::install_failpoints_env();
    trace::init_from_env();
    profiler::init_from_env();
    profiler::note_stack_hi();
    chunks_.set_budget(effective_heap_budget(opts_.heap_budget_bytes));
    if (!opts_.failpoints.empty()) {
      failpoint::install(opts_.failpoints);
    }
    workers_.reserve(pool_.workers());
    for (unsigned i = 0; i < pool_.workers(); ++i) {
      workers_.push_back(std::make_unique<WorkerState>(
          &global_, &chunks_, opts_.gc_min_budget));
    }
  }
  LhRuntime(const LhRuntime&) = delete;
  LhRuntime& operator=(const LhRuntime&) = delete;

  ~LhRuntime() {
    StatsSnapshot snap;
    snap.stats = stats_.snapshot();
    snap.live_bytes = chunks_.live_bytes();
    snap.peak_bytes = chunks_.peak_bytes();
    stats_json::write(stats_json::resolve_path(opts_.stats_json_path), kName,
                      snap);
  }

  const Options& options() const { return opts_; }
  unsigned workers() const { return pool_.workers(); }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }

  template <class F>
  auto run(F&& f) {
    WorkStealPool::Scope scope(&pool_);
    Ctx ctx(this);
    ctx.bind();
    // Program end is the only global collection: drop every heap so
    // back-to-back runs (bench_common::measure) don't accumulate the
    // global allocation sink. Results must be scalars by then.
    struct Teardown {
      LhRuntime* rt;
      ~Teardown() {
        for (auto& w : rt->workers_) {
          w->heap.release_all_chunks();
          w->gc_budget = rt->opts_.gc_min_budget;
        }
        rt->global_.release_all_chunks();
      }
    } teardown{this};
    return f(ctx);
  }

  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;

    LhRuntime* rt = ctx.rt_;
    rt->stats_.local().forks.fetch_add(1, std::memory_order_relaxed);

    // Spawn-time promotion: the spawned computation (and, symmetrically,
    // the continuation) may run on any worker, so everything its
    // closure can reach escapes NOW. This is the cost fig10's manticore
    // columns and tab_promotion_volume quantify.
    //
    // Write the slot only if promotion moved the value: a slot that is
    // visible to concurrently running relatives was already promoted at
    // the fork where the sharing began (it is global, so publish is the
    // identity here), and skipping the dead store keeps the concurrent
    // re-promotions in nested forks read-only on the slot.
    for (const Local& l : roots) {
      if (Object* p = l.get()) {
        Object* m = ctx.publish(p);
        if (m != p) {
          l.set(m);
        }
      }
    }

    Ctx ctx_b(rt);
    rtapi::SpawnedBranch<Ctx, std::remove_reference_t<G>> task_b(
        &rt->pool_, g, ctx_b);

    // The left branch is the continuation: it stays on this worker and
    // shares the parent's local heap, so the parent context serves it.
    std::optional<RA> ra;
    std::exception_ptr err_a;
    try {
      ra.emplace(rtapi::invoke_branch(f, ctx));
    } catch (...) {
      err_a = std::current_exception();
    }
    task_b.join(err_a != nullptr);

    // No join-time heap merge: locals stay put; anything the parent
    // needs was published (promoted) by the branches.
    if (err_a) {
      std::rethrow_exception(err_a);
    }
    if (task_b.error()) {
      std::rethrow_exception(task_b.error());
    }
    return std::pair<RA, RB>(std::move(*ra), task_b.take_result());
  }

 private:
  friend class Ctx;

  Object* promote_to_global(Object* v) {
    // Same fault discipline as promote_and_store (this path bypasses
    // it): the injected promote fault fires before any mutation, and
    // the copy loop itself is a non-unwindable window -- once the
    // first set_fwd publishes, abandoning the closure would leave
    // global objects with un-lifted local fields.
    if (__builtin_expect(
            !failpoint::gc_exempt() &&
                failpoint::triggered(failpoint::Site::kPromoteCopy),
            0)) {
      throw OutOfMemory("promote_copy", 0, chunks_.live_bytes(),
                        chunks_.budget(), chunks_.peak_bytes());
    }
    failpoint::GcAllocScope copy_scope;
    phase::PhaseScope promo_scope(phase::Phase::kPromotion);
    const bool traced = trace::ring_enabled();
    const std::uint64_t trace_t0 = traced ? trace::now_ns() : 0;
    std::lock_guard<std::mutex> g(global_.path_lock());
    detail::PromoteResult res = detail::promote_coarse_locked(v, &global_);
    if (res.objects != 0) {
      stats_.local().promotions.fetch_add(1, std::memory_order_relaxed);
      stats_.local().promoted_objects.fetch_add(res.objects,
                                        std::memory_order_relaxed);
      stats_.local().promoted_bytes.fetch_add(res.bytes, std::memory_order_relaxed);
    }
    if (traced) {
      trace::record_promotion(trace_t0, trace::now_ns() - trace_t0,
                              res.bytes);
    }
    return res.master;
  }

  Options opts_;
  ChunkPool chunks_;
  ShardedStats stats_{WorkStealPool::resolved_workers(opts_.workers)};
  Heap global_;  // depth 0: the shared promotion target
  std::vector<std::unique_ptr<WorkerState>> workers_;  // depth-1 local heaps
  WorkStealPool pool_;  // last member: joins threads before heaps die
};

static_assert(RuntimeLike<LhRuntime>);

}  // namespace parmem
