// Manticore-like local heaps ("manticore" in fig10 and the promotion-
// volume table): a two-level hierarchy with one GLOBAL heap (depth 0)
// and one persistent LOCAL heap per worker (depth 1).
//
// The defining discipline -- the contrast the hierarchical runtime is
// measured against -- is that data escaping a worker is PROMOTED
// (deep-copied) into the global heap at the escape point:
//
//   * fork2 promotes the closures of its documented root Locals at
//     every spawn (whether or not the branch is ever stolen);
//   * publish() promotes a branch's result before it is handed to the
//     parent, because the parent may live on another worker;
//   * the write barrier promotes any local value stored into a
//     non-local object.
//
// This keeps local heaps worker-private (they can be collected by the
// standard leaf Cheney collector without stopping anyone), at the cost
// of copying on the order of the input size even for pure programs --
// exactly the paper's Section 4.4 measurement.
//
// The global heap is collected by a stopped-world Cheney cycle (the
// Doligez-Leroy-Gonthier "major collection" shape all local-heap
// systems eventually grow): gc_global_threshold rings a doorbell once
// that many bytes have been promoted since the last cycle, and the
// next safepoint anyone reaches stops the running set through the
// shared SafepointGate and collects depth 0. Roots are every worker's
// frame chain PLUS edges discovered by scanning every worker's local
// heap -- a local object may legally point down into global after a
// promotion, and a stale promoted copy's forwarding word keeps its
// global master alive. That enumeration is exactly the internal-
// collection root discovery (core/gc_internal.hpp) with target =
// global and the local heaps as the descendant set. Parked mutators
// are recruited as evacuators through the gate's team handoff
// (core/gc_parallel.hpp). With the threshold off (the default), the
// global heap remains a run()-scoped allocation sink, preserving the
// paper-baseline behaviour fig10 measures.
//
// All promotions serialize on the global heap's lock, mirroring
// Manticore's stop-less but serialized global-heap growth.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/failpoint.hpp"
#include "core/gc_internal.hpp"
#include "core/gc_leaf.hpp"
#include "core/gc_parallel.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"
#include "core/profiler.hpp"
#include "core/promote.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"
#include "core/stats_json.hpp"
#include "core/trace.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class LhRuntime {
 public:
  static constexpr const char* kName = "localheap";

  struct Options {
    unsigned workers = 0;  // 0 = one per hardware thread
    std::size_t gc_min_budget = std::size_t{4} << 20;  // per local heap
    double gc_growth_factor = 8.0;
    // Collect the global heap once at least this many bytes have been
    // promoted into it since the last cycle. A doorbell, like
    // HierRuntime's gc_internal_threshold: promotion only rings it,
    // and the next safepoint anyone reaches drives the stopped-world
    // collection. 0 = PARMEM_GC_GLOBAL_THRESHOLD, else disabled (the
    // global heap reverts to a run()-scoped allocation sink).
    std::size_t gc_global_threshold = 0;
    // Force a global-collection cycle at every safepoint (also set by
    // PARMEM_GC_STRESS); the differential harness runs the whole
    // suite under it.
    bool gc_stress = false;
    // Hard cap on pool bytes; 0 = PARMEM_HEAP_BUDGET, else unlimited.
    // Exceeding it emergency-collects the worker's local heap, then
    // the global heap on a stopped world, and retries once before
    // parmem::OutOfMemory reaches the program.
    std::size_t heap_budget_bytes = 0;
    std::string failpoints;  // e.g. "chunk_alloc=fail@3"; "" = none
    // Append one JSON line of counters + pause-histogram summaries to
    // this file at runtime destruction; "" = PARMEM_STATS_JSON or none.
    std::string stats_json_path;
  };

 private:
  // Per-worker persistent state. All task contexts executing on a
  // worker share its local heap and its root-frame chain (execution on
  // one worker is strictly nested, so frames keep stack discipline).
  struct WorkerState {
    Heap heap;
    RootFrame* frames = nullptr;
    std::size_t gc_budget;

    WorkerState(Heap* global, ChunkPool* pool, std::size_t budget)
        : heap(global, 1, pool), gc_budget(budget) {}
  };

 public:
  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = w_->heap.try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // Promotion leaves forwarding pointers behind, so mutable accessors
    // chase to the master copy, exactly as under hierarchical heaps.
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return Object::chase(o)->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      Object::chase(o)->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return Object::chase(o)->ptr(i);
    }

    // Pointer write barrier: stores within the worker's own local heap
    // are free; any other store first promotes a local value to the
    // global heap (a local object must never be reachable from outside
    // its worker).
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o = Object::chase(o);
      if (v != nullptr) {
        v = Object::chase(v);
      }
      if (__builtin_expect(heap_of(o) == &w_->heap, 1)) {
        o->set_ptr_relaxed(idx, v);
        return;
      }
      if (v != nullptr && heap_of(v)->depth() > 0) {
        v = rt_->promote_to_global(v);
      }
      o->set_ptr(idx, v);
    }

    // A branch result escapes its worker: promote its closure.
    Object* publish(Object* v) {
      if (v == nullptr) {
        return nullptr;
      }
      v = Object::chase(v);
      if (heap_of(v)->depth() == 0) {
        return v;
      }
      return rt_->promote_to_global(v);
    }

    void collect_now() {
      WorkerState* w = w_;
      std::size_t live = leaf_gc_collect(&w->heap, &rt_->stats_.local(),
                                         [w](auto&& fn) {
                                           for (RootFrame* f = w->frames;
                                                f != nullptr; f = f->prev()) {
                                             f->for_each_slot(fn);
                                           }
                                         });
      auto scaled = static_cast<std::size_t>(
          static_cast<double>(live) * rt_->opts_.gc_growth_factor);
      w->gc_budget = scaled > rt_->opts_.gc_min_budget
                         ? scaled
                         : rt_->opts_.gc_min_budget;
    }

    // Force a global-heap collection cycle from this task's safepoint
    // (the caller must hold no raw Object* -- same contract as alloc).
    // A no-op unless the safepoint machinery is enabled (a threshold,
    // a heap budget, or GC-stress).
    void collect_global_now() {
      if (!rt_->sp_enabled_) {
        return;
      }
      if (rt_->gate_.pending()) {
        rt_->gate_.park();
        return;
      }
      rt_->drive_global_gc(/*forced=*/true);
    }

    LhRuntime& runtime() { return *rt_; }
    Heap* leaf_heap() { return &w_->heap; }
    RootFrame** root_head_ref() { return &w_->frames; }

    // SpawnedBranch hooks: a branch allocates from whichever worker's
    // heap actually executes it, bound here at branch start. With the
    // global collector on it also joins the running set for exactly
    // the span of its execution (entry blocks while a stop is pending;
    // exit wakes a driver waiting on the running count).
    void branch_enter() {
      bind();
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->gate_.activate(rt_->pool_.current_index());
      }
    }
    void branch_exit() {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->gate_.deactivate(rt_->pool_.current_index());
      }
    }

   private:
    friend class LhRuntime;

    explicit Ctx(LhRuntime* rt) : rt_(rt) {}

    // A task context runs entirely on one worker; bind() pins it to the
    // executing worker's heap at branch start.
    void bind() {
      w_ = rt_->workers_[rt_->pool_.current_index()].get();
    }

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        // The allocation slow path is a safepoint: no raw Object* may
        // be held across alloc, so a pending global collection can
        // relocate while we park (or while we drive it ourselves).
        rt_->safepoint();
        if (rt_->opts_.gc_stress) {
          collect_now();  // stress: leaf collection at every safepoint
        }
      }
      if (w_->heap.chunk_bytes() >= w_->gc_budget) {
        collect_now();
      }
      Object* o;
      try {
        o = w_->heap.bump_alloc(nptr, nscalar);
      } catch (const OutOfMemory&) {
        emergency_collect();
        o = w_->heap.bump_alloc(nptr, nscalar);  // retry exactly once
      }
      o->zero_fields();
      return o;
    }

    // The budget (or an injected chunk fault) refused an allocation:
    // climb the cascade, cheapest rung first -- this worker's own
    // local heap (no coordination needed), then, with the safepoint
    // machinery on, a stopped-world collection of the global heap.
    // (Other workers' locals stay untouched: they are bounded by their
    // own budgets, and the reclaimable mass of this design sits in the
    // promotion sink.) The caller retries the allocation once; a
    // second failure is the program's real OOM.
    void emergency_collect() {
      const std::uint64_t trace_t0 = trace::now_ns();
      const std::uint64_t live_before = rt_->chunks_.live_bytes();
      rt_->stats_.local().emergency_gcs.fetch_add(1,
                                                  std::memory_order_relaxed);
      collect_now();
      if (__builtin_expect(rt_->sp_enabled_, 0)) {
        rt_->drive_emergency_gc();
      }
      // One event spanning the whole cascade; its constituent
      // collections also recorded individually above.
      trace::record_emergency(trace_t0, trace::now_ns() - trace_t0,
                              live_before);
    }

    LhRuntime* rt_;
    WorkerState* w_ = nullptr;
  };

  LhRuntime() : LhRuntime(Options{}) {}
  explicit LhRuntime(const Options& opts)
      : opts_(opts),
        global_(nullptr, 0, &chunks_),
        pool_(opts.workers) {
    if (!opts_.gc_stress && gc_stress_env()) {
      opts_.gc_stress = true;
    }
    if (opts_.gc_global_threshold == 0) {
      opts_.gc_global_threshold = global_gc_threshold_env();
    }
    env::install_failpoints_env();
    trace::init_from_env();
    profiler::init_from_env();
    profiler::note_stack_hi();
    chunks_.set_budget(effective_heap_budget(opts_.heap_budget_bytes));
    if (!opts_.failpoints.empty()) {
      failpoint::install(opts_.failpoints);
    }
    // A heap budget enables the safepoint machinery too: the emergency
    // cascade's global rung needs the gate.
    sp_enabled_ = opts_.gc_stress || opts_.gc_global_threshold != 0 ||
                  chunks_.budget() != 0;
    workers_.reserve(pool_.workers());
    for (unsigned i = 0; i < pool_.workers(); ++i) {
      workers_.push_back(std::make_unique<WorkerState>(
          &global_, &chunks_, opts_.gc_min_budget));
    }
  }
  LhRuntime(const LhRuntime&) = delete;
  LhRuntime& operator=(const LhRuntime&) = delete;

  ~LhRuntime() {
    StatsSnapshot snap;
    snap.stats = stats_.snapshot();
    snap.live_bytes = chunks_.live_bytes();
    snap.peak_bytes = chunks_.peak_bytes();
    stats_json::write(stats_json::resolve_path(opts_.stats_json_path), kName,
                      snap);
  }

  const Options& options() const { return opts_; }
  unsigned workers() const { return pool_.workers(); }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }
  // Scheduler idle churn (timed-out parks); see WorkStealPool.
  std::uint64_t scheduler_idle_wakeups() const {
    return pool_.idle_wakeups();
  }

  template <class F>
  auto run(F&& f) {
    WorkStealPool::Scope scope(&pool_);
    Ctx ctx(this);
    ctx.bind();
    // Program end still drops every heap wholesale, so back-to-back
    // runs (bench_common::measure) never accumulate state -- but with
    // gc_global_threshold set it is a backstop, not the only reclaim:
    // the global heap is collected DURING the run. Results must be
    // scalars by teardown either way.
    struct Teardown {
      LhRuntime* rt;
      ~Teardown() {
        for (auto& w : rt->workers_) {
          w->heap.release_all_chunks();
          w->gc_budget = rt->opts_.gc_min_budget;
        }
        rt->global_.release_all_chunks();
        rt->global_.reset_remote_bytes();
      }
    } teardown{this};
    // With the global collector on, the root task is a member of the
    // running set for the whole run (leaving it only inside fork2
    // joins, like every other task). Declared after Teardown so the
    // task deactivates before the heaps are dropped.
    struct ActiveScope {
      LhRuntime* rt;
      explicit ActiveScope(LhRuntime* r) : rt(r) {
        if (rt->sp_enabled_) {
          rt->gate_.activate(rt->pool_.current_index());
        }
      }
      ~ActiveScope() {
        if (rt->sp_enabled_) {
          rt->gate_.deactivate(rt->pool_.current_index());
        }
      }
      ActiveScope(const ActiveScope&) = delete;
      ActiveScope& operator=(const ActiveScope&) = delete;
    } act(this);
    return f(ctx);
  }

  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;

    LhRuntime* rt = ctx.rt_;
    rt->stats_.local().forks.fetch_add(1, std::memory_order_relaxed);

    const bool sp = rt->sp_enabled_;
    if (__builtin_expect(sp, 0)) {
      // fork2 is a safepoint of the forking task (no raw Object* is
      // held across it by contract): handle a pending global
      // collection BEFORE the promotion loop pins master pointers.
      rt->safepoint();
    }

    // Spawn-time promotion: the spawned computation (and, symmetrically,
    // the continuation) may run on any worker, so everything its
    // closure can reach escapes NOW. This is the cost fig10's manticore
    // columns and tab_promotion_volume quantify.
    //
    // Write the slot only if promotion moved the value: a slot that is
    // visible to concurrently running relatives was already promoted at
    // the fork where the sharing began (it is global, so publish is the
    // identity here), and skipping the dead store keeps the concurrent
    // re-promotions in nested forks read-only on the slot.
    for (const Local& l : roots) {
      if (Object* p = l.get()) {
        Object* m = ctx.publish(p);
        if (m != p) {
          l.set(m);
        }
      }
    }

    // Both result channels register their Locals on the parent's frame
    // chain HERE, while the parent is still active: from now until the
    // join returns, the chain's structure is fixed, so a stopped-world
    // driver may scan it while this task sits deactivated in the join.
    rtapi::ResultChannel<Ctx, RA> ch_a(ctx);
    Ctx ctx_b(rt);
    rtapi::SpawnedBranch<Ctx, std::remove_reference_t<G>> task_b(
        &rt->pool_, g, ctx_b, ctx);

    // The left branch is the continuation: it stays on this worker and
    // shares the parent's local heap, so the parent context serves it
    // (and remains in the running set while it runs).
    std::exception_ptr err_a;
    try {
      ch_a.store(ctx, rtapi::invoke_branch(f, ctx));
    } catch (...) {
      err_a = std::current_exception();
    }

    if (__builtin_expect(sp, 0)) {
      // Leave the running set for the join: a pending global
      // collection must never wait on a task that is blocked in fork2
      // rather than parked. Reactivation blocks while a stop is
      // pending, so post-join reads cannot race a collection.
      rt->fork_enter_safepoint();
    }
    task_b.join(err_a != nullptr);
    if (__builtin_expect(sp, 0)) {
      rt->fork_exit_reactivate();
    }

    // No join-time heap merge: locals stay put; anything the parent
    // needs was published (promoted) by the branches.
    if (err_a) {
      std::rethrow_exception(err_a);
    }
    if (task_b.error()) {
      std::rethrow_exception(task_b.error());
    }
    return std::pair<RA, RB>(ch_a.take(), task_b.take_result());
  }

 private:
  friend class Ctx;

  static bool gc_stress_env() {
    static const bool on = [] {
      const char* v = std::getenv("PARMEM_GC_STRESS");
      return v != nullptr && v[0] != '\0' &&
             !(v[0] == '0' && v[1] == '\0');
    }();
    return on;
  }

  // PARMEM_GC_GLOBAL_THRESHOLD=bytes: force global collection on for
  // runtimes whose Options leave it off -- lets the profiling /
  // flame-diff workflow perturb the policy on an unmodified driver.
  static std::size_t global_gc_threshold_env() {
    static const std::size_t bytes = [] {
      const char* v = std::getenv("PARMEM_GC_GLOBAL_THRESHOLD");
      if (v == nullptr || v[0] == '\0') {
        return std::size_t{0};
      }
      return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    }();
    return bytes;
  }

  Object* promote_to_global(Object* v) {
    // Same fault discipline as promote_and_store (this path bypasses
    // it): the injected promote fault fires before any mutation, and
    // the copy loop itself is a non-unwindable window -- once the
    // first set_fwd publishes, abandoning the closure would leave
    // global objects with un-lifted local fields.
    if (__builtin_expect(
            !failpoint::gc_exempt() &&
                failpoint::triggered(failpoint::Site::kPromoteCopy),
            0)) {
      throw OutOfMemory("promote_copy", 0, chunks_.live_bytes(),
                        chunks_.budget(), chunks_.peak_bytes());
    }
    failpoint::GcAllocScope copy_scope;
    phase::PhaseScope promo_scope(phase::Phase::kPromotion);
    const bool traced = trace::ring_enabled();
    const std::uint64_t trace_t0 = traced ? trace::now_ns() : 0;
    detail::PromoteResult res;
    {
      std::lock_guard<std::mutex> g(global_.path_lock());
      res = detail::promote_coarse_locked(v, &global_);
    }
    if (res.objects != 0) {
      stats_.local().promotions.fetch_add(1, std::memory_order_relaxed);
      stats_.local().promoted_objects.fetch_add(res.objects,
                                        std::memory_order_relaxed);
      stats_.local().promoted_bytes.fetch_add(res.bytes, std::memory_order_relaxed);
      // Promoted-since-last-collect accounting drives the global-GC
      // doorbell (the promoter may hold raw pointers, so only ring the
      // bell here -- the next safepoint anyone reaches collects).
      global_.note_remote_bytes(res.bytes);
      if (__builtin_expect(sp_enabled_, 0)) {
        note_global_pressure();
      }
    }
    if (traced) {
      trace::record_promotion(trace_t0, trace::now_ns() - trace_t0,
                              res.bytes);
    }
    return res.master;
  }

  std::size_t effective_global_threshold() const {
    return opts_.gc_stress ? 1 : opts_.gc_global_threshold;
  }

  void note_global_pressure() {
    std::size_t thr = effective_global_threshold();
    if (thr != 0 && global_.remote_bytes() >= thr) {
      global_doorbell_.store(true, std::memory_order_relaxed);
    }
  }

  // fork2's gated slow paths, kept out of line so the disabled-default
  // fork2 stays compact (the fork row is a measured baseline).
  __attribute__((noinline)) void fork_enter_safepoint() {
    safepoint();
    gate_.deactivate(pool_.current_index());
  }
  __attribute__((noinline)) void fork_exit_reactivate() {
    gate_.activate(pool_.current_index());
  }

  // Safepoint poll (allocation slow paths, fork2 boundaries): park
  // through someone else's pending stop, or drive a requested global
  // collection ourselves.
  void safepoint() {
    if (opts_.gc_stress) {
      global_doorbell_.store(true, std::memory_order_relaxed);
    }
    if (gate_.pending()) {
      gate_.park();
      return;
    }
    if (global_doorbell_.load(std::memory_order_relaxed)) {
      drive_global_gc(/*forced=*/false);
    }
  }

  void drive_global_gc(bool forced) {
    std::size_t thr = forced ? 1 : effective_global_threshold();
    if (thr == 0) {
      global_doorbell_.store(false, std::memory_order_relaxed);
      return;
    }
    if (!forced && global_.remote_bytes() < thr) {
      // Under stress still run a full (possibly empty) stop
      // periodically so the pause protocol itself is exercised on
      // non-promoting programs.
      bool force_stop =
          opts_.gc_stress &&
          stress_tick_.fetch_add(1, std::memory_order_relaxed) % 32 == 0;
      if (!force_stop) {
        global_doorbell_.store(false, std::memory_order_relaxed);
        return;
      }
    }
    if (!gate_.begin_stop()) {
      return;  // parked through another driver's stop instead
    }
    // The global-GC phase tag makes the collection below record as a
    // gc_global pause (trace::pause_kind_from_phase).
    phase::PhaseScope gc_scope(phase::Phase::kGlobalGc);
    global_doorbell_.store(false, std::memory_order_relaxed);
    try {
      collect_global_stopped();
    } catch (...) {
      gate_.end_stop();  // never leave the world stopped (OS OOM in GC)
      throw;
    }
    gate_.end_stop();
  }

  // Emergency rung of the budget cascade (Ctx::emergency_collect). If
  // another driver's stop is pending, park through it instead: its
  // collection frees memory just the same, and the caller retries.
  void drive_emergency_gc() {
    if (gate_.pending()) {
      gate_.park();
      return;
    }
    drive_global_gc(/*forced=*/true);
  }

  // Collect the global heap. Precondition: the world is stopped --
  // every other member of the running set is parked at a safepoint or
  // deactivated into a fork2 join, holding no raw Object* by the
  // alloc/fork2 contract -- so worker frames and local heaps are
  // frozen and safe to walk from this thread.
  //
  // Roots into depth 0 are (1) every worker's frame chain (any Local
  // may hold a promoted pointer) and (2) edges found by scanning every
  // worker's LOCAL heap: a local object may point down into global
  // after promotion, and a stale promoted copy's forwarding word keeps
  // its master alive (and must be rewritten when the master moves).
  // That is exactly the internal-collection root discovery with
  // target = global_ and the local heaps as the descendant set.
  //
  // Parked mutators are recruited as evacuators: the gate hands each a
  // ParallelCollector slot, and one awake recruit claims any slots
  // late sleepers leave unclaimed, so finish() always completes.
  void collect_global_stopped() {
    if (global_.chunks() == nullptr) {
      global_.reset_remote_bytes();
      return;
    }
    std::vector<Heap*> locals;
    locals.reserve(workers_.size());
    for (auto& w : workers_) {
      locals.push_back(&w->heap);
    }
    auto each_root = [&](auto&& fn) {
      auto frame_roots = [&](auto&& slot_fn) {
        for (auto& w : workers_) {
          for (RootFrame* f = w->frames; f != nullptr; f = f->prev()) {
            f->for_each_slot(slot_fn);
          }
        }
      };
      detail::internal_gc_emit_roots(&global_, locals, frame_roots, fn);
    };
    const unsigned recruits = gate_.parked();
    std::size_t live;
    if (recruits > 0) {
      const unsigned team = recruits + 1;
      const std::uint64_t trace_t0 = trace::now_ns();
      core::ParallelCollector pc(chunks_, std::vector<Heap*>{&global_},
                                 core::ParallelGcOptions{team, 128});
      pc.prepare(each_root);
      gate_.offer_team(&run_team_slot, &pc, 1, team);
      pc.run_worker(0);
      core::ParallelGcOutcome out;
      try {
        out = pc.finish();  // waits for every recruit; rethrows an abort
      } catch (...) {
        gate_.retract_team();
        throw;
      }
      gate_.retract_team();
      live = out.totals.bytes_copied;
      // The team path bills gc_count directly (no leaf_gc_collect
      // underneath), so it records its own pause; gc_ns aggregates the
      // team's summed busy time, like other team collections.
      trace::record_gc_pause(trace::Ev::kGcGlobal, trace_t0, out.wall_ns,
                             live);
      stats_.local().gc_count.fetch_add(1, std::memory_order_relaxed);
      stats_.local().gc_bytes_copied.fetch_add(live,
                                               std::memory_order_relaxed);
      stats_.local().gc_ns.fetch_add(out.totals.busy_ns,
                                     std::memory_order_relaxed);
    } else {
      // Sequential path (no one parked to recruit): the shared leaf
      // collector records the pause as gc_global via the ambient phase
      // and bills gc_count / gc_bytes_copied / gc_ns itself.
      live = leaf_gc_collect(&global_, &stats_.local(), each_root);
    }
    global_.reset_remote_bytes();
    stats_.local().global_gc_count.fetch_add(1, std::memory_order_relaxed);
    stats_.local().global_gc_bytes.fetch_add(live, std::memory_order_relaxed);
    // The from-space chunks just released are the bulk of the pool's
    // free list after a big cycle; keep only enough pooled headroom
    // for the next cycle's to-space (~ current handed-out bytes) and
    // return the rest to the OS. Without this the pool pins steady
    // RSS at the sink's all-time high-water even though every cycle
    // empties it.
    chunks_.trim(chunks_.live_bytes());
  }

  static void run_team_slot(void* pc, unsigned slot) {
    static_cast<core::ParallelCollector*>(pc)->run_worker(slot);
  }

  Options opts_;
  bool sp_enabled_ = false;  // threshold, budget, or GC-stress on
  ChunkPool chunks_;
  ShardedStats stats_{WorkStealPool::resolved_workers(opts_.workers)};
  Heap global_;  // depth 0: the shared promotion target
  std::vector<std::unique_ptr<WorkerState>> workers_;  // depth-1 local heaps
  SafepointGate gate_{WorkStealPool::resolved_workers(opts_.workers)};
  std::atomic<bool> global_doorbell_{false};
  std::atomic<std::uint64_t> stress_tick_{0};
  WorkStealPool pool_;  // last member: joins threads before heaps die
};

static_assert(RuntimeLike<LhRuntime>);

}  // namespace parmem
