// Sequential baseline ("mlton" in fig10-fig13): one bump heap, zero-
// cost barriers, and a Cheney collector that runs with the whole world
// (one task) trivially stopped.
//
// Because there is never a second task, there is no promotion and no
// forwarding to chase: every barrier row of fig08 collapses to a plain
// load or store. This is the Ts / Ms denominator of the paper's
// overhead, speedup, and memory-inflation columns.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

#include "core/failpoint.hpp"
#include "core/gc_leaf.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/profiler.hpp"
#include "core/roots.hpp"
#include "core/stats.hpp"
#include "core/stats_json.hpp"
#include "core/trace.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class SeqRuntime {
 public:
  static constexpr const char* kName = "seq";

  struct Options {
    unsigned workers = 1;  // accepted for surface parity; always runs on 1
    std::size_t gc_min_budget = std::size_t{4} << 20;
    double gc_growth_factor = 8.0;
    // Hard cap on pool bytes; 0 = PARMEM_HEAP_BUDGET, else unlimited.
    // Exceeding it triggers an emergency collection + one retry before
    // parmem::OutOfMemory reaches the program.
    std::size_t heap_budget_bytes = 0;
    std::string failpoints;  // e.g. "chunk_alloc=fail@3"; "" = none
    // Append one JSON line of counters + pause-histogram summaries to
    // this file at runtime destruction; "" = PARMEM_STATS_JSON or none.
    std::string stats_json_path;
  };

  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = heap_->try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // No promotion and no concurrent mutator: every access is a plain
    // load/store. (GC forwarding pointers exist only inside a
    // collection; from-space is freed before the mutator resumes.)
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return o->ptrs()[i];
    }
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o->set_ptr_relaxed(idx, v);
    }

    Object* publish(Object* v) { return v; }

    void collect_now() {
      std::size_t live = leaf_gc_collect(heap_, &rt_->stats_.local(),
                                         [this](auto&& fn) {
                                           for (RootFrame* f = frames_;
                                                f != nullptr; f = f->prev()) {
                                             f->for_each_slot(fn);
                                           }
                                         });
      auto scaled = static_cast<std::size_t>(
          static_cast<double>(live) * rt_->opts_.gc_growth_factor);
      gc_budget_ = scaled > rt_->opts_.gc_min_budget
                       ? scaled
                       : rt_->opts_.gc_min_budget;
    }

    SeqRuntime& runtime() { return *rt_; }
    Heap* leaf_heap() { return heap_; }
    RootFrame** root_head_ref() { return &frames_; }

    // SpawnedBranch hooks (unused: sequential fork2 never spawns).
    void branch_enter() {}
    void branch_exit() {}

   private:
    friend class SeqRuntime;

    Ctx(SeqRuntime* rt, Heap* heap)
        : rt_(rt), heap_(heap), gc_budget_(rt->opts_.gc_min_budget) {}

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      if (heap_->chunk_bytes() >= gc_budget_) {
        collect_now();
      }
      Object* o;
      try {
        o = heap_->bump_alloc(nptr, nscalar);
      } catch (const OutOfMemory&) {
        // Budget hit (or injected chunk fault): emergency-collect the
        // one heap there is, then retry exactly once. A second failure
        // is the program's real OOM and propagates.
        collect_now();
        rt_->stats_.local().emergency_gcs.fetch_add(1, std::memory_order_relaxed);
        o = heap_->bump_alloc(nptr, nscalar);
      }
      o->zero_fields();
      return o;
    }

    SeqRuntime* rt_;
    Heap* heap_;
    std::size_t gc_budget_;
    RootFrame* frames_ = nullptr;
  };

  SeqRuntime() : SeqRuntime(Options{}) {}
  explicit SeqRuntime(const Options& opts) : opts_(opts) {
    env::install_failpoints_env();
    trace::init_from_env();
    profiler::init_from_env();
    profiler::note_stack_hi();
    chunks_.set_budget(effective_heap_budget(opts_.heap_budget_bytes));
    if (!opts_.failpoints.empty()) {
      failpoint::install(opts_.failpoints);
    }
  }
  SeqRuntime(const SeqRuntime&) = delete;
  SeqRuntime& operator=(const SeqRuntime&) = delete;

  ~SeqRuntime() {
    StatsSnapshot snap;
    snap.stats = stats_.snapshot();
    snap.live_bytes = chunks_.live_bytes();
    snap.peak_bytes = chunks_.peak_bytes();
    stats_json::write(stats_json::resolve_path(opts_.stats_json_path), kName,
                      snap);
  }

  const Options& options() const { return opts_; }
  unsigned workers() const { return 1; }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }

  template <class F>
  auto run(F&& f) {
    Heap root(nullptr, 0, &chunks_);
    Ctx ctx(this, &root);
    return f(ctx);
  }

  // fork2 degenerates to "run f, then g, on the same task" -- the
  // paper's sequential elision. The left result still travels through
  // a rooted channel: g's allocations can trigger a leaf collection
  // that moves an Object* f returned (the same hole the parallel
  // runtimes have across the join).
  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    (void)roots;
    ctx.rt_->stats_.local().forks.fetch_add(1, std::memory_order_relaxed);
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;
    rtapi::ResultChannel<Ctx, RA> ch_a(ctx);
    ch_a.store(ctx, rtapi::invoke_branch(f, ctx));
    RB rb = rtapi::invoke_branch(g, ctx);
    return std::pair<RA, RB>(ch_a.take(), std::move(rb));
  }

 private:
  Options opts_;
  ChunkPool chunks_;
  ShardedStats stats_{1};  // sequential: one shard
};

static_assert(RuntimeLike<SeqRuntime>);

}  // namespace parmem
