// Spoonhower-style parallel baseline ("mlton-spoonhower" in
// fig10-fig13): every task bump-allocates into its own buffer of one
// logically shared flat heap, there is no promotion and no read/write
// barrier, and collection is STOP-THE-WORLD:
//
//   the task that trips the shared budget raises a GC request, waits
//   for every other RUNNING task to park at a safepoint (their alloc
//   slow path -- tasks between alloc and join are deactivated and need
//   not park), merges all allocation buffers into one heap, and runs
//   the Cheney collector from core/gc_leaf.hpp over the union of every
//   task's root frames. The pause bills gc_ns for ALL stopped workers,
//   matching the paper's "GC percentage of processor time" columns.
//
// The fast paths are as cheap as the sequential runtime's (that is the
// point of this baseline); the cost shows up as whole-machine pauses
// that grow with the worker count.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/gc_leaf.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class StwRuntime {
 public:
  static constexpr const char* kName = "stw";

  struct Options {
    unsigned workers = 0;  // 0 = one per hardware thread
    std::size_t gc_min_budget = std::size_t{32} << 20;  // shared-heap bytes
    double gc_growth_factor = 8.0;
  };

  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = heap_.try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // Flat shared heap, mutators stopped during collection: no
    // forwarding can be observed by running code, so every barrier is a
    // plain access -- identical costs to the sequential baseline.
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return o->ptr(i);
    }
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o->set_ptr(idx, v);
    }

    Object* publish(Object* v) { return v; }

    void collect_now() { rt_->collect(this, /*force=*/true); }

    StwRuntime& runtime() { return *rt_; }
    RootFrame** root_head_ref() { return &frames_; }

    // SpawnedBranch hooks: a branch joins the running set for exactly
    // the span of its execution (entry blocks while a collection is
    // pending; exit wakes a collector waiting on the running count).
    void branch_enter() { rt_->activate(this); }
    void branch_exit() { rt_->deactivate(this); }

   private:
    friend class StwRuntime;

    explicit Ctx(StwRuntime* rt)
        : rt_(rt), heap_(nullptr, 0, &rt->chunks_) {
      rt_->register_ctx(this);
    }
    ~Ctx() { rt_->deregister_ctx(this); }

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      rt_->safepoint(this);
      if (rt_->chunks_.live_bytes() >=
          rt_->gc_budget_.load(std::memory_order_relaxed)) {
        rt_->collect(this, /*force=*/false);
      }
      Object* o = heap_.bump_alloc(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    StwRuntime* rt_;
    Heap heap_;  // this task's allocation buffer of the shared heap
    RootFrame* frames_ = nullptr;
    bool active_ = false;  // guarded by rt_->mu_
  };

  StwRuntime() : StwRuntime(Options{}) {}
  explicit StwRuntime(const Options& opts)
      : opts_(opts), gc_budget_(opts.gc_min_budget), pool_(opts.workers) {}
  StwRuntime(const StwRuntime&) = delete;
  StwRuntime& operator=(const StwRuntime&) = delete;

  const Options& options() const { return opts_; }
  unsigned workers() const { return pool_.workers(); }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }

  template <class F>
  auto run(F&& f) {
    WorkStealPool::Scope scope(&pool_);
    Ctx ctx(this);
    ActiveScope act(this, &ctx);
    return f(ctx);
  }

  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    (void)roots;
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;

    StwRuntime* rt = ctx.rt_;
    rt->stats_.forks.fetch_add(1, std::memory_order_relaxed);

    // The parent leaves the running set FIRST: a pending collection
    // must never wait on a task that is blocked in fork2 rather than
    // parked at a safepoint. Its frames stay registered (and scanned)
    // through its Ctx for the whole join.
    rt->deactivate(&ctx);
    Ctx ctx_a(rt);
    Ctx ctx_b(rt);

    rtapi::SpawnedBranch<Ctx, std::remove_reference_t<G>> task_b(
        &rt->pool_, g, ctx_b);

    std::optional<RA> ra;
    std::exception_ptr err_a;
    ctx_a.branch_enter();
    try {
      ra.emplace(rtapi::invoke_branch(f, ctx_a));
    } catch (...) {
      err_a = std::current_exception();
    }
    ctx_a.branch_exit();
    task_b.join(err_a != nullptr);

    // Reactivating blocks while a collection is pending, so once we are
    // back the merges below cannot race it: a new collection cannot
    // reach the copying phase until this task parks or deactivates.
    rt->activate(&ctx);
    ctx.heap_.merge_from(ctx_a.heap_);
    ctx.heap_.merge_from(ctx_b.heap_);

    if (err_a) {
      std::rethrow_exception(err_a);
    }
    if (task_b.error()) {
      std::rethrow_exception(task_b.error());
    }
    return std::pair<RA, RB>(std::move(*ra), task_b.take_result());
  }

 private:
  struct ActiveScope {
    StwRuntime* rt;
    Ctx* c;
    ActiveScope(StwRuntime* r, Ctx* ctx) : rt(r), c(ctx) { rt->activate(c); }
    ~ActiveScope() { rt->deactivate(c); }
    ActiveScope(const ActiveScope&) = delete;
    ActiveScope& operator=(const ActiveScope&) = delete;
  };

  void register_ctx(Ctx* c) {
    std::lock_guard<std::mutex> g(mu_);
    ctxs_.push_back(c);
  }
  void deregister_ctx(Ctx* c) {
    std::lock_guard<std::mutex> g(mu_);
    for (std::size_t i = 0; i < ctxs_.size(); ++i) {
      if (ctxs_[i] == c) {
        ctxs_[i] = ctxs_.back();
        ctxs_.pop_back();
        break;
      }
    }
  }

  void activate(Ctx* c) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return !gc_pending_; });
    c->active_ = true;
    ++running_;
  }
  void deactivate(Ctx* c) {
    std::lock_guard<std::mutex> g(mu_);
    c->active_ = false;
    --running_;
    pause_cv_.notify_all();  // a collector may be waiting on the count
  }

  // Cheap polling check on the alloc slow path.
  void safepoint(Ctx*) {
    if (__builtin_expect(
            gc_flag_.load(std::memory_order_acquire), 0)) {
      park();
    }
  }
  void park() {
    std::unique_lock<std::mutex> lk(mu_);
    while (gc_pending_) {
      ++paused_;
      pause_cv_.notify_all();
      done_cv_.wait(lk, [&] { return !gc_pending_; });
      --paused_;
    }
  }

  void collect(Ctx* me, bool force) {
    std::unique_lock<std::mutex> lk(mu_);
    if (gc_pending_) {
      // Someone else is collecting: park here and let them; our alloc
      // retries against the (now mostly empty) heap afterwards.
      ++paused_;
      pause_cv_.notify_all();
      done_cv_.wait(lk, [&] { return !gc_pending_; });
      --paused_;
      return;
    }
    if (!force &&
        chunks_.live_bytes() < gc_budget_.load(std::memory_order_relaxed)) {
      return;  // lost a race with a finished collection; budget is fine
    }
    gc_pending_ = true;
    gc_flag_.store(true, std::memory_order_release);
    pause_cv_.wait(lk, [&] { return paused_ == running_ - 1; });

    // The world is stopped. Fold every task's allocation buffer into
    // ours so the flat heap really is one heap, then reuse the Cheney
    // collector with the union of all root frames.
    auto t0 = std::chrono::steady_clock::now();
    for (Ctx* c : ctxs_) {
      if (c != me) {
        me->heap_.merge_from(c->heap_);
      }
    }
    std::size_t live =
        leaf_gc_collect(&me->heap_, &stats_, [&](auto&& fn) {
          for (Ctx* c : ctxs_) {
            for (RootFrame* f = c->frames_; f != nullptr; f = f->prev()) {
              f->for_each_slot(fn);
            }
          }
        });
    auto t1 = std::chrono::steady_clock::now();
    auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    // leaf_gc_collect billed one worker's wall time; the pause also
    // stalled every other worker.
    stats_.gc_ns.fetch_add(wall * (pool_.workers() - 1),
                           std::memory_order_relaxed);

    auto scaled = static_cast<std::size_t>(static_cast<double>(live) *
                                           opts_.gc_growth_factor);
    gc_budget_.store(
        scaled > opts_.gc_min_budget ? scaled : opts_.gc_min_budget,
        std::memory_order_relaxed);

    gc_pending_ = false;
    gc_flag_.store(false, std::memory_order_release);
    done_cv_.notify_all();
  }

  Options opts_;
  ChunkPool chunks_;
  StatsCell stats_;
  std::atomic<std::size_t> gc_budget_;

  std::mutex mu_;
  std::condition_variable pause_cv_;  // parked/left the running set
  std::condition_variable done_cv_;   // collection finished
  std::vector<Ctx*> ctxs_;            // every live task context
  unsigned running_ = 0;
  unsigned paused_ = 0;
  bool gc_pending_ = false;
  std::atomic<bool> gc_flag_{false};  // lock-free mirror of gc_pending_

  WorkStealPool pool_;
};

static_assert(RuntimeLike<StwRuntime>);

}  // namespace parmem
