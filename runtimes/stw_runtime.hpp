// Spoonhower-style parallel baseline ("mlton-spoonhower" in
// fig10-fig13): every task bump-allocates into its own buffer of one
// logically shared flat heap, there is no promotion and no read/write
// barrier, and collection is STOP-THE-WORLD:
//
//   the task that trips the shared budget raises a GC request, waits
//   for every other RUNNING task to park at a safepoint (their alloc
//   slow path -- tasks between alloc and join are deactivated and need
//   not park), merges all allocation buffers into one heap, and
//   evacuates it. With workers > 1 the evacuation itself is parallel:
//   the parked mutators are recruited as a core/gc_parallel.hpp team,
//   so the pause puts every stopped MUTATOR to work instead of idling
//   it (pool workers with no task to run stay asleep in the scheduler
//   and are not recruited -- a serial program phase still collects
//   with a team of one). With one worker it is the sequential
//   collector from
//   core/gc_leaf.hpp. Either way the pause bills gc_ns for ALL stopped
//   workers, matching the paper's "GC percentage" columns.
//
// The fast paths are as cheap as the sequential runtime's (that is the
// point of this baseline), and since the fork-overhead fix the fork
// path is lock-free too: entering/leaving the running set is one
// atomic add on a per-worker active count plus one check of the
// pending-collection flag (both seq_cst, Dekker-paired with the
// collector's flag-store/count-read), and context registration is a
// per-worker intrusive list under a per-worker spinlock. The runtime
// mutex is only ever taken on collection paths.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/failpoint.hpp"
#include "core/gc_leaf.hpp"
#include "core/gc_parallel.hpp"
#include "core/heap.hpp"
#include "core/object.hpp"
#include "core/phase.hpp"
#include "core/profiler.hpp"
#include "core/roots.hpp"
#include "core/sched.hpp"
#include "core/stats.hpp"
#include "core/stats_json.hpp"
#include "core/trace.hpp"
#include "runtimes/runtime_api.hpp"

namespace parmem {

class StwRuntime {
 public:
  static constexpr const char* kName = "stw";

  struct Options {
    unsigned workers = 0;  // 0 = one per hardware thread
    std::size_t gc_min_budget = std::size_t{32} << 20;  // shared-heap bytes
    double gc_growth_factor = 8.0;
    // Hard cap on pool bytes; 0 = PARMEM_HEAP_BUDGET, else unlimited.
    // Exceeding it forces a full stop-the-world collection and one
    // retry before parmem::OutOfMemory reaches the program.
    std::size_t heap_budget_bytes = 0;
    std::string failpoints;  // e.g. "chunk_alloc=fail@3"; "" = none
    // Append one JSON line of counters + pause-histogram summaries to
    // this file at runtime destruction; "" = PARMEM_STATS_JSON or none.
    std::string stats_json_path;
  };

  class Ctx {
   public:
    Ctx(const Ctx&) = delete;
    Ctx& operator=(const Ctx&) = delete;

    Object* alloc(std::uint32_t nptr, std::uint32_t nscalar) {
      std::size_t size = Object::size_bytes(nptr, nscalar);
      char* p = heap_.try_bump(size);
      if (__builtin_expect(p == nullptr, 0)) {
        return alloc_slow(nptr, nscalar);
      }
      Object* o = reinterpret_cast<Object*>(p);
      o->init_header(nptr, nscalar);
      o->zero_fields();
      return o;
    }

    static void init_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static void init_ptr(Object* o, std::uint32_t i, Object* v) {
      o->set_ptr_relaxed(i, v);
    }

    // Flat shared heap, mutators stopped during collection: no
    // forwarding can be observed by running code, so every barrier is a
    // plain access -- identical costs to the sequential baseline.
    static std::int64_t read_i64_imm(const Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static std::int64_t read_i64_mut(Object* o, std::uint32_t i) {
      return o->scalar(i);
    }
    static void write_i64(Object* o, std::uint32_t i, std::int64_t v) {
      o->set_scalar(i, v);
    }
    static Object* read_ptr(Object* o, std::uint32_t i) {
      return o->ptr(i);
    }
    void write_ptr(Object* o, std::uint32_t idx, Object* v) {
      o->set_ptr(idx, v);
    }

    Object* publish(Object* v) { return v; }

    void collect_now() { rt_->collect(this, /*force=*/true); }

    StwRuntime& runtime() { return *rt_; }
    RootFrame** root_head_ref() { return &frames_; }

    // SpawnedBranch hooks: a branch joins the running set for exactly
    // the span of its execution (entry blocks while a collection is
    // pending; exit wakes a collector waiting on the running count).
    void branch_enter() { rt_->activate(); }
    void branch_exit() { rt_->deactivate(); }

   private:
    friend class StwRuntime;

    explicit Ctx(StwRuntime* rt)
        : rt_(rt), heap_(nullptr, 0, &rt->chunks_) {
      rt_->register_ctx(this);
    }
    ~Ctx() { rt_->deregister_ctx(this); }

    Object* alloc_slow(std::uint32_t nptr, std::uint32_t nscalar) {
      rt_->safepoint();
      if (rt_->chunks_.live_bytes() >=
          rt_->gc_budget_.load(std::memory_order_relaxed)) {
        rt_->collect(this, /*force=*/false);
      }
      Object* o;
      try {
        o = heap_.bump_alloc(nptr, nscalar);
      } catch (const OutOfMemory&) {
        // Budget hit (or injected chunk fault): force a full
        // stop-the-world collection -- the biggest hammer this flat
        // heap has -- and retry exactly once. A failure of the
        // collection itself propagates from collect() instead of
        // looping back here.
        rt_->collect(this, /*force=*/true);
        rt_->stats_.local().emergency_gcs.fetch_add(1, std::memory_order_relaxed);
        o = heap_.bump_alloc(nptr, nscalar);
      }
      o->zero_fields();
      return o;
    }

    StwRuntime* rt_;
    Heap heap_;  // this task's allocation buffer of the shared heap
    RootFrame* frames_ = nullptr;
    Ctx* reg_prev_ = nullptr;  // intrusive per-worker registry links,
    Ctx* reg_next_ = nullptr;  // guarded by the home slot's ctx_lock
    unsigned home_slot_ = 0;
  };

  StwRuntime() : StwRuntime(Options{}) {}
  explicit StwRuntime(const Options& opts)
      : opts_(opts),
        gc_budget_(opts.gc_min_budget),
        pool_(opts.workers),
        slots_(pool_.workers()) {
    env::install_failpoints_env();
    trace::init_from_env();
    profiler::init_from_env();
    profiler::note_stack_hi();
    chunks_.set_budget(effective_heap_budget(opts_.heap_budget_bytes));
    if (!opts_.failpoints.empty()) {
      failpoint::install(opts_.failpoints);
    }
  }
  StwRuntime(const StwRuntime&) = delete;
  StwRuntime& operator=(const StwRuntime&) = delete;

  ~StwRuntime() {
    StatsSnapshot snap;
    snap.stats = stats_.snapshot();
    snap.live_bytes = chunks_.live_bytes();
    snap.peak_bytes = chunks_.peak_bytes();
    stats_json::write(stats_json::resolve_path(opts_.stats_json_path), kName,
                      snap);
  }

  const Options& options() const { return opts_; }
  unsigned workers() const { return pool_.workers(); }
  Stats stats() const { return stats_.snapshot(); }
  std::size_t peak_bytes() const { return chunks_.peak_bytes(); }
  std::size_t live_bytes() const { return chunks_.live_bytes(); }

  template <class F>
  auto run(F&& f) {
    WorkStealPool::Scope scope(&pool_);
    Ctx ctx(this);
    ActiveScope act(this);
    return f(ctx);
  }

  template <class F, class G>
  static auto fork2(Ctx& ctx, std::initializer_list<Local> roots, F&& f,
                    G&& g) {
    (void)roots;
    using RA = rtapi::BranchResult<F, Ctx>;
    using RB = rtapi::BranchResult<G, Ctx>;

    StwRuntime* rt = ctx.rt_;
    rt->stats_.local().forks.fetch_add(1, std::memory_order_relaxed);

    Ctx ctx_a(rt);
    Ctx ctx_b(rt);

    // Both result channels push a Local onto the PARENT's frame chain
    // (a plain-pointer list the collector walks), so they must be
    // constructed while the parent is still in the running set -- a
    // push after deactivate() could race a collector already scanning
    // the chain. Spawning before deactivating is fine: the parent
    // never blocks until the join below.
    rtapi::ResultChannel<Ctx, RA> ch_a(ctx);
    rtapi::SpawnedBranch<Ctx, std::remove_reference_t<G>> task_b(
        &rt->pool_, g, ctx_b, ctx);

    // The parent now leaves the running set: a pending collection must
    // never wait on a task that is blocked in fork2 rather than parked
    // at a safepoint. Its frames stay registered (and scanned) through
    // its Ctx for the whole join.
    rt->deactivate();

    std::exception_ptr err_a;
    ctx_a.branch_enter();
    try {
      ch_a.store(ctx_a, rtapi::invoke_branch(f, ctx_a));
    } catch (...) {
      err_a = std::current_exception();
    }
    ctx_a.branch_exit();
    task_b.join(err_a != nullptr);

    // Reactivating blocks while a collection is pending, so once we are
    // back the merges below cannot race it: a new collection cannot
    // reach the copying phase until this task parks or deactivates.
    rt->activate();
    ctx.heap_.merge_from(ctx_a.heap_);
    ctx.heap_.merge_from(ctx_b.heap_);

    if (err_a) {
      std::rethrow_exception(err_a);
    }
    if (task_b.error()) {
      std::rethrow_exception(task_b.error());
    }
    return std::pair<RA, RB>(ch_a.take(), task_b.take_result());
  }

 private:
  // One cache line per pool worker: the running-set count for the
  // lock-free fork path, and the context registry for that worker's
  // thread (mutated only from it, so the spinlock is uncontended
  // except against a stopped-world collector scanning the lists).
  struct alignas(64) WorkerSlot {
    std::atomic<int> active{0};
    SpinLock ctx_lock;
    Ctx* ctx_head = nullptr;
  };

  struct ActiveScope {
    StwRuntime* rt;
    explicit ActiveScope(StwRuntime* r) : rt(r) { rt->activate(); }
    ~ActiveScope() { rt->deactivate(); }
    ActiveScope(const ActiveScope&) = delete;
    ActiveScope& operator=(const ActiveScope&) = delete;
  };

  void register_ctx(Ctx* c) {
    unsigned idx = pool_.current_index();
    WorkerSlot& s = slots_[idx];
    c->home_slot_ = idx;
    std::lock_guard<SpinLock> g(s.ctx_lock);
    c->reg_prev_ = nullptr;
    c->reg_next_ = s.ctx_head;
    if (s.ctx_head != nullptr) {
      s.ctx_head->reg_prev_ = c;
    }
    s.ctx_head = c;
  }
  void deregister_ctx(Ctx* c) {
    WorkerSlot& s = slots_[c->home_slot_];
    std::lock_guard<SpinLock> g(s.ctx_lock);
    if (c->reg_prev_ != nullptr) {
      c->reg_prev_->reg_next_ = c->reg_next_;
    } else {
      s.ctx_head = c->reg_next_;
    }
    if (c->reg_next_ != nullptr) {
      c->reg_next_->reg_prev_ = c->reg_prev_;
    }
  }

  // Running-set membership. The fast path is one atomic RMW on this
  // worker's own count plus a flag check; seq_cst pairs it with the
  // collector's flag-store-then-count-read (Dekker), so an activation
  // either observes the pending collection and backs off, or is
  // observed by the collector, which then waits for this task to park
  // or deactivate.
  void activate() {
    std::atomic<int>& cnt = slots_[pool_.current_index()].active;
    for (;;) {
      cnt.fetch_add(1, std::memory_order_seq_cst);
      if (__builtin_expect(!gc_flag_.load(std::memory_order_seq_cst), 1)) {
        return;
      }
      // A collection is pending: back out (waking its driver, which
      // may be waiting on the running count) and sit it out.
      phase::PhaseScope stall_scope(phase::Phase::kGateStall);
      const std::uint64_t t0 = trace::now_ns();
      std::unique_lock<std::mutex> lk(mu_);
      cnt.fetch_sub(1, std::memory_order_seq_cst);
      pause_cv_.notify_all();
      done_cv_.wait(lk, [&] { return !gc_pending_; });
      trace::record_gate_stall(t0, trace::now_ns() - t0);
    }
  }
  void deactivate() {
    slots_[pool_.current_index()].active.fetch_sub(1,
                                                   std::memory_order_seq_cst);
    if (__builtin_expect(gc_flag_.load(std::memory_order_seq_cst), 0)) {
      std::lock_guard<std::mutex> g(mu_);
      pause_cv_.notify_all();  // a collector may be waiting on the count
    }
  }

  unsigned running() const {
    long n = 0;
    for (const WorkerSlot& s : slots_) {
      n += s.active.load(std::memory_order_seq_cst);
    }
    return static_cast<unsigned>(n);
  }

  // Cheap polling check on the alloc slow path.
  void safepoint() {
    if (__builtin_expect(gc_flag_.load(std::memory_order_acquire), 0)) {
      park();
    }
  }
  void park() {
    std::unique_lock<std::mutex> lk(mu_);
    wait_out_collection(lk);
  }

  // Parked at a safepoint (or arriving second into collect): count
  // ourselves paused, serve as an evacuation-team worker if the driver
  // recruits us, and return once the collection is over.
  void wait_out_collection(std::unique_lock<std::mutex>& lk) {
    // The recorded stall spans the whole stopped window, including any
    // copy work done as a recruited team member (run_worker retags the
    // recruitment spans to parallel-evac for the profiler).
    phase::PhaseScope stall_scope(phase::Phase::kGateStall);
    const std::uint64_t t0 = trace::now_ns();
    ++paused_;
    pause_cv_.notify_all();
    while (gc_pending_) {
      if (gc_team_ != nullptr && gc_team_next_ < gc_team_slots_) {
        unsigned slot = gc_team_next_++;
        core::ParallelCollector* pc = gc_team_;
        lk.unlock();
        pc->run_worker(slot);
        lk.lock();
        continue;
      }
      done_cv_.wait(lk);
    }
    --paused_;
    trace::record_gate_stall(t0, trace::now_ns() - t0);
  }

  void collect(Ctx* me, bool force) {
    std::unique_lock<std::mutex> lk(mu_);
    if (gc_pending_) {
      // Someone else is collecting: park here (possibly copying for
      // them); our alloc retries against the collected heap afterwards.
      wait_out_collection(lk);
      return;
    }
    if (!force &&
        chunks_.live_bytes() < gc_budget_.load(std::memory_order_relaxed)) {
      return;  // lost a race with a finished collection; budget is fine
    }
    gc_pending_ = true;
    gc_flag_.store(true, std::memory_order_seq_cst);
    pause_cv_.wait(lk, [&] { return paused_ == running() - 1; });

    // The world is stopped. Fold every task's allocation buffer into
    // ours so the flat heap really is one heap, then evacuate it with
    // the union of all root frames.
    auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t trace_t0 = trace::now_ns();
    for (WorkerSlot& s : slots_) {
      std::lock_guard<SpinLock> g(s.ctx_lock);
      for (Ctx* c = s.ctx_head; c != nullptr; c = c->reg_next_) {
        if (c != me) {
          me->heap_.merge_from(c->heap_);
        }
      }
    }
    auto each_root = [&](auto&& fn) {
      for (WorkerSlot& s : slots_) {
        std::lock_guard<SpinLock> g(s.ctx_lock);
        for (Ctx* c = s.ctx_head; c != nullptr; c = c->reg_next_) {
          for (RootFrame* f = c->frames_; f != nullptr; f = f->prev()) {
            f->for_each_slot(fn);
          }
        }
      }
    };

    std::size_t live;
    if (pool_.workers() > 1) {
      // Team evacuation: the parked mutators ARE the team. Every
      // context counted in paused_ is blocked in wait_out_collection
      // on its own worker thread, so exactly 1 + paused_ threads are
      // available; notify hands each a team slot.
      const auto team = static_cast<unsigned>(1 + paused_);
      core::ParallelCollector pc(chunks_, std::vector<Heap*>{&me->heap_},
                                 core::ParallelGcOptions{team, 128});
      pc.prepare(each_root);
      gc_team_ = &pc;
      gc_team_slots_ = team;
      gc_team_next_ = 1;  // slot 0 is the driver's
      done_cv_.notify_all();
      lk.unlock();
      pc.run_worker(0);
      core::ParallelGcOutcome out;
      try {
        out = pc.finish();  // all recruits exited; rethrows a team abort
      } catch (...) {
        // The evacuation itself failed (true OS OOM in collector
        // context) -- fatal for the computation, but the stopped world
        // must still be released or every parked task deadlocks.
        lk.lock();
        gc_team_ = nullptr;
        gc_pending_ = false;
        gc_flag_.store(false, std::memory_order_seq_cst);
        done_cv_.notify_all();
        throw;
      }
      lk.lock();
      gc_team_ = nullptr;
      live = out.totals.bytes_copied;
      stats_.local().gc_count.fetch_add(1, std::memory_order_relaxed);
      stats_.local().gc_bytes_copied.fetch_add(live, std::memory_order_relaxed);
      auto wall = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      // The pause costs every worker the full wall time, team member
      // or not.
      stats_.local().gc_ns.fetch_add(wall * pool_.workers(),
                             std::memory_order_relaxed);
      // Team path bills gc_count directly (no leaf_gc_collect), so it
      // records its own pause event; the 1-worker branch below records
      // inside leaf_gc_collect instead.
      trace::record_gc_pause(trace::Ev::kGcStw, trace_t0, wall, live);
    } else {
      try {
        live = leaf_gc_collect(&me->heap_, &stats_.local(), each_root);
      } catch (...) {
        gc_pending_ = false;
        gc_flag_.store(false, std::memory_order_seq_cst);
        done_cv_.notify_all();
        throw;
      }
    }

    auto scaled = static_cast<std::size_t>(static_cast<double>(live) *
                                           opts_.gc_growth_factor);
    gc_budget_.store(
        scaled > opts_.gc_min_budget ? scaled : opts_.gc_min_budget,
        std::memory_order_relaxed);

    gc_pending_ = false;
    gc_flag_.store(false, std::memory_order_seq_cst);
    done_cv_.notify_all();
  }

  Options opts_;
  ChunkPool chunks_;
  ShardedStats stats_{WorkStealPool::resolved_workers(opts_.workers)};
  std::atomic<std::size_t> gc_budget_;

  std::mutex mu_;                     // collection paths only
  std::condition_variable pause_cv_;  // parked/left the running set
  std::condition_variable done_cv_;   // collection finished
  unsigned paused_ = 0;               // guarded by mu_
  bool gc_pending_ = false;           // guarded by mu_
  std::atomic<bool> gc_flag_{false};  // lock-free mirror of gc_pending_
  core::ParallelCollector* gc_team_ = nullptr;  // open team, guarded by mu_
  unsigned gc_team_slots_ = 0;                  // guarded by mu_
  unsigned gc_team_next_ = 0;                   // guarded by mu_

  WorkStealPool pool_;
  std::vector<WorkerSlot> slots_;  // one per pool worker; fixed size
};

static_assert(RuntimeLike<StwRuntime>);

}  // namespace parmem
